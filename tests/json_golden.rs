//! Golden round-trip for the in-repo JSON codec: compile a real corpus
//! program, serialize its whole CFG, decode it back, and check the decoded
//! graph is structurally identical.
//!
//! `Cfg` deliberately has no `PartialEq` (it holds interned tables and a
//! guard map), so equality is checked two ways: re-encoding the decoded
//! graph must reproduce the original text byte for byte (the encoder is
//! deterministic — maps are emitted in sorted key order), and the load-
//! bearing structure (entry, node/pipeline counts, successor lists, field
//! table) is compared directly.

use meissa::ir::Cfg;
use meissa::suite;
use meissa::testkit::json::{FromJson, ToJson};

fn assert_same_structure(a: &Cfg, b: &Cfg) {
    assert_eq!(a.entry(), b.entry(), "entry node");
    assert_eq!(a.num_nodes(), b.num_nodes(), "node count");
    assert_eq!(a.pipelines().len(), b.pipelines().len(), "pipeline count");
    for (pa, pb) in a.pipelines().iter().zip(b.pipelines()) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(pa.entry, pb.entry);
        assert_eq!(pa.exit, pb.exit);
    }
    assert_eq!(a.fields.len(), b.fields.len(), "field table size");
    for i in 0..a.num_nodes() {
        let id = meissa::ir::NodeId(i as u32);
        assert_eq!(a.succ(id), b.succ(id), "successors of node {i}");
        assert_eq!(
            format!("{:?}", a.stmt(id)),
            format!("{:?}", b.stmt(id)),
            "statement at node {i}"
        );
        assert_eq!(
            a.raw_guard(id).map(|g| format!("{g:?}")),
            b.raw_guard(id).map(|g| format!("{g:?}")),
            "raw guard at node {i}"
        );
    }
}

#[test]
fn acl_cfg_json_roundtrip_is_lossless() {
    let w = suite::acl(4, 7);
    let cfg = &w.program.cfg;
    let text = cfg.to_json_text();
    let back = Cfg::from_json_text(&text).expect("decoded CFG");
    assert_same_structure(cfg, &back);
    assert_eq!(back.to_json_text(), text, "re-encode is byte-stable");
}

#[test]
fn whole_corpus_cfgs_roundtrip() {
    for w in suite::open_source_corpus() {
        let cfg = &w.program.cfg;
        let text = cfg.to_json_text();
        let back =
            Cfg::from_json_text(&text).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        assert_same_structure(cfg, &back);
        assert_eq!(back.to_json_text(), text, "{}: byte-stable", w.name);
    }
}
