//! Cross-crate integration tests: the full Fig. 2 workflow from source text
//! to test report, exercised over the evaluation corpus.

use meissa::baselines::{gauntlet, p4pktgen, ToolVerdict};
use meissa::core::{coverage, Meissa};
use meissa::dataplane::{Fault, SwitchTarget};
use meissa::driver::TestDriver;
use meissa::suite;

#[test]
fn open_source_corpus_tests_clean_on_faithful_targets() {
    for w in suite::open_source_corpus() {
        let mut run = Meissa::new().run(&w.program);
        assert!(!run.templates.is_empty(), "{} generates templates", w.name);
        let driver = TestDriver::new(&w.program);
        let report = driver.run(&mut run, &SwitchTarget::new(&w.program));
        assert_eq!(report.failed(), 0, "{}: {report}", w.name);
        assert!(report.passed() > 0, "{}", w.name);
    }
}

#[test]
fn gw_corpus_tests_clean_on_faithful_targets() {
    for level in 1..=2u8 {
        let w = suite::gw::gw(level, suite::gw::GwScale { eips: 4 });
        let mut run = Meissa::new().run(&w.program);
        let driver = TestDriver::new(&w.program);
        let report = driver.run(&mut run, &SwitchTarget::new(&w.program));
        assert_eq!(report.failed(), 0, "{}: {report}", w.name);
    }
}

#[test]
fn full_valid_coverage_on_the_generated_graph() {
    // §3.4/Definition 3 quantify over *valid* paths: every behaviour a
    // packet can trigger must be covered. Branches that no packet can take
    // (rule arms contradicted upstream) are intentionally uncoverable.
    let w = suite::router(6, 3);
    let run = Meissa::new().run(&w.program);
    let valid: Vec<Vec<meissa::ir::NodeId>> =
        run.templates.iter().map(|t| t.path.clone()).collect();
    assert!(
        coverage::full_valid_coverage(&run.cfg, &run.templates, &valid),
        "every valid path covered"
    );
    let report = coverage::measure(&run.cfg, &run.templates);
    assert_eq!(report.paths_covered, run.templates.len());
    assert!(report.branch_ratio() > 0.5, "{report:?}");
}

#[test]
fn baselines_agree_with_meissa_on_open_source_programs() {
    // The three testing tools must produce identical template counts —
    // they differ in cost, not in coverage — on single-pipe programs.
    let w = suite::mtag(4, 5);
    let meissa = Meissa::new().run(&w.program);
    let p4 = p4pktgen::generate(&w.program, None);
    let ga = gauntlet::generate(&w.program, None);
    assert_eq!(p4.verdict, ToolVerdict::NotDetected);
    assert_eq!(ga.verdict, ToolVerdict::NotDetected);
    assert_eq!(meissa.templates.len() as u64, p4.work_items);
    assert_eq!(meissa.templates.len() as u64, ga.work_items);
}

#[test]
fn every_injected_fault_class_is_detectable_somewhere() {
    // Smoke test over the whole fault model against the eipgw-style
    // program from the bug corpus.
    let cases = suite::bugs::all();
    let faults: Vec<&Fault> = cases
        .iter()
        .filter(|c| c.fault != Fault::None)
        .map(|c| &c.fault)
        .collect();
    assert_eq!(faults.len(), 10, "ten non-code bugs in Table 2");
    for case in cases.iter().filter(|c| c.fault != Fault::None) {
        let program = &case.workload.program;
        let mut run = Meissa::new().run(program);
        let driver = TestDriver::new(program);
        let report = driver.run(&mut run, &SwitchTarget::with_fault(program, case.fault.clone()));
        assert!(report.found_bug(), "fault {:?} undetected", case.fault);
    }
}

#[test]
fn templates_are_deterministic_across_runs() {
    let w = suite::acl(5, 11);
    let a = Meissa::new().run(&w.program);
    let b = Meissa::new().run(&w.program);
    assert_eq!(a.templates.len(), b.templates.len());
    for (x, y) in a.templates.iter().zip(&b.templates) {
        assert_eq!(x.path, y.path);
        assert_eq!(x.constraints.len(), y.constraints.len());
    }
}

#[test]
fn packet_level_roundtrip_through_the_wire() {
    // Sender → bytes → receiver parse → target execution → deparse: the
    // full §4 loop on a corpus program.
    use meissa::dataplane::{parse_packet, serialize_state};
    let w = suite::router(4, 2);
    let mut run = Meissa::new().run(&w.program);
    let mut exercised = 0;
    for i in 0..run.templates.len() {
        let t = run.templates[i].clone();
        let Some(input) = t.instantiate(&mut run.pool, &run.cfg.fields, &[]) else {
            continue;
        };
        let Ok(pkt) = serialize_state(&w.program, &input, i as u64) else {
            continue;
        };
        let parsed = parse_packet(&w.program, &pkt).expect("own packets parse");
        // Round trip: serializing the parsed state again gives the bytes.
        let pkt2 = serialize_state(&w.program, &parsed, i as u64).unwrap();
        assert_eq!(pkt.bytes, pkt2.bytes, "template {i}");
        exercised += 1;
    }
    assert!(exercised > 0);
}
