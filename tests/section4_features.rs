//! Integration tests for the §4 implementation claims:
//!
//! * registers modeled as header fields (`REG:name-POS:i`), testing
//!   *stateless register arithmetic* with constant indices;
//! * recirculation handled by unrolling into named pipeline copies;
//! * hashing folded when keys are concrete, post-filtered otherwise;
//! * manually-encoded components (the P4-DPDK co-designed gateway):
//!   a hand-built CFG pipeline composed with compiled ones through the
//!   same IR the frontend emits.

use meissa::core::Meissa;
use meissa::dataplane::SwitchTarget;
use meissa::driver::TestDriver;
use meissa::ir::{AExp, AOp, BExp, CfgBuilder, CmpOp, Stmt};
use meissa::lang::{compile, parse_program, parse_rules};
use meissa::num::Bv;

#[test]
fn registers_model_stateless_arithmetic() {
    // §4: "the register action hdr.tcp.dst_port = reg[0] is modeled as an
    // action statement hdr.tcp.dst_port ← REG:reg-POS:0".
    let src = r#"
        header pkt { x: 32; }
        register counters[16]: 32;
        metadata meta { out: 32; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action absorb() {
          counters[3] = counters[3] + hdr.pkt.x;
          meta.out = counters[3];
        }
        control c { call absorb(); }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
        intent out_reflects_register {
          given true;
          expect meta.out == hdr.pkt.x + 0 || true;
        }
    "#;
    let program = compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap();
    // The register cell is a field; its value at packet arrival is an
    // unconstrained input (unbounded stateless variable, §7).
    let reg = program.cfg.fields.get("REG:counters-POS:3").unwrap();
    assert_eq!(program.cfg.fields.width(reg), 32);

    let mut run = Meissa::new().run(&program);
    assert_eq!(run.templates.len(), 1);
    // The symbolic output is reg + x; instantiate and check arithmetic.
    let input = run.templates[0]
        .clone()
        .instantiate(&mut run.pool, &run.cfg.fields, &[])
        .unwrap();
    let out = meissa::driver::trace_execution(&program, &input);
    let final_out = out
        .iter()
        .rev()
        .find(|s| s.stmt.starts_with("meta.out"))
        .unwrap();
    assert!(final_out.value.is_some());
}

#[test]
fn recirculation_unrolls_into_named_pipelines() {
    // §4: "Recirculation and resubmission are similar to multi-pipelines,
    // because operators manually name unrolled pipelines." A program that
    // recirculates once is written as two copies of the pipeline, round 2
    // keyed on state round 1 left behind.
    let src = r#"
        header pkt { label_count: 8; l1: 8; l2: 8; }
        metadata meta { popped: 8; egress_port: 9; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action pop1() { meta.popped = 1; hdr.pkt.label_count = hdr.pkt.label_count - 1; }
        action pop2() { meta.popped = 2; hdr.pkt.label_count = hdr.pkt.label_count - 1; }
        action fwd(port: 9) { meta.egress_port = port; }
        action noop() { }
        control round1 {
          if (hdr.pkt.label_count > 0) { call pop1(); }
        }
        control round2 {
          if (hdr.pkt.label_count > 0) { call pop2(); }
          if (hdr.pkt.label_count == 0) { call fwd(7); }
        }
        pipeline recirc_0 { parser = p; control = round1; }
        pipeline recirc_1 { control = round2; }
        topology { start -> recirc_0; recirc_0 -> recirc_1; recirc_1 -> end; }
        deparser { emit(pkt); }
        intent depth2_labels_forward {
          given hdr.pkt.label_count == 2;
          expect meta.egress_port == 7;
        }
    "#;
    let program = compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap();
    assert_eq!(program.num_pipes, 2, "one unrolled recirculation round");

    let mut run = Meissa::new().run(&program);
    let driver = TestDriver::new(&program);
    let report = driver.run(&mut run, &SwitchTarget::new(&program));
    assert_eq!(report.failed(), 0, "{report}");
    // The intent-constrained instantiation exercised label_count == 2.
    assert!(report.passed() > run.templates.len(), "intent cases ran");
}

#[test]
fn hash_with_concrete_keys_folds_and_symbolic_keys_post_filter() {
    let src = r#"
        header pkt { a: 32; b: 32; }
        metadata meta { idx_concrete: 16; idx_symbolic: 16; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action mix() {
          meta.idx_symbolic = hash(crc16, 16, hdr.pkt.a, hdr.pkt.b);
        }
        action fixed() {
          hdr.pkt.a = 0x11223344;
          meta.idx_concrete = hash(crc16, 16, hdr.pkt.a);
        }
        control c { call fixed(); call mix(); }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
    "#;
    let program = compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap();
    let mut run = Meissa::new().run(&program);
    assert_eq!(run.templates.len(), 1);
    let t = run.templates[0].clone();
    // One obligation for the symbolic-key hash; the concrete-key one folded.
    assert_eq!(t.hash_obligations.len(), 1, "only the symbolic hash deferred");

    let input = t.instantiate(&mut run.pool, &run.cfg.fields, &[]).unwrap();
    let fields = &program.cfg.fields;
    // Replay: the target's concrete hash must equal what the model chose.
    let out = SwitchTarget::new(&program).run_state(&input, 1);
    let idx_c = fields.get("meta.idx_concrete").unwrap();
    let expect_c = meissa::ir::HashAlg::Crc16.compute(16, &[Bv::new(32, 0x11223344)]);
    assert_eq!(out.final_state.get(fields, idx_c), expect_c);
    // `fixed()` rewrote hdr.pkt.a before `mix()` hashed it, so the
    // symbolic hash keys are (0x11223344, input b).
    let b = input.get(fields, fields.get("hdr.pkt.b").unwrap());
    let idx_s = fields.get("meta.idx_symbolic").unwrap();
    assert_eq!(
        out.final_state.get(fields, idx_s),
        meissa::ir::HashAlg::Crc16.compute(16, &[Bv::new(32, 0x11223344), b]),
        "target's concrete hash agrees with reference semantics"
    );
}

#[test]
fn manually_encoded_component_composes_with_compiled_pipelines() {
    // §4: "our implementation allows the integration of manually-encoded
    // components, such as encoding of DPDK programs" — the CFG builder is
    // the integration surface. Build a two-stage hybrid: stage 1 mimics a
    // hardware pipe (classification), stage 2 is the hand-encoded
    // software (DPDK) stage doing the rewrite.
    let mut b = CfgBuilder::new();
    let kind = b.fields_mut().intern("hdr.pkt.kind", 8);
    let mark = b.fields_mut().intern("meta.mark", 8);
    let out = b.fields_mut().intern("meta.out", 8);
    b.nop();

    // Hardware stage: classify kind ∈ {1, 2}.
    b.begin_pipeline("asic_ingress");
    let base = b.frontier();
    let mut arms = Vec::new();
    for k in 1..=2u128 {
        b.set_frontier(base.clone());
        b.stmt(Stmt::Assume(BExp::Cmp(
            CmpOp::Eq,
            AExp::Field(kind),
            AExp::Const(Bv::new(8, k)),
        )));
        b.stmt(Stmt::Assign(mark, AExp::Const(Bv::new(8, k * 10))));
        arms.push(b.frontier());
    }
    b.set_frontier(Vec::new());
    b.merge_frontiers(arms);
    b.end_pipeline();

    // Hand-encoded DPDK stage: out = mark + 100.
    b.begin_pipeline("dpdk_worker");
    b.stmt(Stmt::Assign(
        out,
        AExp::bin(AOp::Add, AExp::Field(mark), AExp::Const(Bv::new(8, 100))),
    ));
    b.end_pipeline();
    let cfg = b.finish();

    // The engine runs on hand-built CFGs exactly like compiled ones —
    // summary included (two pipelines).
    let run = Meissa::new().run_on_cfg(&cfg);
    assert_eq!(run.templates.len(), 2, "kind ∈ {{1,2}} behaviours");
    assert!(run.stats.summary.is_some(), "hybrid graph was summarized");
}
