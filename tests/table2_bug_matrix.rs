//! Integration test: the Table 2 bug matrix, behaviorally verified.
//!
//! For every bug case in the corpus, run the tools that have real
//! implementations and check their verdicts against the paper's row:
//!
//! * Meissa — full engine + test driver against the (possibly faulty)
//!   switch target: must detect all 16.
//! * Aquila-like — source-level verification: must detect exactly the code
//!   bugs it can express (1–5) and none of the non-code bugs.
//! * p4pktgen-like / Gauntlet-like — testing baselines with their
//!   documented feature/scale limits.

use meissa::baselines::{aquila, gauntlet, p4pktgen, pta, ToolVerdict};
use meissa::core::Meissa;
use meissa::dataplane::SwitchTarget;
use meissa::driver::TestDriver;
use meissa::suite::bugs::{self, BugCase};
use std::time::Duration;

fn meissa_detects(case: &BugCase) -> bool {
    let program = &case.workload.program;
    let mut run = Meissa::new().run(program);
    let driver = TestDriver::new(program);
    let target = SwitchTarget::with_fault(program, case.fault.clone());
    driver.run(&mut run, &target).found_bug()
}

#[test]
fn meissa_detects_every_bug() {
    for case in bugs::all() {
        assert!(
            meissa_detects(&case),
            "bug {} ({}) escaped Meissa",
            case.index,
            case.name
        );
    }
}

#[test]
fn no_false_positives_on_clean_targets() {
    // The same programs with no fault and correct rules must test clean —
    // except the code-bug cases, whose defect is *in* the program.
    for case in bugs::all() {
        if matches!(case.kind, meissa::suite::bugs::BugKind::Code) {
            continue;
        }
        let program = &case.workload.program;
        let mut run = Meissa::new().run(program);
        let driver = TestDriver::new(program);
        let report = driver.run(&mut run, &SwitchTarget::new(program));
        assert_eq!(
            report.failed(),
            0,
            "bug {} program false-positives on a faithful target: {report}",
            case.index
        );
    }
}

#[test]
fn aquila_column_matches_paper() {
    let budget = Some(Duration::from_secs(60));
    for case in bugs::all() {
        let out = aquila::verify(&case.workload.program, budget);
        let expected = case.paper[4];
        assert_eq!(
            out.found_bug(),
            expected,
            "bug {} ({}): aquila-like found_bug={} paper={} (violations: {:?}, deparser: {:?})",
            case.index,
            case.name,
            out.found_bug(),
            expected,
            out.violations,
            out.deparser_omissions,
        );
    }
}

#[test]
fn p4pktgen_column_matches_paper() {
    let budget = Some(Duration::from_secs(60));
    for case in bugs::all() {
        let v = p4pktgen::detect_bug(&case.workload.program, &case.fault, budget);
        assert_eq!(
            v.detected(),
            case.paper[1],
            "bug {} ({}): p4pktgen-like {:?} vs paper {}",
            case.index,
            case.name,
            v,
            case.paper[1]
        );
    }
}

#[test]
fn gauntlet_column_matches_paper() {
    let budget = Some(Duration::from_secs(60));
    for case in bugs::all() {
        let v = gauntlet::detect_bug(&case.workload.program, &case.fault, budget);
        assert_eq!(
            v.detected(),
            case.paper[3],
            "bug {} ({}): gauntlet-like {:?} vs paper {}",
            case.index,
            case.name,
            v,
            case.paper[3]
        );
    }
}

#[test]
fn pta_column_matches_paper() {
    for case in bugs::all() {
        assert_eq!(
            pta::detect_bug(case.index).detected(),
            case.paper[2],
            "bug {}",
            case.index
        );
    }
}
