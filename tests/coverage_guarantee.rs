//! Integration tests for §3.4's coverage guarantee: the empirical analogue
//! of Definition 3 / Definition 4 and Appendix B, checked over randomly
//! generated multi-pipeline programs.
//!
//! For every generated program:
//!
//! 1. naive DFS (the basic framework) and Meissa-with-summary generate the
//!    *same number* of templates;
//! 2. every template instantiates, and its model drives the concrete
//!    evaluator (Fig. 4) down exactly one valid path of the ORIGINAL graph;
//! 3. the set of behaviours covered (deterministic replay traces) is
//!    identical between the two configurations.

use meissa::core::Meissa;
use meissa::driver::trace_execution;
use meissa::lang::{compile, parse_program, parse_rules, CompiledProgram};
use meissa::testkit::rng::{RngExt, SeedableRng, StdRng};
use std::collections::BTreeSet;

/// Generates a random 2–3 pipeline program with chained tables.
fn random_program(seed: u64) -> CompiledProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipes = rng.random_range(2..=3usize);
    let rules_per_table = rng.random_range(2..=4usize);

    let mut src = String::from(
        r#"
header pkt { kind: 8; sel: 8; load: 16; }
metadata meta { drop: 1; stage0: 8; stage1: 8; stage2: 8; }
parser p {
  state start {
    extract(pkt);
    select (hdr.pkt.kind) { 1 => accept; 2 => accept; default => accept; }
  }
}
action drop_() { meta.drop = 1; }
action noop() { }
action set0(v: 8) { meta.stage0 = v; }
action set1(v: 8) { meta.stage1 = v; }
action set2(v: 8) { meta.stage2 = v; }
"#,
    );
    let mut rules = String::new();
    let keys = ["hdr.pkt.sel", "meta.stage0", "meta.stage1"];
    let setters = ["set0", "set1", "set2"];
    for i in 0..pipes {
        src.push_str(&format!(
            r#"
table t{i} {{
  key = {{ {key}: exact; }}
  actions = {{ {set}; drop_; noop; }}
  default_action = noop();
}}
control c{i} {{
  if (meta.drop == 0) {{ apply(t{i}); }}
}}
"#,
            key = keys[i],
            set = setters[i],
        ));
        rules.push_str(&format!("rules t{i} {{\n"));
        for r in 0..rules_per_table {
            // Random mix of setter and drop rules; exact keys drawn from a
            // small overlapping domain so cross-pipeline pruning kicks in.
            let key = rng.random_range(1..=4u32);
            if rng.random_range(0..4u8) == 0 {
                rules.push_str(&format!("  {key} => drop_();\n"));
            } else {
                rules.push_str(&format!("  {key} => {}({});\n", setters[i], r + 1));
            }
        }
        rules.push_str("}\n");
    }
    let pipe_names: Vec<String> = (0..pipes).map(|i| format!("ppl{i}")).collect();
    for (i, name) in pipe_names.iter().enumerate() {
        if i == 0 {
            src.push_str(&format!("pipeline {name} {{ parser = p; control = c{i}; }}\n"));
        } else {
            src.push_str(&format!("pipeline {name} {{ control = c{i}; }}\n"));
        }
    }
    src.push_str("topology {\n  start -> ppl0;\n");
    for w in pipe_names.windows(2) {
        src.push_str(&format!("  {} -> {};\n", w[0], w[1]));
    }
    src.push_str(&format!("  {} -> end;\n}}\n", pipe_names.last().unwrap()));
    src.push_str("deparser { emit(pkt); }\n");

    // Duplicate exact keys within a table are shadowed rules; the rule
    // parser accepts them and first-match-wins handles the overlap.
    compile(
        &parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}")),
        &parse_rules(&rules).unwrap(),
    )
    .unwrap_or_else(|e| panic!("{e}\n{src}\n{rules}"))
}

/// Deterministic replay signatures of every template in a run.
fn behaviour_set(program: &CompiledProgram, run: &mut meissa::core::RunOutput) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..run.templates.len() {
        let t = run.templates[i].clone();
        let input = t
            .instantiate(&mut run.pool, &run.cfg.fields, &[])
            .expect("every generated template instantiates");
        let trace = trace_execution(program, &input);
        assert!(
            !trace.iter().any(|s| s.stmt.contains("stuck")),
            "template {i}'s model must execute to completion"
        );
        let sig: String = trace.iter().map(|s| format!("{},", s.node.0)).collect();
        set.insert(sig);
    }
    set
}

#[test]
fn summary_preserves_full_path_coverage_on_random_programs() {
    for seed in 0..12u64 {
        let program = random_program(seed);
        let mut with = Meissa::new().run(&program);
        let mut without = Meissa::without_summary().run(&program);
        assert_eq!(
            with.templates.len(),
            without.templates.len(),
            "template counts must match (seed {seed})"
        );
        let a = behaviour_set(&program, &mut with);
        let b = behaviour_set(&program, &mut without);
        assert_eq!(a, b, "covered behaviours must match (seed {seed})");
        assert_eq!(
            a.len(),
            with.templates.len(),
            "each template covers a distinct behaviour (seed {seed})"
        );
    }
}

#[test]
fn every_template_model_satisfies_its_own_constraints() {
    // Definition 3's β → execution obligation, spot-checked by evaluating
    // each constraint term under the model-derived input.
    let program = random_program(99);
    let mut run = Meissa::new().run(&program);
    for i in 0..run.templates.len() {
        let t = run.templates[i].clone();
        let input = t.instantiate(&mut run.pool, &run.cfg.fields, &[]).unwrap();
        for &c in &t.constraints {
            let fields = &run.cfg.fields;
            let env = |v: meissa::smt::VarId| {
                let name = run.pool.var_name(v);
                fields.get(name).map(|f| input.get(fields, f))
            };
            if let Some(meissa::smt::term::EvalValue::Bool(ok)) = run.pool.eval(c, &env) {
                assert!(ok, "template {i}: constraint {} unsatisfied", run.pool.display(c));
            }
        }
    }
}
