#!/usr/bin/env bash
# CI entry point: hermetic (offline) build + tests + dependency guard.
#
# The workspace must build with NOTHING from crates.io — every dependency is
# an in-repo `meissa-*` path crate (`meissa-testkit` supplies the RNG,
# property-testing, JSON, and bench support that external crates used to).
# The guard at the end fails the run if any non-workspace crate sneaks into
# the dependency graph.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release, offline)"
cargo build --release --offline --workspace --benches

echo "==> test (offline, sequential engine: MEISSA_THREADS=1, auto backend)"
# MEISSA_BACKEND=auto is the default; pin it so the CI run is explicit
# about which predicate backend answered the probes.
MEISSA_BACKEND=auto MEISSA_THREADS=1 cargo test -q --offline --workspace

echo "==> test (offline, parallel engine: MEISSA_THREADS=4, auto backend)"
# Same suite again under the work-stealing explorer: templates must be
# byte-identical to the sequential run (the golden/e2e tests assert exact
# output), so this catches any thread-count-dependent behavior.
MEISSA_BACKEND=auto MEISSA_THREADS=4 cargo test -q --offline --workspace

echo "==> test (offline, smt-only backend: MEISSA_BACKEND=smt)"
# The suite once more with every probe forced onto the incremental SMT
# solver: output must not depend on which backend decided the probes
# (backend_equivalence/backend_prop assert it explicitly; the rest of the
# suite re-asserts it wholesale).
MEISSA_BACKEND=smt MEISSA_THREADS=4 cargo test -q --offline -p meissa-suite -p meissa-core

echo "==> test (offline, clause exchange off: MEISSA_CLAUSE_SHARE=off)"
# The parallel run once more with the learned-clause exchange disabled:
# shared lemmas may only save SAT-engine work, never steer the search, so
# every golden/e2e/determinism assertion must hold identically without
# them (clause_exchange.rs additionally diffs the two modes head-to-head).
MEISSA_CLAUSE_SHARE=off MEISSA_THREADS=4 cargo test -q --offline -p meissa-suite -p meissa-core

echo "==> test (offline, stateful sequences: MEISSA_K_PACKETS=2)"
# The core + suite tests once more with the sequence-length knob set:
# `Meissa::run` is contractually independent of `k_packets` (only
# `run_sequences` consumes it), so every golden and e2e assertion must
# hold unchanged — while the stateful suite tests exercise the k=2
# sequence engine, the register-threading unroller, and the stateful
# wire checker directly.
MEISSA_K_PACKETS=2 MEISSA_THREADS=4 cargo test -q --offline -p meissa-suite -p meissa-core

echo "==> loopback smoke test: gw-3 through the wire driver"
# Spawns the switch agent on an ephemeral loopback port and streams the
# gw-3 suite through the TCP sender/receiver/checker (transport faults
# off); the test asserts zero spurious failures and verdict-for-verdict
# agreement with the in-process driver.
cargo test -q --offline -p meissa-suite --test wire_equivalence

echo "==> wire tests again under binary framing: MEISSA_WIRE_FRAMING=bin"
# The same loopback equivalence run plus the 16-fault seeded matrix and
# the codec property tests, with the client requesting the compact binary
# codec at Hello time. Framing is transport, not semantics: every verdict
# must match the JSON-framed runs bug-for-bug, including under injected
# transport faults.
MEISSA_WIRE_FRAMING=bin cargo test -q --offline \
  -p meissa-suite --test wire_equivalence --test fault_matrix
MEISSA_WIRE_FRAMING=bin cargo test -q --offline \
  -p meissa-netdriver --test codec_props

echo "==> netdriver throughput guard: binary loopback floor (host-gated)"
# Streams the gw-3 (8-EIP) suite through the pipelined wire client with
# binary framing at 4 connections and fails if the best-of-3 replay-phase
# throughput lands under 20k cases/s. The floor is calibrated for a
# dedicated CI host; set MEISSA_SKIP_NETDRIVER_GUARD=1 on shared or
# heavily loaded machines.
MEISSA_BENCH_NETDRIVER=1 cargo bench -q --offline -p meissa-bench

echo "==> soak smoke: traced sub-second soaks + meissa-trace --check"
# The short soak tests once more with a JSONL trace sink attached: the
# wire.case / wire.conn / wire.run spans the pipelined client emits must
# survive the sustained-replay path too. meissa-trace then validates the
# trace wholesale (lines parse, span ids unique, parents resolve, children
# nest). The full bench leaves a longer 5 s soak trace behind as
# results/trace_netdriver_soak.jsonl with the same span vocabulary.
SOAK_TRACE="$PWD/target/soak_smoke.jsonl"
rm -f "$SOAK_TRACE"
MEISSA_TRACE="$SOAK_TRACE" cargo test -q --offline -p meissa-netdriver --test codec_props soak
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- --check "$SOAK_TRACE"

echo "==> bench smoke: gw-3-r8 figures row vs goldens"
# Runs the figures bench in smoke mode: one gw-3 (8-EIP) row through the
# DFS and summary engines at threads=1, asserting smt_checks and template
# counts against goldens. Catches silent drift in the Fig. 11b metric —
# batched probing must keep one smt_check per probed arm — without paying
# for the full bench sweep. With observability off (no MEISSA_TRACE here),
# this also runs the disabled-path guard: a gated obs site must cost one
# relaxed atomic load (< 5 ns), or the smoke run fails.
MEISSA_BENCH_SMOKE=1 cargo bench -q --offline -p meissa-bench

echo "==> stateful bench smoke: firewall unrolling sweep + sequence trace"
# Runs the stateful unrolling sweep (sequence templates and time vs k on
# the connection-tracking firewall, writing results/stateful_unroll.txt
# and BENCH_stateful.json), then reconciles the engine's sequence.* spans
# with meissa-trace: every line parses, span ids are unique, parents
# resolve, children nest. The sweep itself asserts the k=1 degeneration
# contract against the single-packet engine.
MEISSA_BENCH_STATEFUL=1 cargo bench -q --offline -p meissa-bench
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- --check results/trace_stateful_unroll.jsonl
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- results/trace_stateful_unroll.jsonl

echo "==> scaling guard: gw-3-r32/dfs t4 speedup (host-gated)"
# On a host with >= 4 cores the work-stealing DFS must deliver at least a
# 2.0x speedup at 4 threads on the large gateway, or the run fails — this
# is the regression tripwire for the serialization bugs the scaling trace
# work flushed out (static donation depth, merge on the join path, cold
# min_paths floor). On smaller hosts the engine right-sizes its pool to
# the available cores, the target is unattainable by construction, and
# the guard is skipped.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  MEISSA_BENCH_SCALING=1 cargo bench -q --offline -p meissa-bench
else
  echo "skipped: host exposes $cores core(s) (< 4)"
fi

echo "==> obs smoke: traced gw-3-r8 run + meissa-trace --check"
# Re-runs the bench smoke with a JSONL trace sink attached (the engine's
# counters must not move — the smoke goldens still apply), then validates
# the trace with meissa-trace: every line parses, span ids are unique,
# parents resolve, children nest inside their parent's interval. The
# summarizer run at the end proves the per-phase/per-worker report path.
OBS_TRACE="$PWD/target/obs_smoke.jsonl"
rm -f "$OBS_TRACE"
MEISSA_BENCH_SMOKE=1 MEISSA_TRACE="$OBS_TRACE" cargo bench -q --offline -p meissa-bench
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- --check "$OBS_TRACE"
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- "$OBS_TRACE"

echo "==> coverage ledger & diff gate: identical runs match, mutations fail"
# Two identical-seed traced gw-3 runs append RunRecords to separate
# ledgers; `meissa-trace diff` must pass them (covered arms preserved,
# smt_checks/templates/valid_paths exactly equal). Then a seeded
# coverage-dropping mutation — the last eip_lookup rule removed — must
# make the gate FAIL and name the now-missing rule, or the gate itself
# is broken.
LEDGER_DIR="$PWD/target/ledger_gate"
rm -rf "$LEDGER_DIR" && mkdir -p "$LEDGER_DIR"
cargo run -q --offline --release -p meissa-bench --bin meissa-run -- \
  gw-3 --eips 8 --threads 4 --ledger "$LEDGER_DIR/a.jsonl"
cargo run -q --offline --release -p meissa-bench --bin meissa-run -- \
  gw-3 --eips 8 --threads 4 --ledger "$LEDGER_DIR/b.jsonl"
cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- \
  diff "$LEDGER_DIR/a.jsonl" "$LEDGER_DIR/b.jsonl"
cargo run -q --offline --release -p meissa-bench --bin meissa-run -- \
  gw-3 --eips 8 --threads 4 --ledger "$LEDGER_DIR/mut.jsonl" --drop-last-rule eip_lookup
if out=$(cargo run -q --offline --release -p meissa-bench --bin meissa-trace -- \
    diff "$LEDGER_DIR/a.jsonl" "$LEDGER_DIR/mut.jsonl"); then
  echo "diff gate FAILED to fail on a coverage-dropping mutation:" >&2
  echo "$out" >&2
  exit 1
fi
if ! echo "$out" | grep -q "table eip_lookup rule .* absent in candidate"; then
  echo "diff gate failed but did not name the dropped rule:" >&2
  echo "$out" >&2
  exit 1
fi
echo "ok: identical runs diff clean; dropped rule named and gated"

echo "==> dependency guard: workspace crates only"
# Every line of the flat dependency listing must be a meissa-* path crate
# (or the facade crate `meissa` itself). Anything else is an external
# dependency and breaks the hermetic-build guarantee.
bad=$(cargo tree --offline --workspace --prefix none --edges normal,build,dev \
  | sed 's/ (\*)$//' | sort -u \
  | grep -v -E '^meissa(-[a-z]+)? v[0-9.]+ \(/' || true)
if [ -n "$bad" ]; then
  echo "non-workspace dependencies found:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok: dependency graph is meissa-* only"
