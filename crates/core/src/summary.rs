//! Algorithm 2: code summary.
//!
//! Pipelines are processed in topological order (line 2); for each:
//!
//! 1. **Public pre-condition** (lines 4–7): every valid path from the CFG
//!    entry to the pipeline's entry marker is enumerated over the
//!    *already-summarized* prefix graph. `C_pub` is the set-intersection of
//!    the paths' constraint sets; `V_pub` keeps a field's symbolic value
//!    only when *all* paths agree on it (the `★` of Lemma 1 is "absent").
//! 2. **Pipeline search** (lines 8–9): symbolic execution *within* the
//!    pipeline, in a fresh variable scope where every field reads as its
//!    value at pipeline entry (`f@ppl`). The pre-condition is installed as
//!    base assertions — `C_pub` plus binding equations `f@ppl == V_pub(f)`
//!    — so both intra-pipeline redundancy elimination (Fig. 7) and
//!    inter-pipeline pre-condition filtering (Fig. 8) prune the search.
//! 3. **Re-encoding** (lines 10–25): each valid path becomes one predicate
//!    node (the AND of its local constraints, rewritten over plain field
//!    reads) followed by `@var ← var` snapshots for every changed field and
//!    then `var ← value[@…]` assignments — the auxiliary-variable encoding
//!    that preserves the atomicity of simultaneous updates (the
//!    `srcPort`/`dstPort` example of §3.3).
//!
//! The summarized pipeline body replaces the original region; markers and
//! inter-pipeline wiring stay, so Definition 4's invariant — every valid
//! path of the original graph has exactly one counterpart with the same
//! path condition and effect — holds by construction (§3.4).

use crate::exec::{ExecConfig, ExecStats, RawPath};
use crate::session::SolveSession;
use crate::symstate::SymCtx;
use meissa_ir::{AExp, AOp, BExp, Cfg, CmpOp, FieldId, PipelineId, Stmt};
use meissa_smt::{TermId, TermNode, TermPool};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Statistics for one code-summary pass.
#[derive(Clone, Debug, Default)]
pub struct SummaryStats {
    /// Per-pipeline (name, entry paths, valid paths kept).
    pub pipelines: Vec<(String, u64, u64)>,
    /// SMT checks spent inside the summary pass.
    pub smt_checks: u64,
    /// Pre-condition probes the pass routed through the batched assumption
    /// API ([`meissa_smt::Solver::check_under`]); each still counts as one
    /// of `smt_checks`.
    pub batched_probes: u64,
    /// Batched sibling probes issued by the pass (≥ 2 arms each).
    pub arm_batches: u64,
    /// Wall time of the pass.
    pub elapsed: Duration,
    /// True when a time budget expired mid-pass.
    pub timed_out: bool,
}

impl SummaryStats {
    /// Folds one exploration's per-call counters into the pass totals.
    fn absorb(&mut self, st: &ExecStats) {
        self.smt_checks += st.smt_checks;
        self.batched_probes += st.batched_probes;
        self.arm_batches += st.arm_batches;
        self.timed_out |= st.timed_out;
    }
}

/// The result of a code-summary pass.
pub struct SummaryOutcome {
    /// Statistics.
    pub stats: SummaryStats,
    /// Every valid end-to-end path, accumulated by the incremental
    /// extension — identical to what Algorithm 2's final DFS (line 27)
    /// would discover on the summarized graph, available without re-walking
    /// it. `None` when a time budget interrupted the pass.
    pub completed: Option<Vec<RawPath>>,
    /// The program-scope context (hash definitions for template
    /// obligations).
    pub ctx: SymCtx,
}

/// Summarizes every pipeline of `cfg` in place (Algorithm 2 lines 1–25).
/// Test generation on the summarized graph is the caller's job (line 27) —
/// or, equivalently, the returned [`SummaryOutcome::completed`] path set.
///
/// Line 5's "get paths from CFG.entry to pipeline.entry" is computed
/// *incrementally*: valid paths to each pipeline's entry are cached and
/// extended through each pipeline as soon as it is summarized, instead of
/// re-exploring the whole prefix graph per pipeline. This is a sound
/// refinement — summarizing a pipeline never changes the regions before it
/// — that removes a quadratic-in-pipeline-count re-enumeration.
pub fn summarize(cfg: &mut Cfg, session: &mut SolveSession, config: &ExecConfig) -> SummaryOutcome {
    let mut stats = SummaryStats::default();
    let mut completed: Vec<RawPath> = Vec::new();
    let t0 = std::time::Instant::now();
    let order = cfg.pipeline_topo_order();
    let entry_of: Vec<meissa_ir::NodeId> = order.iter().map(|&p| cfg.pipeline(p).entry).collect();

    // One program-scope context across the whole pass so cached paths'
    // terms stay consistent. Each exploration uses a fresh solver: frames
    // and learned clauses from thousands of pre-condition probes would
    // otherwise accumulate and slow propagation more than re-blasting
    // costs.
    let mut prog_ctx = SymCtx::new(None);
    // Valid paths from the program entry to each pipeline's entry marker.
    let mut cache: HashMap<meissa_ir::NodeId, Vec<RawPath>> = HashMap::new();

    // Seed: paths from the program entry to the first pipeline entries.
    // (`explore_parallel` runs the unchanged sequential engine at one
    // thread, so this is one code path for every thread count.)
    {
        let targets: HashSet<meissa_ir::NodeId> = entry_of.iter().copied().collect();
        let (sink_paths, st) = crate::parallel::explore_parallel(
            cfg,
            session,
            &mut prog_ctx,
            cfg.entry(),
            &targets,
            &[],
            &[],
            config,
        );
        stats.absorb(&st);
        let entry_set: HashSet<meissa_ir::NodeId> = entry_of.iter().copied().collect();
        for p in sink_paths {
            let end = *p.path.last().expect("non-empty path");
            if entry_set.contains(&end) {
                cache.entry(end).or_default().push(p);
            } else {
                completed.push(p); // terminated before any pipeline
            }
        }
    }

    // One pipeline engine for every thread count. The batched loop runs
    // each group search and seed extension as an `explore_batch` job over a
    // worker session seeded with a read-only snapshot of the main verdict
    // cache, so per-job counters are a function of (job, snapshot) alone —
    // sequential and parallel summary used to disagree on
    // `sat_engine_calls` (5121 vs 5217 on gw-3-r8) precisely because the
    // sequential loop shared one accumulating cache while batch workers
    // started cold.
    summarize_pipelines_batched(
        cfg,
        session,
        config,
        &order,
        &entry_of,
        &mut prog_ctx,
        &mut cache,
        &mut completed,
        &mut stats,
    );
    stats.elapsed = t0.elapsed();
    let interrupted = stats.timed_out;
    let completed = dedup_subsumed(&session.pool, completed);
    SummaryOutcome {
        stats,
        completed: if interrupted { None } else { Some(completed) },
        ctx: prog_ctx,
    }
}

/// Drops completed paths whose constraint set strictly contains another
/// path's (their input region is a subset; the program is deterministic, so
/// the covered behaviour is identical). Such overlaps arise when one §7
/// group's pre-condition pins a field that another group leaves open —
/// both groups then re-discover the open-field variant of the same path.
fn dedup_subsumed(pool: &TermPool, completed: Vec<RawPath>) -> Vec<RawPath> {
    use std::collections::BTreeSet;
    // Bucket by the set of positive (non-negated) conjuncts: a subsuming
    // pair differs only in extra negations.
    let mut buckets: HashMap<Vec<TermId>, Vec<(BTreeSet<TermId>, usize)>> = HashMap::new();
    for (i, p) in completed.iter().enumerate() {
        let mut pos: Vec<TermId> = p
            .constraints
            .iter()
            .copied()
            .filter(|&c| !matches!(pool.node(c), TermNode::BoolNot(_)))
            .collect();
        pos.sort();
        pos.dedup();
        let full: BTreeSet<TermId> = p.constraints.iter().copied().collect();
        buckets.entry(pos).or_default().push((full, i));
    }
    let mut drop: HashSet<usize> = HashSet::new();
    for entries in buckets.values() {
        for (a_set, a_idx) in entries {
            for (b_set, b_idx) in entries {
                if a_idx != b_idx
                    && !drop.contains(a_idx)
                    && (a_set.is_subset(b_set) && (a_set.len() < b_set.len() || a_idx < b_idx))
                {
                    drop.insert(*b_idx);
                }
            }
        }
    }
    completed
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !drop.contains(i))
        .map(|(_, p)| p)
        .collect()
}

/// A constant projection of a path onto a pipeline's read-set (§7 grouping
/// key).
type Projection = Vec<(FieldId, meissa_num::Bv)>;

/// A read field is constant at entry when its symbolic value folded to a
/// constant (assigned upstream), or when the path *constrains* it to one
/// (`dst == 10.0.0.7` from an upstream exact match): both pin the field
/// for every packet following the path.
fn const_value_on(
    prog_ctx: &SymCtx,
    pool: &TermPool,
    p: &RawPath,
    f: FieldId,
) -> Option<meissa_num::Bv> {
    if let Some(&(_, t)) = p.final_values.iter().find(|&&(pf, _)| pf == f) {
        return pool.as_const(t);
    }
    for &c in &p.constraints {
        if let TermNode::Cmp(meissa_smt::term::CmpOp::Eq, a, b) = *pool.node(c) {
            let (var_side, const_side) = match (pool.node(a), pool.node(b)) {
                (TermNode::BvVar(v), TermNode::BvConst(k)) => (*v, *k),
                (TermNode::BvConst(k), TermNode::BvVar(v)) => (*v, *k),
                _ => continue,
            };
            if prog_ctx.field_of_var(var_side) == Some(f) {
                return Some(const_side);
            }
        }
    }
    None
}

/// §7 grouping ("we group pre-conditions according to packet type, conduct
/// summary separately and merge them into a full summary"): entry paths are
/// grouped by the *constant-valued* projection onto the pipeline's read-set
/// — the fields this region consumes whose symbolic value at entry is a
/// known constant (packet type flags, assigned VNIs, drop bits…). Within a
/// group those constants are installed as value-stack seeds, so the
/// per-group search folds its way through the pipeline exactly like a
/// concrete prefix would, and each group's paths are re-encoded behind a
/// shared group-guard prefix that restores the discrimination in the merged
/// summary. Also computes the discriminating-field set: fields whose
/// projected constant is identical across every group (or absent
/// everywhere) discriminate nothing; dropping them keeps group guards short
/// while preserving pairwise exclusivity of groups.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn group_entry_paths<'a>(
    cfg: &Cfg,
    pool: &TermPool,
    prog_ctx: &SymCtx,
    entry: meissa_ir::NodeId,
    exit: meissa_ir::NodeId,
    entry_paths: &'a [RawPath],
    config: &ExecConfig,
    name: &str,
) -> (
    Vec<FieldId>,
    Vec<(Projection, Vec<&'a RawPath>)>,
    HashSet<FieldId>,
) {
    let read_set = {
        let mut rs: Vec<FieldId> = region_read_set(cfg, entry, exit).into_iter().collect();
        rs.sort();
        rs
    };
    let mut groups: HashMap<Projection, Vec<&RawPath>> = HashMap::new();
    for p in entry_paths {
        let key: Projection = if config.grouped_summary {
            read_set
                .iter()
                .filter_map(|&f| const_value_on(prog_ctx, pool, p, f).map(|c| (f, c)))
                .collect()
        } else {
            // Ablation: one global group — Algorithm 2's ungrouped public
            // pre-condition (lines 4–7 verbatim).
            Vec::new()
        };
        groups.entry(key).or_default().push(p);
    }
    let mut group_list: Vec<(Projection, Vec<&RawPath>)> = groups.into_iter().collect();
    group_list.sort_by(|a, b| a.0.cmp(&b.0)); // determinism
    if std::env::var_os("MEISSA_SUMMARY_DEBUG").is_some() {
        eprintln!(
            "summary[{name}]: {} entry paths, {} groups, read_set {}",
            entry_paths.len(),
            group_list.len(),
            read_set.len()
        );
    }
    let discriminating: HashSet<FieldId> = {
        let mut values: HashMap<FieldId, HashSet<meissa_num::Bv>> = HashMap::new();
        let mut presence: HashMap<FieldId, usize> = HashMap::new();
        for (proj, _) in &group_list {
            for &(f, c) in proj {
                values.entry(f).or_default().insert(c);
                *presence.entry(f).or_insert(0) += 1;
            }
        }
        values
            .into_iter()
            .filter(|(f, vs)| vs.len() > 1 || presence[f] < group_list.len())
            .map(|(f, _)| f)
            .collect()
    };
    (read_set, group_list, discriminating)
}

/// Everything Algorithm 2 needs to *search* one §7 group, computed without
/// running the search: the group pre-condition `C_pub^g` plus binding
/// equations (`base`), the constant value seeds, the group guard, and a
/// fresh pipeline-scope context. Building a plan mutates the main pool
/// (constants, entry variables, binding equations) but issues no solver
/// query — so plans for many groups, or for every pipeline at one topo
/// depth, can be built up front and their searches run as one parallel
/// batch.
struct GroupPlan {
    /// Group guard: one predicate per discriminating projected constant,
    /// shared by all of the group's paths (the trie merges them into one
    /// node chain).
    guard: Vec<Stmt>,
    ppl_ctx: SymCtx,
    base: Vec<TermId>,
    seeds: Vec<(FieldId, TermId)>,
    seed_map: HashMap<FieldId, TermId>,
}

#[allow(clippy::too_many_arguments)]
fn build_group_plan(
    fields: &meissa_ir::FieldTable,
    pool: &mut TermPool,
    prog_ctx: &mut SymCtx,
    name: &str,
    read_set: &[FieldId],
    discriminating: &HashSet<FieldId>,
    projection: &Projection,
    members: &[&RawPath],
) -> GroupPlan {
    // Group pre-condition: C_pub^g (constraint intersection within the
    // group); the constant projection is installed as value seeds so
    // interior predicates fold the way they would under any member
    // prefix (Lemma 1 holds per group: every member's concrete state
    // agrees with the seeds on the seeded fields).
    let mut c_pub: HashSet<TermId> = members[0].constraints.iter().copied().collect();
    for p in &members[1..] {
        let set: HashSet<TermId> = p.constraints.iter().copied().collect();
        c_pub.retain(|t| set.contains(t));
    }
    let mut ppl_ctx = SymCtx::new(Some(name));
    let mut base: Vec<TermId> = c_pub.into_iter().collect();
    base.sort(); // deterministic assertion order
    let seeds: Vec<(FieldId, TermId)> = projection
        .iter()
        .map(|&(f, c)| (f, pool.bv_const(c)))
        .collect();
    let seed_map: HashMap<FieldId, TermId> = seeds.iter().copied().collect();
    // Non-constant reads on which every member still agrees get binding
    // equations instead of value seeds: they connect the pipeline-entry
    // variable to the program-level term so that C_pub^g constraints
    // (e.g. Fig. 8's `proto == TCP`) keep filtering inside the pipe.
    {
        let value_on =
            |prog_ctx: &mut SymCtx, pool: &mut TermPool, p: &RawPath, f: FieldId| -> TermId {
                p.final_values
                    .iter()
                    .find(|&&(pf, _)| pf == f)
                    .map(|&(_, t)| t)
                    .unwrap_or_else(|| prog_ctx.input_var(pool, fields, f))
            };
        let v0 = crate::symstate::ValueStack::new();
        'bind: for &f in read_set {
            if seed_map.contains_key(&f) {
                continue;
            }
            let first = value_on(prog_ctx, pool, members[0], f);
            for p in &members[1..] {
                if value_on(prog_ctx, pool, p, f) != first {
                    continue 'bind; // ★: members disagree
                }
            }
            let entry_var = ppl_ctx.read(pool, fields, &v0, f);
            let bind = pool.eq(entry_var, first);
            base.push(bind);
        }
    }
    let guard: Vec<Stmt> = projection
        .iter()
        .filter(|(f, _)| discriminating.contains(f))
        .map(|&(f, c)| Stmt::Assume(BExp::eq(AExp::Field(f), AExp::Const(c))))
        .collect();
    GroupPlan {
        guard,
        ppl_ctx,
        base,
        seeds,
        seed_map,
    }
}

/// A pipeline's search plan: one [`GroupPlan`] per §7 group, ready to run
/// as batch jobs. Empty `groups` means the pipeline is unreachable.
struct PipelinePlan {
    name: String,
    entry: meissa_ir::NodeId,
    exit: meissa_ir::NodeId,
    num_entry_paths: u64,
    groups: Vec<GroupPlan>,
}

/// The read-only half of pipeline planning: region read-set, §7 grouping,
/// and the discriminating-field set. Touches the pool, program context, and
/// CFG only through shared references and issues no solver query — which is
/// what lets one topo level's analyses run on scoped threads while the pool
/// materialization ([`build_group_plan`]) stays sequential and
/// deterministic.
struct PipelineAnalysis<'a> {
    name: String,
    entry: meissa_ir::NodeId,
    exit: meissa_ir::NodeId,
    num_entry_paths: u64,
    read_set: Vec<FieldId>,
    group_list: Vec<(Projection, Vec<&'a RawPath>)>,
    discriminating: HashSet<FieldId>,
}

fn analyze_pipeline<'a>(
    cfg: &Cfg,
    pool: &TermPool,
    prog_ctx: &SymCtx,
    pid: PipelineId,
    entry_paths: &'a [RawPath],
    config: &ExecConfig,
) -> PipelineAnalysis<'a> {
    let (name, entry, exit) = {
        let p = cfg.pipeline(pid);
        (p.name.clone(), p.entry, p.exit)
    };
    let num_entry_paths = entry_paths.len() as u64;
    if entry_paths.is_empty() {
        return PipelineAnalysis {
            name,
            entry,
            exit,
            num_entry_paths,
            read_set: Vec::new(),
            group_list: Vec::new(),
            discriminating: HashSet::new(),
        };
    }
    let (read_set, group_list, discriminating) =
        group_entry_paths(cfg, pool, prog_ctx, entry, exit, entry_paths, config, &name);
    PipelineAnalysis {
        name,
        entry,
        exit,
        num_entry_paths,
        read_set,
        group_list,
        discriminating,
    }
}

/// The mutating half: materializes each group's plan into the main pool
/// (constants, entry variables, binding equations). Must run in topo order
/// on one thread — pool interning order decides `TermId` assignment, which
/// downstream sorts and renderings depend on.
fn plan_from_analysis(
    cfg: &Cfg,
    session: &mut SolveSession,
    prog_ctx: &mut SymCtx,
    analysis: &PipelineAnalysis<'_>,
) -> PipelinePlan {
    let fields = cfg.fields.clone();
    let groups = analysis
        .group_list
        .iter()
        .map(|(projection, members)| {
            build_group_plan(
                &fields,
                &mut session.pool,
                prog_ctx,
                &analysis.name,
                &analysis.read_set,
                &analysis.discriminating,
                projection,
                members,
            )
        })
        .collect();
    PipelinePlan {
        name: analysis.name.clone(),
        entry: analysis.entry,
        exit: analysis.exit,
        num_entry_paths: analysis.num_entry_paths,
        groups,
    }
}

/// Re-encodes one pipeline's batched group-search results and replaces the
/// pipeline body (lines 10–25), exactly as the sequential group loop does.
fn encode_pipeline(
    cfg: &mut Cfg,
    session: &mut SolveSession,
    stats: &mut SummaryStats,
    pid: PipelineId,
    plan: PipelinePlan,
    group_results: Vec<crate::parallel::JobResult>,
) {
    let PipelinePlan {
        name,
        entry,
        exit,
        num_entry_paths,
        groups,
        ..
    } = plan;
    if groups.is_empty() {
        // Unreachable pipeline: make the region impassable (an empty body
        // would read as a terminal leaf and fabricate truncated paths).
        cfg.replace_pipeline_body(pid, vec![vec![Stmt::Assume(BExp::False)]]);
        stats.pipelines.push((name, 0, 0));
        return;
    }
    // Nodes of *this* pipeline's (still original) body: a raw path may be
    // seeded with a prefix through earlier pipelines, whose rule sites must
    // not be re-attributed here.
    let region = pipeline_region_nodes(cfg, entry, exit);
    let mut encoded: Vec<(Vec<Stmt>, Vec<meissa_ir::RuleSite>)> = Vec::new();
    let mut seen_paths: HashMap<Vec<Stmt>, usize> = HashMap::new();
    for (mut g, r) in groups.into_iter().zip(group_results) {
        stats.absorb(&r.stats);
        // The worker explored in its own pool and scope; adopt its hash
        // obligations and entry variables so re-encoding sees the same
        // context a sequential search would have built.
        for d in r.hash_defs {
            g.ppl_ctx.add_hash_def(d);
        }
        g.ppl_ctx.register_pool_vars(&mut session.pool, &cfg.fields);
        for p in &r.paths {
            let mut enc = g.guard.clone();
            enc.extend(encode_path(
                cfg,
                &session.pool,
                &g.ppl_ctx,
                &name,
                p,
                g.base.len(),
                &g.seed_map,
            ));
            // The rule sites this original path traversed, to be carried
            // onto the encoded path's final trie node.
            let sites: Vec<meissa_ir::RuleSite> = p
                .path
                .iter()
                .filter(|n| region.contains(n))
                .flat_map(|&n| cfg.rule_sites(n).iter().cloned())
                .collect();
            match seen_paths.get(&enc) {
                Some(&i) => {
                    // Distinct originals collapsing to one encoding: the
                    // encoded path stands for all of them.
                    let merged = &mut encoded[i].1;
                    for s in sites {
                        if !merged.contains(&s) {
                            merged.push(s);
                        }
                    }
                }
                None => {
                    seen_paths.insert(enc.clone(), encoded.len());
                    encoded.push((enc, sites));
                }
            }
        }
    }
    if encoded.is_empty() {
        cfg.replace_pipeline_body(pid, vec![vec![Stmt::Assume(BExp::False)]]);
        stats.pipelines.push((name, num_entry_paths, 0));
        return;
    }
    let kept = encoded.len() as u64;
    cfg.replace_pipeline_body_with_sites(pid, encoded);
    stats.pipelines.push((name, num_entry_paths, kept));
}

/// The nodes strictly inside a pipeline region plus its markers: everything
/// reachable from `entry` without passing `exit`.
fn pipeline_region_nodes(
    cfg: &Cfg,
    entry: meissa_ir::NodeId,
    exit: meissa_ir::NodeId,
) -> HashSet<meissa_ir::NodeId> {
    let mut seen: HashSet<meissa_ir::NodeId> = HashSet::new();
    let mut stack = vec![entry];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || n == exit {
            continue;
        }
        stack.extend(cfg.succ(n).iter().copied());
    }
    seen
}

/// Partitions pipelines into topo-depth levels: depth(B) = 1 + max depth(A)
/// over every pipeline A from whose exit B's entry is reachable. Same-depth
/// pipelines are mutually unreachable (any path between two pipelines
/// passes the upstream one's exit, which would increment the depth), so
/// their pre-conditions don't depend on each other and their searches can
/// run concurrently. `order` is a topo linearization, which makes the
/// single forward pass below sufficient.
fn pipeline_levels(cfg: &Cfg, order: &[PipelineId]) -> Vec<Vec<usize>> {
    let n = order.len();
    let entry_index: HashMap<meissa_ir::NodeId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &p)| (cfg.pipeline(p).entry, i))
        .collect();
    let mut depth = vec![0usize; n];
    for i in 0..n {
        let exit = cfg.pipeline(order[i]).exit;
        let mut stack = vec![exit];
        let mut seen = HashSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            if let Some(&j) = entry_index.get(&v) {
                if j != i && depth[j] < depth[i] + 1 {
                    depth[j] = depth[i] + 1;
                }
            }
            stack.extend(cfg.succ(v).iter().copied());
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); n.min(max_depth + 1)];
    for (i, &d) in depth.iter().enumerate() {
        levels[d].push(i);
    }
    levels.retain(|l| !l.is_empty());
    levels
}

/// The `config.threads > 1` pipeline loop: per topo-depth level, plan every
/// pipeline sequentially (cheap; pool mutations stay deterministic), run
/// all group searches of the level as one parallel batch, re-encode in topo
/// order, then run every seed extension of the level as a second batch.
/// Batch results merge in job order, so cache routing, completed-path
/// order, and main-pool term interning are identical to the sequential
/// loop's.
#[allow(clippy::too_many_arguments)]
fn summarize_pipelines_batched(
    cfg: &mut Cfg,
    session: &mut SolveSession,
    config: &ExecConfig,
    order: &[PipelineId],
    entry_of: &[meissa_ir::NodeId],
    prog_ctx: &mut SymCtx,
    cache: &mut HashMap<meissa_ir::NodeId, Vec<RawPath>>,
    completed: &mut Vec<RawPath>,
    stats: &mut SummaryStats,
) {
    use crate::parallel::{explore_batch, ExploreJob};
    for level in pipeline_levels(cfg, order) {
        // ---- analyze (read-only, parallel across the level) ---------------
        let seeds_by: Vec<(usize, Vec<RawPath>)> = level
            .iter()
            .map(|&idx| (idx, cache.remove(&entry_of[idx]).unwrap_or_default()))
            .collect();
        let analyses: Vec<PipelineAnalysis<'_>> = {
            let cfg_r: &Cfg = cfg;
            let pool: &TermPool = &session.pool;
            let ctx_r: &SymCtx = prog_ctx;
            if config.threads > 1 && seeds_by.len() > 1 {
                // §7 grouping scans every entry path's constraint list per
                // read field — the serial fraction Amdahl charges the whole
                // parallel region for. Same-level pipelines are independent,
                // so their analyses fan out on scoped threads.
                std::thread::scope(|s| {
                    let handles: Vec<_> = seeds_by
                        .iter()
                        .map(|(idx, seeds)| {
                            let idx = *idx;
                            s.spawn(move || {
                                analyze_pipeline(cfg_r, pool, ctx_r, order[idx], seeds, config)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("summary analysis thread panicked"))
                        .collect()
                })
            } else {
                seeds_by
                    .iter()
                    .map(|(idx, seeds)| analyze_pipeline(cfg_r, pool, ctx_r, order[*idx], seeds, config))
                    .collect()
            }
        };
        // ---- materialize plans (sequential, topo order) -------------------
        let plans: Vec<PipelinePlan> = analyses
            .iter()
            .map(|a| plan_from_analysis(cfg, session, prog_ctx, a))
            .collect();
        drop(analyses);
        let mut entries: Vec<(usize, Vec<RawPath>, Option<PipelinePlan>)> = seeds_by
            .into_iter()
            .zip(plans)
            .map(|((idx, seeds), plan)| (idx, seeds, Some(plan)))
            .collect();
        // ---- batched group searches ---------------------------------------
        let mut jobs: Vec<ExploreJob> = Vec::new();
        for (_, _, plan) in &entries {
            let plan = plan.as_ref().unwrap();
            for g in &plan.groups {
                jobs.push(ExploreJob {
                    start: plan.entry,
                    targets: std::iter::once(plan.exit).collect(),
                    base: g.base.clone(),
                    seeds: g.seeds.clone(),
                    scope: Some(plan.name.clone()),
                });
            }
        }
        let mut group_results = explore_batch(cfg, session, config, &jobs).into_iter();
        // ---- encode + replace bodies (topo order) -------------------------
        for (idx, _, plan) in &mut entries {
            let plan = plan.take().unwrap();
            let n = plan.groups.len();
            let results: Vec<_> = group_results.by_ref().take(n).collect();
            encode_pipeline(cfg, session, stats, order[*idx], plan, results);
        }
        if stats.timed_out {
            return;
        }
        // ---- batched seed extensions --------------------------------------
        // Extend each seed through its just-summarized pipeline: paths
        // reaching a later pipeline entry are cached for it; paths reaching
        // a program terminal are complete end-to-end valid paths. A
        // same-level pipeline's entry can appear in `later` but is
        // unreachable, so level batching routes exactly as the sequential
        // loop does.
        let laters: Vec<HashSet<meissa_ir::NodeId>> = entries
            .iter()
            .map(|&(idx, _, _)| entry_of[idx + 1..].iter().copied().collect())
            .collect();
        let mut ext_jobs: Vec<ExploreJob> = Vec::new();
        let mut ext_src: Vec<(usize, usize)> = Vec::new();
        for (pi, (idx, seeds, _)) in entries.iter().enumerate() {
            for (si, seed) in seeds.iter().enumerate() {
                ext_jobs.push(ExploreJob {
                    start: entry_of[*idx],
                    targets: laters[pi].clone(),
                    base: seed.constraints.clone(),
                    seeds: seed.final_values.clone(),
                    scope: None,
                });
                ext_src.push((pi, si));
            }
        }
        let ext_results = explore_batch(cfg, session, config, &ext_jobs);
        for ((pi, si), r) in ext_src.into_iter().zip(ext_results) {
            stats.absorb(&r.stats);
            for d in r.hash_defs {
                prog_ctx.add_hash_def(d);
            }
            let seed = &entries[pi].1[si];
            for mut p in r.paths {
                let end = *p.path.last().expect("non-empty path");
                let mut full = seed.path.clone();
                full.extend(p.path.iter().copied());
                p.path = full;
                if laters[pi].contains(&end) {
                    cache.entry(end).or_default().push(p);
                } else {
                    completed.push(p);
                }
            }
        }
        prog_ctx.register_pool_vars(&mut session.pool, &cfg.fields);
        if stats.timed_out {
            return;
        }
    }
}

/// Fields *read* by statements in the region between `entry` and `exit`
/// (guard operands and assignment right-hand sides).
fn region_read_set(
    cfg: &Cfg,
    entry: meissa_ir::NodeId,
    exit: meissa_ir::NodeId,
) -> HashSet<FieldId> {
    let mut reads = Vec::new();
    let mut stack = vec![entry];
    let mut seen = HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || n == exit {
            continue;
        }
        match cfg.stmt(n) {
            Stmt::Assume(b) => b.fields_into(&mut reads),
            Stmt::Assign(_, e) => e.fields_into(&mut reads),
        }
        stack.extend(cfg.succ(n));
    }
    reads.into_iter().collect()
}

/// Encodes one valid pipeline path as straight-line statements:
/// guard predicate, `@` snapshots, then effect assignments (lines 12–25).
fn encode_path(
    cfg: &mut Cfg,
    pool: &TermPool,
    ctx: &SymCtx,
    ppl_name: &str,
    path: &RawPath,
    base_len: usize,
    seeds: &HashMap<FieldId, TermId>,
) -> Vec<Stmt> {
    let mut stmts = Vec::new();

    // Guard: the constraints collected *inside* the pipeline (the base
    // pre-condition frame — the leading `base_len` entries — is context,
    // not part of this pipeline's guard). One predicate node per conjunct —
    // Algorithm 2's later public pre-condition intersections work on
    // constraint *sets*, so conjunct granularity must survive the
    // re-encoding. Deduplicate conjuncts (a rule may assert the same term
    // twice along one path) while preserving order.
    let mut seen: HashSet<TermId> = HashSet::new();
    let guards: Vec<BExp> = path
        .constraints
        .iter()
        .skip(base_len)
        .filter(|&&c| seen.insert(c))
        .map(|&c| term_to_bexp(cfg, pool, ctx, ppl_name, c, None))
        .filter(|b| *b != BExp::True)
        .collect();
    if guards.is_empty() {
        stmts.push(Stmt::Assume(BExp::True));
    } else {
        for g in guards {
            stmts.push(Stmt::Assume(g));
        }
    }

    // Which fields actually changed? A final value equal to the entry
    // variable, or to the group's seed constant, is no change.
    let mut changed: Vec<(FieldId, TermId)> = path
        .final_values
        .iter()
        .copied()
        .filter(|&(f, t)| !is_identity(pool, ctx, f, t) && seeds.get(&f) != Some(&t))
        .collect();
    changed.sort_by_key(|&(f, _)| f);
    let changed_set: HashSet<FieldId> = changed.iter().map(|&(f, _)| f).collect();

    // Snapshots: @ppl.field ← field (lines 16–19).
    let mut aux: HashMap<FieldId, FieldId> = HashMap::new();
    for &(f, _) in &changed {
        let width = cfg.fields.width(f);
        let aux_name = format!("@{ppl_name}.{}", cfg.fields.name(f));
        let a = cfg.fields.intern(&aux_name, width);
        aux.insert(f, a);
        stmts.push(Stmt::Assign(a, AExp::Field(f)));
    }

    // Effects: field ← value, entry references substituted with @aux for
    // changed fields (lines 20–24 — `SubstituteWithInit`).
    for &(f, t) in &changed {
        let rhs = term_to_aexp(cfg, pool, ctx, ppl_name, t, Some((&changed_set, &aux)));
        stmts.push(Stmt::Assign(f, rhs));
    }
    stmts
}

/// Is the term exactly the field's own pipeline-entry variable?
fn is_identity(pool: &TermPool, ctx: &SymCtx, f: FieldId, t: TermId) -> bool {
    match *pool.node(t) {
        TermNode::BvVar(v) => ctx.field_of_var(v) == Some(f),
        _ => false,
    }
}

type AuxMap<'m> = (&'m HashSet<FieldId>, &'m HashMap<FieldId, FieldId>);

/// Converts a solver term (over `field@ppl` entry variables) back into an IR
/// arithmetic expression over fields. With `aux = None`, entry variables
/// become plain field reads (correct in the guard, which precedes every
/// assignment). With `aux = Some(..)`, entry variables of *changed* fields
/// become their `@` snapshot.
#[allow(clippy::only_used_in_recursion)]
fn term_to_aexp(
    cfg: &mut Cfg,
    pool: &TermPool,
    ctx: &SymCtx,
    ppl: &str,
    t: TermId,
    aux: Option<AuxMap>,
) -> AExp {
    match pool.node(t).clone() {
        TermNode::BvConst(v) => AExp::Const(v),
        TermNode::BvVar(v) => {
            if let Some(f) = ctx.field_of_var(v) {
                if let Some((changed, map)) = aux {
                    if changed.contains(&f) {
                        return AExp::Field(map[&f]);
                    }
                }
                AExp::Field(f)
            } else if let Some(def) = ctx.hash_def_of(t) {
                // Hash stand-in: re-materialize the hash application so the
                // outer execution applies §4 handling again.
                let args = def
                    .keys
                    .clone()
                    .into_iter()
                    .map(|k| term_to_aexp(cfg, pool, ctx, ppl, k, aux))
                    .collect();
                AExp::Hash(def.alg, def.width, args)
            } else {
                panic!(
                    "summary: variable `{}` has no field mapping",
                    pool.var_name(v)
                );
            }
        }
        TermNode::BvBin(op, a, b) => {
            let ca = term_to_aexp(cfg, pool, ctx, ppl, a, aux);
            let cb = term_to_aexp(cfg, pool, ctx, ppl, b, aux);
            let op = match op {
                meissa_smt::term::BvBinOp::Add => AOp::Add,
                meissa_smt::term::BvBinOp::Sub => AOp::Sub,
                meissa_smt::term::BvBinOp::And => AOp::And,
                meissa_smt::term::BvBinOp::Or => AOp::Or,
                meissa_smt::term::BvBinOp::Xor => AOp::Xor,
            };
            AExp::bin(op, ca, cb)
        }
        TermNode::BvNot(a) => AExp::Not(Box::new(term_to_aexp(cfg, pool, ctx, ppl, a, aux))),
        TermNode::BvShl(a, n) => AExp::Shl(Box::new(term_to_aexp(cfg, pool, ctx, ppl, a, aux)), n),
        TermNode::BvShr(a, n) => AExp::Shr(Box::new(term_to_aexp(cfg, pool, ctx, ppl, a, aux)), n),
        other => panic!("summary: unexpected term shape {other:?} in pipeline effect"),
    }
}

/// Converts a boolean term back into an IR boolean expression (guard
/// position: entry variables read as plain fields).
#[allow(clippy::only_used_in_recursion)]
fn term_to_bexp(
    cfg: &mut Cfg,
    pool: &TermPool,
    ctx: &SymCtx,
    ppl: &str,
    t: TermId,
    aux: Option<AuxMap>,
) -> BExp {
    match pool.node(t).clone() {
        TermNode::BoolConst(true) => BExp::True,
        TermNode::BoolConst(false) => BExp::False,
        TermNode::BoolAnd(a, b) => BExp::and(
            term_to_bexp(cfg, pool, ctx, ppl, a, aux),
            term_to_bexp(cfg, pool, ctx, ppl, b, aux),
        ),
        TermNode::BoolOr(a, b) => BExp::or(
            term_to_bexp(cfg, pool, ctx, ppl, a, aux),
            term_to_bexp(cfg, pool, ctx, ppl, b, aux),
        ),
        TermNode::BoolNot(a) => BExp::not(term_to_bexp(cfg, pool, ctx, ppl, a, aux)),
        TermNode::Cmp(op, a, b) => {
            let ca = term_to_aexp(cfg, pool, ctx, ppl, a, aux);
            let cb = term_to_aexp(cfg, pool, ctx, ppl, b, aux);
            let op = match op {
                meissa_smt::term::CmpOp::Eq => CmpOp::Eq,
                meissa_smt::term::CmpOp::Ult => CmpOp::Lt,
            };
            BExp::Cmp(op, ca, cb)
        }
        other => panic!("summary: unexpected boolean term {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::generate_templates;
    use meissa_ir::{count_paths, CfgBuilder};
    use meissa_num::{BigUint, Bv};

    /// Builds the Fig. 7 two-table pipeline: `n` rules in each table,
    /// n² possible paths before summary, n after.
    fn fig7_pipeline(n: u128) -> Cfg {
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        let port = b.fields_mut().intern("egressPort", 9);
        let mac = b.fields_mut().intern("dstMAC", 48);
        b.nop(); // program entry
        b.begin_pipeline("ppl0");
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(dst),
                AExp::Const(Bv::new(32, 0x01010101 + i)),
            )));
            b.stmt(Stmt::Assign(port, AExp::Const(Bv::new(9, 1 + i))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(port),
                AExp::Const(Bv::new(9, 1 + i)),
            )));
            b.stmt(Stmt::Assign(mac, AExp::Const(Bv::new(48, i + 1))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.end_pipeline();
        b.nop(); // program exit
        b.finish()
    }

    #[test]
    fn fig7_intra_pipeline_elimination() {
        let mut cfg = fig7_pipeline(10);
        assert_eq!(count_paths(&cfg).total, BigUint::from_u64(100));
        let mut session = SolveSession::new();
        let outcome = summarize(&mut cfg, &mut session, &ExecConfig::default());
        assert_eq!(count_paths(&cfg).total, BigUint::from_u64(10));
        assert_eq!(outcome.stats.pipelines.len(), 1);
        assert_eq!(outcome.stats.pipelines[0].2, 10, "10 valid paths kept");
    }

    #[test]
    fn summary_preserves_valid_path_semantics() {
        // Definition 4, checked concretely: templates from the summarized
        // graph instantiate to inputs that execute on the ORIGINAL graph
        // with identical final state.
        let original = fig7_pipeline(6);
        let mut summarized = original.clone();
        let mut session = SolveSession::new();
        summarize(&mut summarized, &mut session, &ExecConfig::default());
        let out = generate_templates(&summarized, &mut session, &ExecConfig::default());
        assert_eq!(out.templates.len(), 6);
        let mac = original.fields.get("dstMAC").unwrap();
        let port = original.fields.get("egressPort").unwrap();
        let mut seen_macs = HashSet::new();
        for t in &out.templates {
            let input = t
                .instantiate(&mut session.pool, &summarized.fields, &[])
                .expect("template instantiates");
            // Replay on the summarized path: must succeed.
            let sum_out = meissa_ir::eval_path(&summarized, &t.path, &input)
                .expect("summarized path executes");
            // Replay on the original graph (find its unique valid path).
            let orig_outs: Vec<_> = meissa_ir::enumerate_paths(&original, 1000)
                .into_iter()
                .filter_map(|p| meissa_ir::eval_path(&original, &p, &input).ok())
                .collect();
            assert_eq!(orig_outs.len(), 1, "one valid original path per input");
            assert_eq!(
                orig_outs[0].get(&original.fields, mac),
                sum_out.get(&summarized.fields, mac),
                "same dstMAC effect"
            );
            assert_eq!(
                orig_outs[0].get(&original.fields, port),
                sum_out.get(&summarized.fields, port),
                "same egressPort effect"
            );
            seen_macs.insert(orig_outs[0].get(&original.fields, mac));
        }
        assert_eq!(seen_macs.len(), 6, "all six behaviours covered");
    }

    /// Two sequential pipelines where the first constrains proto == TCP on
    /// every path — Fig. 8's public pre-condition example.
    fn fig8_two_pipelines() -> Cfg {
        let mut b = CfgBuilder::new();
        let proto = b.fields_mut().intern("proto", 8);
        let a = b.fields_mut().intern("meta.a", 8);
        let c = b.fields_mut().intern("meta.c", 8);
        b.nop();
        // Pipeline 1: all paths require proto == 6 (TCP).
        b.begin_pipeline("ppl1");
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(proto),
            AExp::Const(Bv::new(8, 6)),
        )));
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..2u128 {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(a),
                AExp::Const(Bv::new(8, i)),
            )));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.end_pipeline();
        // Pipeline 2: branches on proto TCP vs UDP; UDP is dead.
        b.begin_pipeline("ppl2");
        let base = b.frontier();
        let mut arms = Vec::new();
        for (val, mark) in [(6u128, 1u128), (17, 2)] {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(proto),
                AExp::Const(Bv::new(8, val)),
            )));
            b.stmt(Stmt::Assign(c, AExp::Const(Bv::new(8, mark))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.end_pipeline();
        b.nop();
        b.finish()
    }

    #[test]
    fn fig8_public_precondition_prunes_udp() {
        let mut cfg = fig8_two_pipelines();
        // Before: 2 (ppl1) × 2 (ppl2) = 4 possible paths.
        assert_eq!(count_paths(&cfg).total, BigUint::from_u64(4));
        let mut session = SolveSession::new();
        let outcome = summarize(&mut cfg, &mut session, &ExecConfig::default());
        // ppl2 keeps only the TCP path: 2 × 1 = 2 paths remain.
        assert_eq!(count_paths(&cfg).total, BigUint::from_u64(2));
        let ppl2 = &outcome.stats.pipelines[1];
        assert_eq!(ppl2.2, 1, "UDP branch filtered by public pre-condition");
    }

    #[test]
    fn atomic_effect_encoding_uses_aux_vars() {
        // §3.3's example: srcPort ← 10000; dstPort ← srcPort + 1 inside a
        // pipeline must summarize so that dstPort gets the ENTRY srcPort + 1
        // ... no — sequential semantics makes dstPort = 10001. The aux-var
        // encoding must preserve exactly that.
        let mut b = CfgBuilder::new();
        let sp = b.fields_mut().intern("srcPort", 16);
        let dp = b.fields_mut().intern("dstPort", 16);
        b.nop();
        b.begin_pipeline("p");
        // dstPort ← srcPort + 1 FIRST (reads entry srcPort), then
        // srcPort ← 10000: the final state is the simultaneous update
        // {srcPort: 10000, dstPort: entry srcPort + 1} — the tricky case.
        b.stmt(Stmt::Assign(
            dp,
            AExp::bin(AOp::Add, AExp::Field(sp), AExp::Const(Bv::new(16, 1))),
        ));
        b.stmt(Stmt::Assign(sp, AExp::Const(Bv::new(16, 10000))));
        b.end_pipeline();
        b.nop();
        let original = b.finish();

        let mut summarized = original.clone();
        let mut session = SolveSession::new();
        summarize(&mut summarized, &mut session, &ExecConfig::default());

        // Concrete check on both graphs from srcPort = 555.
        let init = meissa_ir::ConcreteState::from_pairs([(sp, Bv::new(16, 555))]);
        for g in [&original, &summarized] {
            let paths = meissa_ir::enumerate_paths(g, 10);
            let outs: Vec<_> = paths
                .iter()
                .filter_map(|p| meissa_ir::eval_path(g, p, &init).ok())
                .collect();
            assert_eq!(outs.len(), 1);
            assert_eq!(outs[0].get(&g.fields, sp), Bv::new(16, 10000));
            assert_eq!(outs[0].get(&g.fields, dp), Bv::new(16, 556));
        }
        // And the summarized graph indeed uses an @aux snapshot.
        let has_aux = summarized
            .fields
            .iter()
            .any(|f| summarized.fields.is_auxiliary(f));
        assert!(has_aux, "expected @p.srcPort snapshot variable");
    }

    #[test]
    fn multi_pipeline_template_counts_match_naive() {
        // The headline coverage theorem, empirically: summary + DFS yields
        // exactly as many templates as naive DFS, on a 3-pipeline program.
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        let y = b.fields_mut().intern("y", 8);
        b.nop();
        for (ppl, k) in [("p0", 3u128), ("p1", 3), ("p2", 2)] {
            b.begin_pipeline(ppl);
            let base = b.frontier();
            let mut arms = Vec::new();
            for i in 0..k {
                b.set_frontier(base.clone());
                b.stmt(Stmt::Assume(BExp::eq(
                    AExp::Field(x),
                    AExp::Const(Bv::new(8, i)),
                )));
                b.stmt(Stmt::Assign(
                    y,
                    AExp::bin(AOp::Add, AExp::Field(y), AExp::Const(Bv::new(8, 1))),
                ));
                arms.push(b.frontier());
            }
            b.set_frontier(Vec::new());
            b.merge_frontiers(arms);
            b.end_pipeline();
        }
        b.nop();
        let cfg = b.finish();

        let mut session_naive = SolveSession::new();
        let naive = generate_templates(&cfg, &mut session_naive, &ExecConfig::default());

        let mut summarized = cfg.clone();
        let mut session = SolveSession::new();
        summarize(&mut summarized, &mut session, &ExecConfig::default());
        let with_summary = generate_templates(&summarized, &mut session, &ExecConfig::default());

        // x is never modified, so only x∈{0,1} survives all three pipelines
        // (p2 needs x<2, p0/p1 need x<3): 2 valid end-to-end paths.
        assert_eq!(naive.templates.len(), 2);
        assert_eq!(with_summary.templates.len(), naive.templates.len());
    }

    #[test]
    fn unreachable_pipeline_summarizes_to_empty() {
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        b.begin_pipeline("dead_gate");
        b.stmt(Stmt::Assume(BExp::False));
        b.end_pipeline();
        b.begin_pipeline("after");
        b.stmt(Stmt::Assign(x, AExp::Const(Bv::new(8, 1))));
        b.end_pipeline();
        b.nop();
        let mut cfg = b.finish();
        let mut session = SolveSession::new();
        let outcome = summarize(&mut cfg, &mut session, &ExecConfig::default());
        assert_eq!(outcome.stats.pipelines[0].2, 0, "gate keeps zero paths");
        assert_eq!(outcome.stats.pipelines[1].1, 0, "nothing reaches `after`");
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        assert!(out.templates.is_empty());
    }
}
