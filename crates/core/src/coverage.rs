//! Coverage accounting (§3.4).
//!
//! Path coverage is the paper's headline metric — Definition 3 — and the
//! strongest of the standard metrics: full path coverage implies full
//! branch and statement coverage. These helpers measure what a set of
//! templates covers on a CFG, used by the test driver's reports and by the
//! coverage-guarantee property tests.

use crate::template::TestTemplate;
use meissa_ir::{Cfg, NodeId};
use std::collections::HashSet;

/// Coverage measured for a template set against a CFG.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageReport {
    /// Distinct complete paths covered.
    pub paths_covered: usize,
    /// Statement (node) coverage over reachable nodes: covered / total.
    pub statements_covered: usize,
    /// Total reachable statements.
    pub statements_total: usize,
    /// Branch edges covered (edges out of multi-successor nodes).
    pub branches_covered: usize,
    /// Total branch edges from reachable multi-successor nodes.
    pub branches_total: usize,
}

impl CoverageReport {
    /// Statement coverage ratio in [0, 1].
    pub fn statement_ratio(&self) -> f64 {
        if self.statements_total == 0 {
            1.0
        } else {
            self.statements_covered as f64 / self.statements_total as f64
        }
    }

    /// Branch coverage ratio in [0, 1].
    pub fn branch_ratio(&self) -> f64 {
        if self.branches_total == 0 {
            1.0
        } else {
            self.branches_covered as f64 / self.branches_total as f64
        }
    }
}

/// Measures coverage of `templates` over `cfg` (the graph they were
/// generated from).
pub fn measure(cfg: &Cfg, templates: &[TestTemplate]) -> CoverageReport {
    let mut covered_nodes: HashSet<NodeId> = HashSet::new();
    let mut covered_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut distinct_paths: HashSet<&[NodeId]> = HashSet::new();
    for t in templates {
        distinct_paths.insert(&t.path);
        covered_nodes.extend(t.path.iter().copied());
        for w in t.path.windows(2) {
            covered_edges.insert((w[0], w[1]));
        }
    }

    let reachable = cfg.reachable();
    // Statement coverage counts only nodes carrying real statements; no-op
    // markers are structural.
    let real: Vec<NodeId> = reachable
        .iter()
        .copied()
        .filter(|&n| !cfg.stmt(n).is_nop())
        .collect();
    let statements_covered = real.iter().filter(|n| covered_nodes.contains(n)).count();

    let mut branches_total = 0;
    let mut branches_covered = 0;
    for &n in &reachable {
        let succ = cfg.succ(n);
        if succ.len() > 1 {
            for &s in succ {
                branches_total += 1;
                if covered_edges.contains(&(n, s)) {
                    branches_covered += 1;
                }
            }
        }
    }

    CoverageReport {
        paths_covered: distinct_paths.len(),
        statements_covered,
        statements_total: real.len(),
        branches_covered,
        branches_total,
    }
}

/// Checks whether a template set achieves full coverage of every *valid*
/// behaviour: each statement/branch that lies on at least one valid path is
/// covered. (Statements on only-invalid paths — dead rules, unreachable
/// arms — are intentionally uncoverable by tests; the paper's Definition 3
/// quantifies over valid paths only.)
pub fn full_valid_coverage(_cfg: &Cfg, templates: &[TestTemplate], valid_paths: &[Vec<NodeId>]) -> bool {
    let mut valid_nodes: HashSet<NodeId> = HashSet::new();
    for p in valid_paths {
        valid_nodes.extend(p.iter().copied());
    }
    let mut covered: HashSet<NodeId> = HashSet::new();
    for t in templates {
        covered.extend(t.path.iter().copied());
    }
    valid_nodes.iter().all(|n| covered.contains(n)) && templates.len() >= valid_paths.len()
        && {
            let covered_paths: HashSet<&[NodeId]> =
                templates.iter().map(|t| t.path.as_slice()).collect();
            valid_paths
                .iter()
                .all(|p| covered_paths.contains(p.as_slice()))
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{generate_templates, ExecConfig};
    use crate::session::SolveSession;
    use meissa_ir::{AExp, BExp, CfgBuilder, Stmt};
    use meissa_num::Bv;

    fn diamond() -> Cfg {
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..3u128 {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(x),
                AExp::Const(Bv::new(8, i)),
            )));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        b.finish()
    }

    #[test]
    fn full_coverage_on_all_valid_paths() {
        let cfg = diamond();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let report = measure(&cfg, &out.templates);
        assert_eq!(report.paths_covered, 3);
        assert_eq!(report.statement_ratio(), 1.0);
        assert_eq!(report.branch_ratio(), 1.0);
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(full_valid_coverage(&cfg, &out.templates, &valid));
    }

    #[test]
    fn partial_template_sets_show_partial_coverage() {
        let cfg = diamond();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let partial = &out.templates[..1];
        let report = measure(&cfg, partial);
        assert_eq!(report.paths_covered, 1);
        assert!(report.statement_ratio() < 1.0);
        assert!(report.branch_ratio() < 1.0);
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(!full_valid_coverage(&cfg, partial, &valid));
    }

    #[test]
    fn empty_template_set_covers_nothing() {
        let cfg = diamond();
        let report = measure(&cfg, &[]);
        assert_eq!(report.paths_covered, 0);
        assert_eq!(report.statements_covered, 0);
        assert!(report.statements_total > 0);
    }

    #[test]
    fn dead_branches_do_not_block_valid_coverage() {
        // A graph with one dead branch (assume false): full valid coverage
        // is achievable even though statement coverage is < 100%.
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        let base = b.frontier();
        b.set_frontier(base.clone());
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(x),
            AExp::Const(Bv::new(8, 1)),
        )));
        let f1 = b.frontier();
        b.set_frontier(base);
        b.stmt(Stmt::Assume(BExp::False));
        let f2 = b.frontier();
        b.set_frontier(Vec::new());
        b.merge_frontiers(vec![f1, f2]);
        b.nop();
        let cfg = b.finish();

        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(full_valid_coverage(&cfg, &out.templates, &valid));
        let report = measure(&cfg, &out.templates);
        assert!(report.statement_ratio() < 1.0, "dead assume is uncovered");
    }
}
