//! Coverage accounting (§3.4).
//!
//! Path coverage is the paper's headline metric — Definition 3 — and the
//! strongest of the standard metrics: full path coverage implies full
//! branch and statement coverage. These helpers measure what a set of
//! templates covers on a CFG, used by the test driver's reports and by the
//! coverage-guarantee property tests.

use crate::template::TestTemplate;
use meissa_ir::{Cfg, NodeId, RuleArm};
use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, HashSet};

/// Coverage measured for a template set against a CFG.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageReport {
    /// Distinct complete paths covered.
    pub paths_covered: usize,
    /// Statement (node) coverage over reachable nodes: covered / total.
    pub statements_covered: usize,
    /// Total reachable statements.
    pub statements_total: usize,
    /// Branch edges covered (edges out of multi-successor nodes).
    pub branches_covered: usize,
    /// Total branch edges from reachable multi-successor nodes.
    pub branches_total: usize,
}

impl CoverageReport {
    /// Statement coverage ratio in [0, 1].
    pub fn statement_ratio(&self) -> f64 {
        if self.statements_total == 0 {
            1.0
        } else {
            self.statements_covered as f64 / self.statements_total as f64
        }
    }

    /// Branch coverage ratio in [0, 1].
    pub fn branch_ratio(&self) -> f64 {
        if self.branches_total == 0 {
            1.0
        } else {
            self.branches_covered as f64 / self.branches_total as f64
        }
    }
}

/// Measures coverage of `templates` over `cfg` (the graph they were
/// generated from).
pub fn measure(cfg: &Cfg, templates: &[TestTemplate]) -> CoverageReport {
    let mut covered_nodes: HashSet<NodeId> = HashSet::new();
    let mut covered_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut distinct_paths: HashSet<&[NodeId]> = HashSet::new();
    for t in templates {
        distinct_paths.insert(&t.path);
        covered_nodes.extend(t.path.iter().copied());
        for w in t.path.windows(2) {
            covered_edges.insert((w[0], w[1]));
        }
    }

    let reachable = cfg.reachable();
    // Statement coverage counts only nodes carrying real statements; no-op
    // markers are structural.
    let real: Vec<NodeId> = reachable
        .iter()
        .copied()
        .filter(|&n| !cfg.stmt(n).is_nop())
        .collect();
    let statements_covered = real.iter().filter(|n| covered_nodes.contains(n)).count();

    let mut branches_total = 0;
    let mut branches_covered = 0;
    for &n in &reachable {
        let succ = cfg.succ(n);
        if succ.len() > 1 {
            for &s in succ {
                branches_total += 1;
                if covered_edges.contains(&(n, s)) {
                    branches_covered += 1;
                }
            }
        }
    }

    CoverageReport {
        paths_covered: distinct_paths.len(),
        statements_covered,
        statements_total: real.len(),
        branches_covered,
        branches_total,
    }
}

/// Per-table rule-hit accounting for one run.
///
/// A table's *arms* are its installed rules (0-based, priority order) plus
/// the miss arm (default action). A hit is one template whose path
/// traverses a node attributed to that arm — attribution comes from the
/// frontend's [`RuleArm`] marks, threaded through code summary onto the
/// summarized trie (see `ir::cfg::RuleSite`), so counts are exact on either
/// graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableCoverage {
    /// Hit count per installed rule index. Every installed rule appears,
    /// with count 0 when unhit.
    pub rules: BTreeMap<u32, u64>,
    /// Hits on the miss arm (no rule matched).
    pub miss_hits: u64,
    /// Whether the table has a miss arm in the graph at all.
    pub has_miss: bool,
}

impl TableCoverage {
    /// True when every installed rule was hit (zero-rule tables are full
    /// once their miss arm fires).
    pub fn is_full(&self) -> bool {
        if self.rules.is_empty() {
            !self.has_miss || self.miss_hits > 0
        } else {
            self.rules.values().all(|&h| h > 0)
        }
    }
}

/// Rule-granular coverage for a whole run: per-table hit maps, the unit the
/// run ledger persists and `meissa-trace diff` compares.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleCoverage {
    /// Per-table accounting, keyed by source-level table name.
    pub tables: BTreeMap<String, TableCoverage>,
}

impl RuleCoverage {
    /// Total installed rules across all tables.
    pub fn rules_total(&self) -> u64 {
        self.tables.values().map(|t| t.rules.len() as u64).sum()
    }

    /// Installed rules hit at least once.
    pub fn rules_hit(&self) -> u64 {
        self.tables
            .values()
            .map(|t| t.rules.values().filter(|&&h| h > 0).count() as u64)
            .sum()
    }

    /// Number of tables in the program.
    pub fn tables_total(&self) -> u64 {
        self.tables.len() as u64
    }

    /// Tables whose every installed rule was hit.
    pub fn tables_full(&self) -> u64 {
        self.tables.values().filter(|t| t.is_full()).count() as u64
    }

    /// Builds a coverage map from flat per-arm counts (the shape a live
    /// [`RuleTally`](../../meissa_dataplane) snapshot yields).
    pub fn from_arm_counts<'a, I>(counts: I) -> RuleCoverage
    where
        I: IntoIterator<Item = (&'a str, RuleArm, u64)>,
    {
        let mut cov = RuleCoverage::default();
        for (table, arm, n) in counts {
            let t = cov.tables.entry(table.to_string()).or_default();
            match arm {
                RuleArm::Rule(i) => {
                    *t.rules.entry(i).or_insert(0) += n;
                }
                RuleArm::Miss => {
                    t.has_miss = true;
                    t.miss_hits += n;
                }
            }
        }
        cov
    }
}

impl ToJson for RuleCoverage {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.tables
                .iter()
                .map(|(name, t)| {
                    Json::Obj(vec![
                        ("table".into(), name.to_json()),
                        (
                            "rules".into(),
                            Json::Arr(
                                t.rules
                                    .iter()
                                    .map(|(&i, &h)| {
                                        Json::Arr(vec![
                                            Json::UInt(i as u128),
                                            Json::UInt(h as u128),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("miss".into(), Json::UInt(t.miss_hits as u128)),
                        ("has_miss".into(), t.has_miss.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for RuleCoverage {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut tables = BTreeMap::new();
        for entry in v.as_arr().map_err(|e| e.context("RuleCoverage"))? {
            let name = String::from_json(entry.field("table")?)
                .map_err(|e| e.context("RuleCoverage.table"))?;
            let rules = Vec::<(u32, u64)>::from_json(entry.field("rules")?)
                .map_err(|e| e.context("RuleCoverage.rules"))?
                .into_iter()
                .collect();
            tables.insert(
                name,
                TableCoverage {
                    rules,
                    miss_hits: u64::from_json(entry.field("miss")?)
                        .map_err(|e| e.context("RuleCoverage.miss"))?,
                    has_miss: bool::from_json(entry.field("has_miss")?)
                        .map_err(|e| e.context("RuleCoverage.has_miss"))?,
                },
            );
        }
        Ok(RuleCoverage { tables })
    }
}

/// Content hash of a program: FNV-1a over the CFG's canonical (byte-stable)
/// JSON text. Two runs with the same `program_hash` analyzed the same
/// graph, so their counters are directly comparable.
pub fn program_hash(cfg: &Cfg) -> String {
    meissa_testkit::obs::ledger::content_hash_hex(cfg.to_json_text().as_bytes())
}

/// Content hash of the installed rule set: FNV-1a over the sorted
/// `(table, arm, raw-guard)` tuples of every rule site in the graph.
/// Insensitive to summarization (sites survive on orphaned nodes) and to
/// node numbering; sensitive to any rule addition, removal, or match
/// rewrite.
pub fn rule_set_hash(cfg: &Cfg) -> String {
    let mut entries: Vec<String> = Vec::new();
    for (nid, sites) in cfg.rule_site_map() {
        for s in sites {
            let guard = cfg
                .raw_guard(*nid)
                .map(|g| g.to_json().to_text())
                .unwrap_or_default();
            let arm = match s.arm {
                RuleArm::Rule(i) => i.to_string(),
                RuleArm::Miss => "miss".to_string(),
            };
            entries.push(format!("{}#{arm}#{guard}", s.table));
        }
    }
    entries.sort();
    entries.dedup();
    meissa_testkit::obs::ledger::content_hash_hex(entries.join("\n").as_bytes())
}

/// Measures per-rule coverage of `templates` over `cfg` (the graph the
/// template paths walk — the summarized graph for a summary run, the
/// unrolled graph for a sequence run).
///
/// The arm universe is every [`RuleArm`] site recorded in the graph —
/// including sites on nodes summarization orphaned, so rules whose every
/// path was pruned still show up as unhit rather than silently vanishing.
pub fn measure_rules(cfg: &Cfg, templates: &[TestTemplate]) -> RuleCoverage {
    let mut cov = RuleCoverage::default();
    for sites in cfg.rule_site_map().values() {
        for s in sites {
            let t = cov.tables.entry(s.table.clone()).or_default();
            match s.arm {
                RuleArm::Rule(i) => {
                    t.rules.entry(i).or_insert(0);
                }
                RuleArm::Miss => t.has_miss = true,
            }
        }
    }
    for tpl in templates {
        for &n in &tpl.path {
            for s in cfg.rule_sites(n) {
                let t = cov.tables.entry(s.table.clone()).or_default();
                match s.arm {
                    RuleArm::Rule(i) => *t.rules.entry(i).or_insert(0) += 1,
                    RuleArm::Miss => t.miss_hits += 1,
                }
            }
        }
    }
    cov
}

/// Checks whether a template set achieves full coverage of every *valid*
/// behaviour: each statement/branch that lies on at least one valid path is
/// covered. (Statements on only-invalid paths — dead rules, unreachable
/// arms — are intentionally uncoverable by tests; the paper's Definition 3
/// quantifies over valid paths only.)
///
/// Every `valid_paths` entry must be an actual walk of `cfg`: nodes in
/// bounds and consecutive nodes joined by an edge. A claimed valid path the
/// graph does not contain makes the answer `false` — a coverage guarantee
/// checked against paths from some *other* graph would be vacuous.
pub fn full_valid_coverage(cfg: &Cfg, templates: &[TestTemplate], valid_paths: &[Vec<NodeId>]) -> bool {
    let bound = cfg.num_nodes() as u32;
    for p in valid_paths {
        if p.iter().any(|n| n.0 >= bound) {
            return false;
        }
        if p.windows(2).any(|w| !cfg.succ(w[0]).contains(&w[1])) {
            return false;
        }
    }
    let mut valid_nodes: HashSet<NodeId> = HashSet::new();
    for p in valid_paths {
        valid_nodes.extend(p.iter().copied());
    }
    let mut covered: HashSet<NodeId> = HashSet::new();
    for t in templates {
        covered.extend(t.path.iter().copied());
    }
    valid_nodes.iter().all(|n| covered.contains(n)) && templates.len() >= valid_paths.len()
        && {
            let covered_paths: HashSet<&[NodeId]> =
                templates.iter().map(|t| t.path.as_slice()).collect();
            valid_paths
                .iter()
                .all(|p| covered_paths.contains(p.as_slice()))
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{generate_templates, ExecConfig};
    use crate::session::SolveSession;
    use meissa_ir::{AExp, BExp, CfgBuilder, Stmt};
    use meissa_num::Bv;

    fn diamond() -> Cfg {
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..3u128 {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(x),
                AExp::Const(Bv::new(8, i)),
            )));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        b.finish()
    }

    #[test]
    fn full_coverage_on_all_valid_paths() {
        let cfg = diamond();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let report = measure(&cfg, &out.templates);
        assert_eq!(report.paths_covered, 3);
        assert_eq!(report.statement_ratio(), 1.0);
        assert_eq!(report.branch_ratio(), 1.0);
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(full_valid_coverage(&cfg, &out.templates, &valid));
    }

    #[test]
    fn partial_template_sets_show_partial_coverage() {
        let cfg = diamond();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let partial = &out.templates[..1];
        let report = measure(&cfg, partial);
        assert_eq!(report.paths_covered, 1);
        assert!(report.statement_ratio() < 1.0);
        assert!(report.branch_ratio() < 1.0);
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(!full_valid_coverage(&cfg, partial, &valid));
    }

    #[test]
    fn empty_template_set_covers_nothing() {
        let cfg = diamond();
        let report = measure(&cfg, &[]);
        assert_eq!(report.paths_covered, 0);
        assert_eq!(report.statements_covered, 0);
        assert!(report.statements_total > 0);
    }

    #[test]
    fn full_valid_coverage_rejects_paths_not_in_the_cfg() {
        let cfg = diamond();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let mut valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(full_valid_coverage(&cfg, &out.templates, &valid));

        // Out-of-bounds node: not a path of this graph.
        let bogus_node = vec![vec![NodeId(cfg.num_nodes() as u32)]];
        assert!(!full_valid_coverage(&cfg, &out.templates, &bogus_node));

        // In-bounds nodes but no such edge (a path walked backwards).
        let mut reversed = valid[0].clone();
        reversed.reverse();
        valid.push(reversed);
        assert!(!full_valid_coverage(&cfg, &out.templates, &valid));
    }

    #[test]
    fn measure_rules_counts_hits_and_keeps_unhit_rules() {
        use meissa_ir::RuleArm;
        // Diamond with the three arms marked as rules 0/1 of table `t` plus
        // its miss arm.
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        let mut arm_nodes = Vec::new();
        for i in 0..3u128 {
            b.set_frontier(base.clone());
            let n = b.stmt(Stmt::Assume(BExp::eq(
                AExp::Field(x),
                AExp::Const(Bv::new(8, i)),
            )));
            arm_nodes.push(n);
            arms.push(b.frontier());
        }
        b.mark_rule_site(arm_nodes[0], "t", RuleArm::Rule(0));
        b.mark_rule_site(arm_nodes[1], "t", RuleArm::Rule(1));
        b.mark_rule_site(arm_nodes[2], "t", RuleArm::Miss);
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        let cfg = b.finish();

        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let cov = measure_rules(&cfg, &out.templates);
        assert_eq!(cov.rules_total(), 2);
        assert_eq!(cov.rules_hit(), 2);
        assert_eq!(cov.tables_total(), 1);
        assert_eq!(cov.tables_full(), 1);
        let t = &cov.tables["t"];
        assert_eq!(t.rules[&0], 1);
        assert_eq!(t.rules[&1], 1);
        assert_eq!(t.miss_hits, 1);
        assert!(t.has_miss);

        // Dropping the rule-1 templates leaves rule 1 present but unhit.
        let partial: Vec<_> = out
            .templates
            .iter()
            .filter(|tpl| !tpl.path.contains(&arm_nodes[1]))
            .cloned()
            .collect();
        let cov = measure_rules(&cfg, &partial);
        assert_eq!(cov.rules_total(), 2, "unhit rule stays in the universe");
        assert_eq!(cov.rules_hit(), 1);
        assert_eq!(cov.tables_full(), 0);
        assert_eq!(cov.tables["t"].rules[&1], 0);
    }

    #[test]
    fn rule_coverage_json_roundtrip_is_stable() {
        let mut cov = RuleCoverage::default();
        let t = cov.tables.entry("acl".into()).or_default();
        t.rules.insert(0, 4);
        t.rules.insert(1, 0);
        t.miss_hits = 2;
        t.has_miss = true;
        cov.tables.entry("nat".into()).or_default();

        let text = cov.to_json().to_text();
        let back = RuleCoverage::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cov);
        assert_eq!(back.to_json().to_text(), text);
    }

    #[test]
    fn from_arm_counts_matches_measured_shape() {
        use meissa_ir::RuleArm;
        let cov = RuleCoverage::from_arm_counts(vec![
            ("t", RuleArm::Rule(0), 5),
            ("t", RuleArm::Rule(1), 0),
            ("t", RuleArm::Miss, 1),
        ]);
        assert_eq!(cov.rules_total(), 2);
        assert_eq!(cov.rules_hit(), 1);
        assert_eq!(cov.tables_full(), 0);
        assert_eq!(cov.tables["t"].miss_hits, 1);
    }

    #[test]
    fn dead_branches_do_not_block_valid_coverage() {
        // A graph with one dead branch (assume false): full valid coverage
        // is achievable even though statement coverage is < 100%.
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("x", 8);
        b.nop();
        let base = b.frontier();
        b.set_frontier(base.clone());
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(x),
            AExp::Const(Bv::new(8, 1)),
        )));
        let f1 = b.frontier();
        b.set_frontier(base);
        b.stmt(Stmt::Assume(BExp::False));
        let f2 = b.frontier();
        b.set_frontier(Vec::new());
        b.merge_frontiers(vec![f1, f2]);
        b.nop();
        let cfg = b.finish();

        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let valid: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        assert!(full_valid_coverage(&cfg, &out.templates, &valid));
        let report = measure(&cfg, &out.templates);
        assert!(report.statement_ratio() < 1.0, "dead assume is uncovered");
    }
}
