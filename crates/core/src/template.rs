//! Test case templates (§3.2) and their instantiation.
//!
//! A template captures one valid path: the conjunction of guard constraints
//! that steers a packet down the path, the final symbolic state, and any
//! hash obligations (§4). Instantiation asks the solver for a model of the
//! constraints, turning the template into a concrete input state; the §4
//! hash post-step then pins the model's key values, computes the real hash,
//! and re-solves so that generated packets have *correct* hash fields (or
//! rejects the packet when that is impossible).

use crate::symstate::HashDef;
use meissa_ir::{ConcreteState, FieldId, FieldTable, NodeId};
use meissa_num::Bv;
use meissa_smt::{CheckResult, Solver, TermId, TermPool};

/// A deferred hash check attached to a template (§4).
#[derive(Clone, Debug)]
pub struct HashObligation {
    /// The algorithm.
    pub alg: meissa_ir::HashAlg,
    /// Output width.
    pub width: u16,
    /// Key terms over input variables.
    pub keys: Vec<TermId>,
    /// The stand-in variable for the hash output.
    pub out: TermId,
}

impl From<&HashDef> for HashObligation {
    fn from(d: &HashDef) -> Self {
        HashObligation {
            alg: d.alg,
            width: d.width,
            keys: d.keys.clone(),
            out: d.out,
        }
    }
}

/// A test case template for one valid path (§3.2).
#[derive(Clone, Debug)]
pub struct TestTemplate {
    /// Sequential template id.
    pub id: usize,
    /// The CFG nodes of the covered path, in order.
    pub path: Vec<NodeId>,
    /// Guard constraints over input variables; their conjunction is the
    /// path condition `C`.
    pub constraints: Vec<TermId>,
    /// Final symbolic state: (field, value term) pairs for assigned fields.
    pub final_values: Vec<(FieldId, TermId)>,
    /// Hash obligations to enforce at instantiation time.
    pub hash_obligations: Vec<HashObligation>,
}

impl TestTemplate {
    /// Instantiates the template into a concrete input state.
    ///
    /// Returns `None` when the constraints are unsatisfiable (which
    /// Algorithm 1 prevents for freshly-generated templates, but callers may
    /// add intent `given` clauses that rule a path out) or when the hash
    /// post-filter rejects every candidate (§4).
    pub fn instantiate(
        &self,
        pool: &mut TermPool,
        fields: &FieldTable,
        extra: &[TermId],
    ) -> Option<ConcreteState> {
        let mut solver = Solver::new();
        solver.push();
        for &c in self.constraints.iter().chain(extra) {
            solver.assert_term(pool, c);
        }
        if solver.check(pool) != CheckResult::Sat {
            return None;
        }

        if !self.hash_obligations.is_empty() {
            // §4 hash repair: pin every hash key to its model value, compute
            // the true hash, and require the stand-in to equal it. One
            // round suffices because pinned keys make each hash concrete.
            let model = solver.model(pool);
            solver.push();
            for ob in &self.hash_obligations {
                let mut key_vals = Vec::with_capacity(ob.keys.len());
                for &k in &ob.keys {
                    let v = eval_term_under_model(pool, &model, k)?;
                    let kc = pool.bv_const(v);
                    let pin = pool.eq(k, kc);
                    solver.assert_term(pool, pin);
                    key_vals.push(v);
                }
                let h = ob.alg.compute(ob.width, &key_vals);
                let hc = pool.bv_const(h);
                let want = pool.eq(ob.out, hc);
                solver.assert_term(pool, want);
            }
            if solver.check(pool) != CheckResult::Sat {
                // The path constrained the hash output incompatibly with the
                // pinned keys: reject, as §4 prescribes.
                return None;
            }
        }

        let model = solver.model(pool);
        let mut pairs = Vec::new();
        for f in fields.iter() {
            if fields.is_auxiliary(f) {
                continue; // summary scratch variables are not packet input
            }
            if let Some(v) = model.value_of(fields.name(f)) {
                pairs.push((f, v));
            }
        }
        Some(ConcreteState::from_pairs(pairs))
    }
}

impl TestTemplate {
    /// Generates up to `n` *distinct* concrete inputs for this template —
    /// "One or more input-output test cases can be generated based on the
    /// template for a path" (§2.1). Each round adds disequalities against
    /// the previous models' non-auxiliary input fields, so successive
    /// packets differ in at least one field while still driving the same
    /// path.
    pub fn instantiate_distinct(
        &self,
        pool: &mut TermPool,
        fields: &FieldTable,
        n: usize,
    ) -> Vec<ConcreteState> {
        let mut out: Vec<ConcreteState> = Vec::new();
        let mut extra: Vec<TermId> = Vec::new();
        for _ in 0..n {
            let Some(state) = self.instantiate(pool, fields, &extra) else {
                break; // the remaining input space is exhausted
            };
            // Exclude this exact assignment of the template's own input
            // fields from later rounds.
            let mut used: Vec<meissa_ir::FieldId> = Vec::new();
            for &c in &self.constraints {
                collect_fields_of(pool, fields, c, &mut used);
            }
            used.sort();
            used.dedup();
            let mut differs: Vec<TermId> = Vec::new();
            for f in used {
                if fields.is_auxiliary(f) {
                    continue;
                }
                let var = pool.var(fields.name(f), fields.width(f));
                let val = pool.bv_const(state.get(fields, f));
                let ne = pool.ne(var, val);
                differs.push(ne);
            }
            out.push(state);
            if differs.is_empty() {
                break; // fully-constrained path: only one packet exists
            }
            let any_diff = pool.or_many(&differs);
            extra.push(any_diff);
        }
        out
    }
}

/// Collects the fields whose input variables appear in a term.
fn collect_fields_of(
    pool: &TermPool,
    fields: &FieldTable,
    t: TermId,
    out: &mut Vec<meissa_ir::FieldId>,
) {
    use meissa_smt::TermNode::*;
    match *pool.node(t) {
        BvVar(_) => {
            if let Some(f) = fields.get(pool.var_name(match *pool.node(t) {
                BvVar(v) => v,
                _ => unreachable!(),
            })) {
                out.push(f);
            }
        }
        BvConst(_) | BoolConst(_) => {}
        BvBin(_, a, b) | BvConcat(a, b) | Cmp(_, a, b) | BoolAnd(a, b) | BoolOr(a, b) => {
            collect_fields_of(pool, fields, a, out);
            collect_fields_of(pool, fields, b, out);
        }
        BvNot(a) | BvShl(a, _) | BvShr(a, _) | BvExtract(a, _, _) | BoolNot(a) => {
            collect_fields_of(pool, fields, a, out)
        }
        BvIte(c, a, b) => {
            collect_fields_of(pool, fields, c, out);
            collect_fields_of(pool, fields, a, out);
            collect_fields_of(pool, fields, b, out);
        }
    }
}

/// Evaluates a term under a model (all variables resolved from the model;
/// unconstrained ones default to zero via the model itself).
fn eval_term_under_model(
    pool: &TermPool,
    model: &meissa_smt::Model,
    t: TermId,
) -> Option<Bv> {
    let env = |v: meissa_smt::VarId| model.value_of(pool.var_name(v));
    match pool.eval(t, &env)? {
        meissa_smt::term::EvalValue::Bv(b) => Some(b),
        meissa_smt::term::EvalValue::Bool(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_ir::HashAlg;

    #[test]
    fn instantiate_simple_constraint() {
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.dst", 32);
        let x = pool.var("hdr.ip.dst", 32);
        let k = pool.bv_const(Bv::new(32, 0x0a000001));
        let c = pool.eq(x, k);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c],
            final_values: vec![],
            hash_obligations: vec![],
        };
        let state = t.instantiate(&mut pool, &fields, &[]).expect("sat");
        assert_eq!(state.get(&fields, f), Bv::new(32, 0x0a000001));
    }

    #[test]
    fn unsat_template_returns_none() {
        let mut pool = TermPool::new();
        let fields = FieldTable::new();
        let x = pool.var("x", 8);
        let k1 = pool.bv_const(Bv::new(8, 1));
        let k2 = pool.bv_const(Bv::new(8, 2));
        let c1 = pool.eq(x, k1);
        let c2 = pool.eq(x, k2);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c1, c2],
            final_values: vec![],
            hash_obligations: vec![],
        };
        assert!(t.instantiate(&mut pool, &fields, &[]).is_none());
    }

    #[test]
    fn extra_constraints_narrow_the_model() {
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        let f = fields.intern("meta.port", 9);
        let x = pool.var("meta.port", 9);
        let lo = pool.bv_const(Bv::new(9, 100));
        let c = pool.ugt(x, lo);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c],
            final_values: vec![],
            hash_obligations: vec![],
        };
        let hi = pool.bv_const(Bv::new(9, 102));
        let extra = pool.ult(x, hi);
        let state = t.instantiate(&mut pool, &fields, &[extra]).expect("sat");
        assert_eq!(state.get(&fields, f), Bv::new(9, 101));
    }

    #[test]
    fn hash_obligation_fixes_output() {
        // dst is free; $hash0 must equal crc16(dst) in the final packet.
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        let fdst = fields.intern("hdr.ip.dst", 32);
        let fh = fields.intern("meta.h", 16);
        let _ = fh;
        let dst = pool.var("hdr.ip.dst", 32);
        let hout = pool.var("meta.h", 16);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![],
            final_values: vec![],
            hash_obligations: vec![HashObligation {
                alg: HashAlg::Crc16,
                width: 16,
                keys: vec![dst],
                out: hout,
            }],
        };
        let state = t.instantiate(&mut pool, &fields, &[]).expect("sat");
        let dst_v = state.get(&fields, fdst);
        let h_v = state.get(&fields, fh);
        assert_eq!(h_v, HashAlg::Crc16.compute(16, &[dst_v]));
    }

    #[test]
    fn contradictory_hash_constraint_rejected() {
        // Path demands $hash == 0xffff while keys are pinned to a value
        // whose hash differs: the §4 filter must reject.
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        fields.intern("hdr.ip.dst", 32);
        fields.intern("meta.h", 16);
        let dst = pool.var("hdr.ip.dst", 32);
        let hout = pool.var("meta.h", 16);
        let key = pool.bv_const(Bv::new(32, 42));
        let pin_key = pool.eq(dst, key);
        let real = HashAlg::Crc16.compute(16, &[Bv::new(32, 42)]);
        let wrong = pool.bv_const(Bv::new(16, real.val() ^ 1));
        let pin_out = pool.eq(hout, wrong);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![pin_key, pin_out],
            final_values: vec![],
            hash_obligations: vec![HashObligation {
                alg: HashAlg::Crc16,
                width: 16,
                keys: vec![dst],
                out: hout,
            }],
        };
        assert!(t.instantiate(&mut pool, &fields, &[]).is_none());
    }

    #[test]
    fn instantiate_distinct_produces_different_packets_on_one_path() {
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.dst", 32);
        let x = pool.var("hdr.ip.dst", 32);
        let mask = pool.bv_const(Bv::new(32, 0xff00_0000));
        let masked = pool.bv_and(x, mask);
        let net = pool.bv_const(Bv::new(32, 0x0a00_0000));
        let c = pool.eq(masked, net); // dst ∈ 10/8: many packets, one path
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c],
            final_values: vec![],
            hash_obligations: vec![],
        };
        let states = t.instantiate_distinct(&mut pool, &fields, 5);
        assert_eq!(states.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for s in &states {
            let v = s.get(&fields, f);
            assert_eq!(v.val() >> 24, 0x0a, "all in 10/8");
            assert!(seen.insert(v), "distinct packets");
        }
    }

    #[test]
    fn instantiate_distinct_stops_when_space_is_exhausted() {
        // A 1-bit field constrained nontrivially admits ≤2 packets.
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        fields.intern("meta.flag", 1);
        let x = pool.var("meta.flag", 1);
        let one = pool.bv_const(Bv::new(1, 1));
        let c = pool.eq(x, one);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c],
            final_values: vec![],
            hash_obligations: vec![],
        };
        let states = t.instantiate_distinct(&mut pool, &fields, 10);
        assert_eq!(states.len(), 1, "only flag=1 satisfies the path");
    }

    #[test]
    fn auxiliary_fields_are_excluded_from_inputs() {
        let mut pool = TermPool::new();
        let mut fields = FieldTable::new();
        let aux = fields.intern("@ppl1.hdr.ip.dst", 32);
        let real = fields.intern("hdr.ip.dst", 32);
        let x = pool.var("hdr.ip.dst", 32);
        let a = pool.var("@ppl1.hdr.ip.dst", 32);
        let k = pool.bv_const(Bv::new(32, 9));
        let c1 = pool.eq(x, k);
        let c2 = pool.eq(a, k);
        let t = TestTemplate {
            id: 0,
            path: vec![],
            constraints: vec![c1, c2],
            final_values: vec![],
            hash_obligations: vec![],
        };
        let state = t.instantiate(&mut pool, &fields, &[]).expect("sat");
        assert_eq!(state.get(&fields, real), Bv::new(32, 9));
        // Aux fields read as zero because they were never added as input.
        assert_eq!(state.get(&fields, aux), Bv::zero(32));
    }
}
