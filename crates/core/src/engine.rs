//! The top-level Meissa engine (Fig. 2's pipeline from CFG to templates).
//!
//! [`Meissa::run`] takes a compiled program and produces test case
//! templates plus the statistics the paper's evaluation reports: wall time,
//! number of SMT calls (Figs. 11b/12b), and possible-path counts before and
//! after code summary (Figs. 11c/12c).

use crate::exec::{generate_templates, ExecConfig};
use crate::session::SolveSession;
use crate::summary::{summarize, SummaryStats};
use crate::template::TestTemplate;
use meissa_ir::{count_paths, Cfg};
use meissa_lang::CompiledProgram;
use meissa_num::BigUint;
use meissa_smt::sat::SatStats;
use meissa_smt::{SolverStats, TermPool};
use meissa_testkit::obs;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct MeissaConfig {
    /// Apply Algorithm 2 code summary before test generation (§3.3).
    /// Disabling this is the "w/o code summary" series of Figs. 11–12.
    pub code_summary: bool,
    /// Early termination at predicate nodes (§3.2).
    pub early_termination: bool,
    /// Incremental (push/pop) solving.
    pub incremental: bool,
    /// Group pre-conditions per packet type during summary (§7); see
    /// [`ExecConfig::grouped_summary`].
    pub grouped_summary: bool,
    /// Cap on generated templates.
    pub max_templates: Option<usize>,
    /// Wall-clock budget for the whole run.
    pub time_budget: Option<Duration>,
    /// Worker threads for path exploration and same-level summary passes.
    /// `1` runs the fully sequential engine. The default honours the
    /// `MEISSA_THREADS` env var, falling back to
    /// [`std::thread::available_parallelism`]. The template *set* is
    /// identical for every thread count and the emitted order is
    /// deterministic (merged paths are sorted into sequential DFS order
    /// before template generation).
    pub threads: usize,
    /// Batched sibling-arm probing through the solver's assumption API;
    /// see [`ExecConfig::batched_probing`]. `false` restores the per-arm
    /// `push/assert/check/pop` reference path (identical output, more
    /// SAT-engine work).
    pub batched_probing: bool,
    /// Parallel-exploration right-sizing; see
    /// [`ExecConfig::min_paths_per_worker`]. `0` disables the cap and
    /// spawns exactly `threads` workers (tests exercising the parallel
    /// machinery on small inputs).
    pub min_paths_per_worker: u64,
    /// Which predicate backend answers probes; see [`crate::backend`]. The
    /// default honours the `MEISSA_BACKEND` env var (`smt`, `bdd`, `auto`),
    /// falling back to the classifying `auto` router. The template set is
    /// identical for every choice; only where verdicts come from changes.
    pub backend: crate::backend::BackendKind,
    /// Packets per sequence for the stateful entry point
    /// ([`Meissa::run_sequences`]): the CFG is unrolled `k_packets` times
    /// with register state threaded between copies (see
    /// [`crate::stateful`]). `1` reduces *exactly* to the single-packet
    /// engine — same templates, same stats. [`Meissa::run`] ignores this
    /// knob entirely. The default honours the `MEISSA_K_PACKETS` env var
    /// (clamped to at least 1), falling back to `1`.
    pub k_packets: usize,
    /// Leave the registers' pre-sequence state fully symbolic instead of
    /// zeroed. Zero-init (the default) matches a freshly booted target and
    /// makes every generated sequence directly replayable; symbolic init
    /// explores behaviours reachable from *any* prior register state, and
    /// instantiated cases carry the chosen initial register values so a
    /// driver can seed them explicitly. Only [`Meissa::run_sequences`]
    /// consults this.
    pub symbolic_init: bool,
}

/// Default thread count: `MEISSA_THREADS` if set and parseable (clamped to
/// at least 1), else the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MEISSA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Default sequence length: `MEISSA_K_PACKETS` if set and parseable
/// (clamped to at least 1), else 1 — the stateless single-packet engine.
pub fn default_k_packets() -> usize {
    if let Ok(v) = std::env::var("MEISSA_K_PACKETS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    1
}

impl Default for MeissaConfig {
    fn default() -> Self {
        MeissaConfig {
            code_summary: true,
            early_termination: true,
            incremental: true,
            grouped_summary: true,
            max_templates: None,
            time_budget: None,
            threads: default_threads(),
            batched_probing: true,
            min_paths_per_worker: ExecConfig::default().min_paths_per_worker,
            backend: crate::backend::default_backend(),
            k_packets: default_k_packets(),
            symbolic_init: false,
        }
    }
}

impl MeissaConfig {
    pub(crate) fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            early_termination: self.early_termination,
            incremental: self.incremental,
            grouped_summary: self.grouped_summary,
            max_templates: self.max_templates,
            time_budget: self.time_budget,
            threads: self.threads.max(1),
            batched_probing: self.batched_probing,
            min_paths_per_worker: self.min_paths_per_worker,
            backend: self.backend,
            ..ExecConfig::default()
        }
    }
}

/// Aggregate statistics for one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total wall time.
    pub elapsed: Duration,
    /// Time spent in the code-summary pass.
    pub summary_elapsed: Duration,
    /// Time spent in final test generation.
    pub exec_elapsed: Duration,
    /// SMT checks across both phases (Fig. 11b's metric).
    pub smt_checks: u64,
    /// Possible paths in the original CFG (Fig. 11c "w/o code summary").
    pub paths_before: BigUint,
    /// Possible paths in the (possibly summarized) CFG that test generation
    /// ran on (Fig. 11c "w/ code summary"; equals `paths_before` when
    /// summary is disabled).
    pub paths_after: BigUint,
    /// Valid paths, i.e. templates generated.
    pub valid_paths: u64,
    /// Paths explored by the final DFS.
    pub paths_explored: u64,
    /// Subtrees pruned by early termination.
    pub pruned: u64,
    /// Per-pipeline summary stats.
    pub summary: Option<SummaryStats>,
    /// Cumulative solver counters across every solver the run's
    /// [`SolveSession`] retired (fast-path vs SAT-engine split, verdict
    /// tallies, peak frame depth).
    pub solver: SolverStats,
    /// Cumulative SAT-engine counters (propagations, conflicts, decisions)
    /// across every solver the run retired.
    pub sat: SatStats,
    /// Early-termination probes that consulted the session's verdict cache,
    /// across both phases (summary + final DFS).
    pub cache_probes: u64,
    /// Probes answered from the verdict cache without invoking the solver.
    pub cache_hits: u64,
    /// Sibling-arm probes routed through the batched assumption API
    /// ([`meissa_smt::Solver::check_under`]) instead of individual
    /// `push/assert/check/pop` cycles. Each batched arm still counts as one
    /// `smt_checks`, keeping the Fig. 11b metric comparable.
    pub batched_probes: u64,
    /// Batched sibling probes issued (each covering ≥ 2 arms).
    pub arm_batches: u64,
    /// Probe routing decisions that landed on the incremental SMT solver.
    pub backend_routed_smt: u64,
    /// Probe routing decisions that landed on the BDD engine
    /// (match-field-only constraint sets under the `auto`/`bdd` backends).
    pub backend_routed_bdd: u64,
    /// Individual probe verdicts the BDD engine answered. Each also counts
    /// one `smt_checks`, so Fig. 11b stays comparable across backends —
    /// what drops instead is `solver.sat_engine_calls`.
    pub bdd_probes: u64,
    /// Decision nodes allocated in BDD node tables across the run.
    pub bdd_nodes: u64,
    /// True when a time budget expired before completion.
    pub timed_out: bool,
    /// Installed rules hit by at least one template (rule-granular
    /// coverage; see [`crate::coverage::measure_rules`]).
    pub rules_hit: u64,
    /// Installed rules in the program's tables.
    pub rules_total: u64,
    /// Tables whose every installed rule was hit.
    pub tables_full: u64,
    /// Tables in the program.
    pub tables_total: u64,
    /// The full per-table coverage map the aggregates above were computed
    /// from — what the run ledger persists and `meissa-trace diff`
    /// compares.
    pub rule_coverage: Option<crate::coverage::RuleCoverage>,
}

impl RunStats {
    /// Fraction of early-termination probes the session verdict cache
    /// answered without the solver (`0.0` when no probe was issued).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_probes as f64
        }
    }

    /// Mean number of sibling arms per batched probe (`0.0` when no batch
    /// was issued) — the fan-in `check_under` amortizes per branch point.
    pub fn arms_per_batch(&self) -> f64 {
        if self.arm_batches == 0 {
            0.0
        } else {
            self.batched_probes as f64 / self.arm_batches as f64
        }
    }
}

/// The output of an engine run: templates plus everything needed to
/// instantiate them.
pub struct RunOutput {
    /// Term pool the templates' constraints live in.
    pub pool: TermPool,
    /// The CFG test generation actually ran on (summarized when enabled).
    pub cfg: Cfg,
    /// Generated templates, one per valid path.
    pub templates: Vec<TestTemplate>,
    /// Statistics.
    pub stats: RunStats,
}

impl RunOutput {
    /// Instantiates template `idx` into a concrete input state, optionally
    /// under extra constraints (e.g. an intent's `given` clause).
    pub fn instantiate(&mut self, idx: usize) -> Option<meissa_ir::ConcreteState> {
        let t = &self.templates[idx];
        t.instantiate(&mut self.pool, &self.cfg.fields, &[])
    }
}

/// The Meissa engine.
#[derive(Clone, Debug, Default)]
pub struct Meissa {
    /// Configuration.
    pub config: MeissaConfig,
}

impl Meissa {
    /// An engine with the paper's full configuration (summary + early
    /// termination + incremental solving).
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with code summary disabled (the "w/o code summary"
    /// baseline of Figs. 11–12).
    pub fn without_summary() -> Self {
        Meissa {
            config: MeissaConfig {
                code_summary: false,
                ..MeissaConfig::default()
            },
        }
    }

    /// Runs test case generation on a compiled program.
    pub fn run(&self, program: &CompiledProgram) -> RunOutput {
        self.run_on_cfg(&program.cfg)
    }

    /// Runs test case generation directly on a CFG.
    pub fn run_on_cfg(&self, original: &Cfg) -> RunOutput {
        obs::init_from_env();
        let mut run_span = obs::span("engine.run");
        let t0 = Instant::now();
        let mut session = SolveSession::new();
        let mut cfg = original.clone();
        let mut stats = RunStats {
            paths_before: count_paths(original).total,
            ..RunStats::default()
        };

        let mut completed = None;
        // Code summary decomposes *multi-pipeline* programs (§3.3); on a
        // single pipeline the decomposition has nothing to compose and the
        // basic framework is the whole algorithm.
        let multi_pipe = cfg.pipeline_topo_order().len() >= 2;
        if self.config.code_summary && multi_pipe {
            let mut summary_span = obs::span("engine.summary");
            let outcome = summarize(&mut cfg, &mut session, &self.config.exec_config());
            summary_span.field("smt_checks", outcome.stats.smt_checks);
            summary_span.field("pipelines", outcome.stats.pipelines.len() as u64);
            drop(summary_span);
            stats.summary_elapsed = outcome.stats.elapsed;
            stats.smt_checks += outcome.stats.smt_checks;
            stats.timed_out |= outcome.stats.timed_out;
            if let Some(paths) = outcome.completed {
                completed = Some(crate::exec::raw_paths_to_templates(
                    &session.pool,
                    &outcome.ctx,
                    paths,
                ));
            }
            stats.summary = Some(outcome.stats);
        }
        stats.paths_after = count_paths(&cfg).total;

        let templates = match completed {
            // Algorithm 2's incremental extension already enumerated every
            // valid end-to-end path — identical to what line 27's final DFS
            // would produce on the summarized graph, without re-walking it.
            Some(templates) => {
                stats.valid_paths = templates.len() as u64;
                stats.paths_explored = templates.len() as u64;
                templates
            }
            None => {
                let mut exec_span = obs::span("engine.exec");
                let exec = generate_templates(&cfg, &mut session, &self.config.exec_config());
                exec_span.field("smt_checks", exec.stats.smt_checks);
                exec_span.field("paths_explored", exec.stats.paths_explored);
                exec_span.field("valid_paths", exec.stats.valid_paths);
                drop(exec_span);
                stats.exec_elapsed = exec.stats.elapsed;
                stats.smt_checks += exec.stats.smt_checks;
                stats.valid_paths = exec.stats.valid_paths;
                stats.paths_explored = exec.stats.paths_explored;
                stats.pruned = exec.stats.pruned;
                stats.timed_out |= exec.stats.timed_out;
                exec.templates
            }
        };
        // The session's cumulative exec counters saw every exploration of
        // both phases, so they carry the run-wide cache totals.
        stats.cache_probes = session.exec.cache_probes;
        stats.cache_hits = session.exec.cache_hits;
        stats.batched_probes = session.exec.batched_probes;
        stats.arm_batches = session.exec.arm_batches;
        stats.backend_routed_smt = session.exec.backend_routed_smt;
        stats.backend_routed_bdd = session.exec.backend_routed_bdd;
        stats.bdd_probes = session.exec.bdd_probes;
        stats.bdd_nodes = session.exec.bdd_nodes;
        stats.solver = session.solver_stats();
        stats.sat = session.sat_stats();
        stats.elapsed = t0.elapsed();

        // Rule-granular coverage over the graph the templates walk. Pure
        // arithmetic on already-computed paths — no solver, no pool — so it
        // runs unconditionally without perturbing determinism.
        let rcov = crate::coverage::measure_rules(&cfg, &templates);
        stats.rules_hit = rcov.rules_hit();
        stats.rules_total = rcov.rules_total();
        stats.tables_full = rcov.tables_full();
        stats.tables_total = rcov.tables_total();
        if obs::active() {
            obs::counter("coverage.rules_hit").add(stats.rules_hit);
            obs::gauge("coverage.tables_full").set(stats.tables_full);
        }

        if obs::trace_on() {
            obs::note("coverage", {
                use meissa_testkit::json::ToJson as _;
                rcov.to_json().to_text()
            });
            // Authoritative per-run counters straight from RunStats, so a
            // trace reader can reconcile spans against the engine's own
            // accounting without re-deriving anything.
            run_span.field("threads", self.config.threads as u64);
            run_span.field("templates", templates.len() as u64);
            run_span.field("smt_checks", stats.smt_checks);
            run_span.field("cache_probes", stats.cache_probes);
            run_span.field("cache_hits", stats.cache_hits);
            run_span.field("batched_probes", stats.batched_probes);
            run_span.field("arm_batches", stats.arm_batches);
            run_span.field("backend_routed_smt", stats.backend_routed_smt);
            run_span.field("backend_routed_bdd", stats.backend_routed_bdd);
            run_span.field("bdd_probes", stats.bdd_probes);
            run_span.field("bdd_nodes", stats.bdd_nodes);
            run_span.field("sat_engine_calls", stats.solver.sat_engine_calls);
            run_span.field("model_reuse", stats.solver.model_reuse);
            run_span.field("sat_propagations", stats.sat.propagations);
            run_span.field("sat_conflicts", stats.sat.conflicts);
            run_span.field("rules_hit", stats.rules_hit);
            run_span.field("rules_total", stats.rules_total);
            run_span.field("tables_full", stats.tables_full);
            run_span.field("tables_total", stats.tables_total);
            drop(run_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        if obs::log_on(obs::LogLevel::Info) {
            obs::log(
                obs::LogLevel::Info,
                "engine",
                &format!(
                    "run done: templates={} smt_checks={} elapsed={:?}",
                    templates.len(),
                    stats.smt_checks,
                    stats.elapsed
                ),
            );
        }

        stats.rule_coverage = Some(rcov);
        ledger_append_run("engine.run", original, &self.config, &stats, None);

        RunOutput {
            pool: session.into_pool(),
            cfg,
            templates,
            stats,
        }
    }
}

/// A short, stable rendering of the config knobs that shape a run's search
/// (the ledger's `config` fingerprint; diffable as an opaque string).
pub(crate) fn config_fingerprint(config: &MeissaConfig) -> String {
    format!(
        "summary={} early_term={} incremental={} grouped={} batched={} backend={:?} k={} sym_init={}",
        config.code_summary,
        config.early_termination,
        config.incremental,
        config.grouped_summary,
        config.batched_probing,
        config.backend,
        config.k_packets,
        config.symbolic_init,
    )
}

/// Appends a self-contained `RunRecord` line to the run ledger (no-op
/// unless `MEISSA_LEDGER`/`ledger_to` enabled it). The record carries
/// everything a later `meissa-trace diff` needs without the original
/// inputs: program and rule-set hashes to tell *what* ran, the config
/// fingerprint for *how*, the counters and coverage map for *what
/// happened*, plus an optional latency snapshot for wire-tier runs.
pub(crate) fn ledger_append_run(
    kind: &str,
    original: &Cfg,
    config: &MeissaConfig,
    stats: &RunStats,
    latency: Option<(u64, u64, u64, u64)>,
) {
    use meissa_testkit::json::{Json, ToJson as _};
    use meissa_testkit::obs::ledger;
    if !ledger::enabled() {
        return;
    }
    let counters = vec![
        ("smt_checks".to_string(), Json::UInt(stats.smt_checks as u128)),
        ("templates".to_string(), Json::UInt(stats.valid_paths as u128)),
        ("valid_paths".to_string(), Json::UInt(stats.valid_paths as u128)),
        (
            "paths_explored".to_string(),
            Json::UInt(stats.paths_explored as u128),
        ),
        ("pruned".to_string(), Json::UInt(stats.pruned as u128)),
        (
            "cache_probes".to_string(),
            Json::UInt(stats.cache_probes as u128),
        ),
        ("cache_hits".to_string(), Json::UInt(stats.cache_hits as u128)),
        (
            "batched_probes".to_string(),
            Json::UInt(stats.batched_probes as u128),
        ),
        (
            "sat_engine_calls".to_string(),
            Json::UInt(stats.solver.sat_engine_calls as u128),
        ),
        (
            "rules_hit".to_string(),
            Json::UInt(stats.rules_hit as u128),
        ),
        (
            "rules_total".to_string(),
            Json::UInt(stats.rules_total as u128),
        ),
        (
            "tables_full".to_string(),
            Json::UInt(stats.tables_full as u128),
        ),
        (
            "tables_total".to_string(),
            Json::UInt(stats.tables_total as u128),
        ),
        (
            "elapsed_ms".to_string(),
            Json::UInt(stats.elapsed.as_millis()),
        ),
        ("threads".to_string(), Json::UInt(config.threads as u128)),
        (
            "timed_out".to_string(),
            Json::UInt(stats.timed_out as u128),
        ),
    ];
    let mut fields = vec![
        ("t".to_string(), Json::Str("run_record".into())),
        ("kind".to_string(), Json::Str(kind.into())),
        (
            "program_hash".to_string(),
            Json::Str(crate::coverage::program_hash(original)),
        ),
        (
            "rule_set_hash".to_string(),
            Json::Str(crate::coverage::rule_set_hash(original)),
        ),
        (
            "config".to_string(),
            Json::Str(config_fingerprint(config)),
        ),
        ("counters".to_string(), Json::Obj(counters)),
        (
            "coverage".to_string(),
            stats
                .rule_coverage
                .as_ref()
                .map(|c| c.to_json())
                .unwrap_or(Json::Arr(Vec::new())),
        ),
    ];
    if let Some((count, sum, p50, p99)) = latency {
        fields.push((
            "latency".to_string(),
            Json::Obj(vec![
                ("count".to_string(), Json::UInt(count as u128)),
                ("sum".to_string(), Json::UInt(sum as u128)),
                ("p50".to_string(), Json::UInt(p50 as u128)),
                ("p99".to_string(), Json::UInt(p99 as u128)),
            ]),
        ));
    }
    if let Err(e) = ledger::append(Json::Obj(fields)) {
        eprintln!("meissa: ledger append failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; dst_addr: 32; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }
        action set_port(port: 9) { meta.egress_port = port; }
        action drop_() { meta.drop = 1; }
        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
        }
        control ig { if (hdr.ipv4.isValid()) { apply(route); } }
        pipeline ingress0 { parser = main; control = ig; }
    "#;

    const RULES: &str = r#"
        rules route {
          10.0.0.0/8 => set_port(1);
          192.168.0.0/16 => set_port(2);
        }
    "#;

    fn program() -> meissa_lang::CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        let r = parse_rules(RULES).unwrap();
        compile(&p, &r).unwrap()
    }

    #[test]
    fn full_run_produces_templates() {
        let cp = program();
        let mut out = Meissa::new().run(&cp);
        // Valid behaviours: non-IPv4 (1), IPv4×{rule1, rule2, default} (3).
        assert_eq!(out.templates.len(), 4);
        for i in 0..out.templates.len() {
            assert!(out.instantiate(i).is_some(), "template {i} instantiates");
        }
    }

    #[test]
    fn summary_and_naive_agree_on_template_count() {
        let cp = program();
        let with = Meissa::new().run(&cp);
        let without = Meissa::without_summary().run(&cp);
        assert_eq!(with.templates.len(), without.templates.len());
        assert_eq!(with.stats.paths_before, without.stats.paths_before);
        // Single-pipeline program: code summary is an inter-pipeline
        // decomposition, so the engine skips it (§3.3) and both runs work
        // on the original graph.
        assert_eq!(with.stats.paths_after, with.stats.paths_before);
    }

    /// Two-pipeline program where summary actually runs.
    fn two_pipe_program() -> meissa_lang::CompiledProgram {
        let src = r#"
            header pkt { t: 16; }
            metadata meta { a: 8; b: 8; }
            parser p { state start { extract(pkt); accept; } }
            action seta(v: 8) { meta.a = v; }
            action setb(v: 8) { meta.b = v; }
            action none_() { }
            table t1 {
              key = { hdr.pkt.t: exact; }
              actions = { seta; none_; }
              default_action = none_();
            }
            table t2 {
              key = { meta.a: exact; }
              actions = { setb; none_; }
              default_action = none_();
            }
            control c1 { apply(t1); }
            control c2 { apply(t2); }
            pipeline p1 { parser = p; control = c1; }
            pipeline p2 { control = c2; }
            topology { start -> p1; p1 -> p2; p2 -> end; }
        "#;
        let rules = r#"
            rules t1 { 1 => seta(1); 2 => seta(2); 3 => seta(3); }
            rules t2 { 1 => setb(10); 2 => setb(20); 3 => setb(30); }
        "#;
        compile(&parse_program(src).unwrap(), &parse_rules(rules).unwrap()).unwrap()
    }

    #[test]
    fn grouped_and_ungrouped_summaries_cover_identically() {
        // The §7 grouping is a performance refinement; coverage must not
        // change when it is disabled.
        let cp = two_pipe_program();
        let grouped = Meissa::new().run(&cp);
        let ungrouped = Meissa {
            config: MeissaConfig {
                grouped_summary: false,
                ..MeissaConfig::default()
            },
        }
        .run(&cp);
        assert_eq!(grouped.templates.len(), ungrouped.templates.len());
    }

    #[test]
    fn summary_reduces_paths_on_multi_pipe_programs() {
        let cp = two_pipe_program();
        let with = Meissa::new().run(&cp);
        let without = Meissa::without_summary().run(&cp);
        assert_eq!(with.templates.len(), without.templates.len());
        assert!(with.stats.summary.is_some());
        // This toy is perfectly diagonal (every rule pair lines up), so the
        // summarized graph has the same possible-path count; the Fig. 7
        // reduction (100× fewer paths) is asserted in `summary::tests`.
        assert!(with.stats.paths_after <= with.stats.paths_before);
    }

    #[test]
    fn instantiated_inputs_replay_on_original_cfg() {
        let cp = program();
        let mut out = Meissa::new().run(&cp);
        let fields = &cp.cfg.fields;
        for i in 0..out.templates.len() {
            let input = out.instantiate(i).unwrap();
            let valid: Vec<_> = meissa_ir::enumerate_paths(&cp.cfg, 1000)
                .into_iter()
                .filter_map(|p| meissa_ir::eval_path(&cp.cfg, &p, &input).ok())
                .collect();
            assert_eq!(valid.len(), 1, "input {i} drives exactly one original path");
        }
        let _ = fields;
    }

    #[test]
    fn backend_choice_preserves_output_and_shifts_engine_work() {
        let cp = program();
        let run_with = |backend| {
            Meissa {
                config: MeissaConfig {
                    backend,
                    threads: 1,
                    ..MeissaConfig::default()
                },
            }
            .run(&cp)
        };
        let smt = run_with(crate::backend::BackendKind::Smt);
        let auto = run_with(crate::backend::BackendKind::Auto);
        assert_eq!(smt.templates.len(), auto.templates.len());
        assert_eq!(smt.stats.smt_checks, auto.stats.smt_checks);
        assert_eq!(smt.stats.cache_probes, auto.stats.cache_probes);
        assert_eq!(smt.stats.cache_hits, auto.stats.cache_hits);
        assert_eq!(smt.stats.bdd_probes, 0);
        assert_eq!(smt.stats.backend_routed_bdd, 0);
        // The program's guards are parser selects, table matches, and
        // validity bits — match-field-only, so `auto` routes probes to the
        // BDD and the SAT engine runs strictly less.
        assert!(auto.stats.bdd_probes > 0, "auto must route to the BDD");
        assert!(auto.stats.bdd_nodes > 0);
        assert!(auto.stats.solver.sat_engine_calls <= smt.stats.solver.sat_engine_calls);
    }

    #[test]
    fn rule_coverage_is_stamped_on_plain_and_summarized_runs() {
        // Single pipeline (no summary): route has 2 rules + miss; the
        // IPv4 templates hit both rules and the miss arm.
        let out = Meissa::new().run(&program());
        assert_eq!(out.stats.rules_total, 2);
        assert_eq!(out.stats.rules_hit, 2);
        assert_eq!(out.stats.tables_total, 1);
        assert_eq!(out.stats.tables_full, 1);
        let cov = out.stats.rule_coverage.as_ref().unwrap();
        assert_eq!(cov.tables["route"].miss_hits, 1);

        // Two pipelines (summary runs): attribution must survive the
        // trie rewrite — 3 rules + miss per table, all hit.
        let multi = Meissa::new().run(&two_pipe_program());
        assert!(multi.stats.summary.is_some(), "summary must have run");
        assert_eq!(multi.stats.rules_total, 6);
        assert_eq!(multi.stats.rules_hit, 6);
        assert_eq!(multi.stats.tables_total, 2);
        assert_eq!(multi.stats.tables_full, 2);
        let cov = multi.stats.rule_coverage.as_ref().unwrap();
        for t in ["t1", "t2"] {
            assert!(cov.tables[t].has_miss, "{t} has a default arm");
            assert!(cov.tables[t].miss_hits > 0, "{t} miss arm covered");
        }

        // Summarized and naive runs agree on what was covered.
        let naive = Meissa::without_summary().run(&two_pipe_program());
        assert_eq!(
            multi.stats.rule_coverage, naive.stats.rule_coverage,
            "summary must not change rule attribution"
        );
    }

    #[test]
    fn stats_are_populated() {
        let cp = program();
        let out = Meissa::new().run(&cp);
        assert!(out.stats.smt_checks > 0);
        assert!(out.stats.cache_probes > 0, "full config probes the cache");
        assert!(out.stats.cache_hits <= out.stats.cache_probes);
        assert!((0.0..=1.0).contains(&out.stats.cache_hit_rate()));
        assert!(!out.stats.paths_before.is_zero());
        assert_eq!(out.stats.valid_paths as usize, out.templates.len());
        // Single-pipeline program: the engine skips the summary pass.
        assert!(out.stats.summary.is_none());
        let multi = Meissa::new().run(&two_pipe_program());
        assert!(multi.stats.summary.is_some());
        let without = Meissa::without_summary().run(&cp);
        assert!(without.stats.summary.is_none());
    }
}
