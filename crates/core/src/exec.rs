//! Algorithm 1: basic test case generation with DFS and early termination.
//!
//! The executor walks the CFG depth-first, maintaining the condition stack
//! `C` (as incremental solver frames) and value stack `V` (with an undo
//! log). At a predicate node it translates the guard under `V`, pushes it as
//! a solver frame, and — with early termination enabled — checks
//! satisfiability immediately, pruning the whole subtree on UNSAT exactly as
//! the `SAT(C ∧ b′)` premise of Fig. 6's Sym. Predicate rule demands. At a
//! leaf it emits a test case template. Backtracking pops solver frames and
//! rolls back `V` (lines 10 and 18 of Algorithm 1).
//!
//! Three baseline-defining switches:
//!
//! * `early_termination: false` — only check satisfiability at leaves
//!   (explores every *possible* path; the model-based-testing baselines);
//! * `incremental: false` — answer each check with a fresh solver over the
//!   re-asserted constraint list (what a tool without push/pop pays);
//! * both `true` — Meissa's configuration.

use crate::backend::{BackendKind, BackendRouter};
use crate::session::SolveSession;
use crate::symstate::{SymCtx, ValueStack};
use crate::template::{HashObligation, TestTemplate};
use meissa_ir::{Cfg, NodeId, Stmt};
use meissa_smt::{CheckResult, Solver, TermId, TermPool};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration for one symbolic execution.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Prune unsatisfiable prefixes at every predicate node (§3.2).
    pub early_termination: bool,
    /// Reuse one incremental solver across checks; `false` re-solves from
    /// scratch each time (for baseline comparisons).
    pub incremental: bool,
    /// Group pipeline pre-conditions by packet type during code summary
    /// (the §7 mitigation). Disabling falls back to the single global
    /// public pre-condition of Algorithm 2 lines 4–7 (the ablation the
    /// design document calls out).
    pub grouped_summary: bool,
    /// Hard cap on generated templates (safety valve for baselines on
    /// exponential graphs).
    pub max_templates: Option<usize>,
    /// Wall-clock budget; exceeded ⇒ the run reports a timeout.
    pub time_budget: Option<Duration>,
    /// Worker threads for top-level explorations and summary batches.
    /// `1` (the default) runs the unchanged sequential engine; `> 1`
    /// routes [`generate_templates`] through the work-sharing frontier of
    /// [`crate::parallel`] and batches code summary's independent
    /// searches. The final template *set* is identical for any value; with
    /// `max_templates` or a time budget, which subset survives the cap can
    /// differ across thread counts.
    pub threads: usize,
    /// Right-sizing for the parallel frontier: an extra worker joins the
    /// pool only when the saturating possible-path estimate below the
    /// exploration root grants it at least this many paths. Tiny trees
    /// otherwise pay fork/steal/merge overhead with nothing to share
    /// (gw-3-r8 at 8 threads ran at 0.54× sequential). Batched sibling
    /// probing roughly halved per-path solver cost, so the floor doubled
    /// to keep the fork break-even point where measurements put it. `0`
    /// disables the cap — used by tests that exercise the parallel
    /// machinery on deliberately small graphs.
    pub min_paths_per_worker: u64,
    /// Probe all sibling arms of a branch point through one batched
    /// [`meissa_smt::Solver::check_under`] call (assumption literals over
    /// the blasted prefix, learned clauses retained across siblings)
    /// instead of a `push/assert/check/pop` cycle per arm. Verdicts,
    /// counters, and templates are identical either way; `false` keeps the
    /// per-arm reference path that the equivalence suite compares against.
    pub batched_probing: bool,
    /// Which predicate backend answers probes: the incremental SMT solver,
    /// the BDD engine (with SMT fallback for out-of-class sets), or the
    /// classifying router (the default; see [`crate::backend`]).
    pub backend: BackendKind,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            early_termination: true,
            incremental: true,
            grouped_summary: true,
            max_templates: None,
            time_budget: None,
            threads: 1,
            min_paths_per_worker: 1024,
            batched_probing: true,
            backend: crate::backend::default_backend(),
        }
    }
}

/// Shared cancellation + emission state for one top-level exploration,
/// consulted by every walker — the sequential one, or one per parallel
/// worker. Once any observer trips the template cap or the deadline, the
/// sticky `state` makes every other walker's next [`ExploreBudget::poll`]
/// answer "stop", which is what propagates a budget expiry observed in one
/// worker to all of them promptly.
pub(crate) struct ExploreBudget {
    deadline: Option<Instant>,
    max_templates: Option<usize>,
    emitted: AtomicUsize,
    /// 0 = running, 1 = template cap reached, 2 = time budget expired.
    state: AtomicU8,
}

const BUDGET_RUNNING: u8 = 0;
const BUDGET_CAPPED: u8 = 1;
const BUDGET_TIMED_OUT: u8 = 2;

impl ExploreBudget {
    pub(crate) fn new(config: &ExecConfig, t0: Instant) -> Self {
        ExploreBudget {
            deadline: config.time_budget.map(|b| t0 + b),
            max_templates: config.max_templates,
            emitted: AtomicUsize::new(0),
            state: AtomicU8::new(BUDGET_RUNNING),
        }
    }

    /// Should exploration stop? `Some(timed_out)` when yes.
    pub(crate) fn poll(&self) -> Option<bool> {
        match self.state.load(Ordering::Relaxed) {
            BUDGET_CAPPED => return Some(false),
            BUDGET_TIMED_OUT => return Some(true),
            _ => {}
        }
        if let Some(max) = self.max_templates {
            if self.emitted.load(Ordering::Relaxed) >= max {
                self.state.store(BUDGET_CAPPED, Ordering::Relaxed);
                return Some(false);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                self.state.store(BUDGET_TIMED_OUT, Ordering::Relaxed);
                return Some(true);
            }
        }
        None
    }

    /// Counts one emitted template (toward `max_templates`).
    pub(crate) fn note_emit(&self) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Did the time budget expire (on any observer)?
    pub(crate) fn timed_out(&self) -> bool {
        self.state.load(Ordering::Relaxed) == BUDGET_TIMED_OUT
    }
}

/// Donation hook a parallel frontier installs on each worker's walker: at a
/// multi-child node, a worker whose siblings would otherwise be explored
/// depth-first can hand all but the first child to idle workers, as
/// `(node, path-prefix, constraint-prefix, value-snapshot)` tasks.
pub(crate) trait WorkSharer: Sync {
    /// Is anyone idle (or the queue nearly empty)? Donation is gated on
    /// this so a saturated frontier costs only one atomic load per branch.
    fn hungry(&self) -> bool;
    /// Enqueues one task per sibling, snapshotting the donor's current
    /// prefix. `pool` is the donor's pool — terms must be translated into a
    /// pool the task owns, since the donor keeps mutating its own.
    fn donate(
        &self,
        pool: &TermPool,
        trace: &[NodeId],
        constraints: &[TermId],
        values: &ValueStack,
        siblings: &[NodeId],
    );
    /// Deepest constraint prefix still worth donating from. A task pays a
    /// fixed cost (prefix translation + re-assertion in the receiver's
    /// solver) that a near-leaf subtree never earns back; the frontier
    /// adapts this bound to the task costs it actually observes (see
    /// [`crate::parallel`]). The default never gates — tests exercising
    /// the donation path on tiny graphs want every branch offered.
    fn donation_limit(&self) -> usize {
        usize::MAX
    }
}

/// Counters for one execution (the raw numbers behind Figs. 9–12).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Paths enumerated to a leaf (valid or not).
    pub paths_explored: u64,
    /// Valid paths (= templates emitted, unless capped).
    pub valid_paths: u64,
    /// Subtrees pruned by early termination.
    pub pruned: u64,
    /// SMT checks issued.
    pub smt_checks: u64,
    /// Early-termination probes that consulted the session's verdict cache
    /// (incremental + early-termination configuration only).
    pub cache_probes: u64,
    /// Probes answered from the verdict cache without invoking the solver.
    pub cache_hits: u64,
    /// Sibling-arm probes issued through batched branch expansion
    /// ([`crate::session::SolveSession::probe_arms`] /
    /// [`meissa_smt::Solver::check_under`]). Each batched arm still counts
    /// one `smt_checks`, so this splits the Fig. 11b metric by probing
    /// style rather than adding to it.
    pub batched_probes: u64,
    /// Branch points whose sibling arms were probed as one batch.
    pub arm_batches: u64,
    /// Router decisions that sent a probe (or a whole arm batch) to the
    /// incremental SMT solver.
    pub backend_routed_smt: u64,
    /// Router decisions that sent a probe (or a whole arm batch) to the
    /// BDD engine — match-field-only constraint sets under
    /// [`crate::backend::BackendKind::Auto`]/`Bdd`.
    pub backend_routed_bdd: u64,
    /// Individual probe verdicts answered by the BDD engine (each also
    /// counts one `smt_checks`, keeping the Fig. 11b metric comparable
    /// across backends).
    pub bdd_probes: u64,
    /// Decision nodes allocated in BDD node tables while answering probes.
    pub bdd_nodes: u64,
    /// Wall-clock time of the execution.
    pub elapsed: Duration,
    /// True when the time budget expired before completion.
    pub timed_out: bool,
}

impl ExecStats {
    /// Mean sibling arms per batched branch probe (0 when nothing batched).
    pub fn arms_per_batch(&self) -> f64 {
        if self.arm_batches == 0 {
            0.0
        } else {
            self.batched_probes as f64 / self.arm_batches as f64
        }
    }
}

/// The result of a symbolic execution.
pub struct ExecOutput {
    /// One template per valid path discovered.
    pub templates: Vec<TestTemplate>,
    /// Statistics.
    pub stats: ExecStats,
}

/// A valid path discovered by [`explore`], in raw (pre-template) form; code
/// summary consumes these directly.
pub struct RawPath {
    /// Node sequence.
    pub path: Vec<NodeId>,
    /// Collected guard terms.
    pub constraints: Vec<TermId>,
    /// Final value stack snapshot.
    pub final_values: Vec<(meissa_ir::FieldId, TermId)>,
}

/// Generates test case templates for a CFG (Algorithm 1). With
/// `config.threads > 1` the DFS is sharded across a work-stealing frontier
/// ([`crate::parallel`]); the template set is identical either way, and the
/// emission order is the sequential DFS order in both cases.
pub fn generate_templates(
    cfg: &Cfg,
    session: &mut SolveSession,
    config: &ExecConfig,
) -> ExecOutput {
    let mut ctx = SymCtx::new(None);
    let (paths, stats) = if config.threads > 1 {
        crate::parallel::explore_parallel(
            cfg,
            session,
            &mut ctx,
            cfg.entry(),
            &std::collections::HashSet::new(),
            &[],
            &[],
            config,
        )
    } else {
        let mut paths = Vec::new();
        let stats = explore(
            cfg,
            session,
            &mut ctx,
            cfg.entry(),
            None,
            &[],
            config,
            &mut |p| paths.push(p),
        );
        (paths, stats)
    };
    let templates = raw_paths_to_templates(&session.pool, &ctx, paths);
    ExecOutput { templates, stats }
}

/// Turns raw valid paths into test case templates, attaching the hash
/// obligations recorded in `ctx` to the paths that mention them (§4).
pub fn raw_paths_to_templates(
    pool: &TermPool,
    ctx: &SymCtx,
    paths: Vec<RawPath>,
) -> Vec<TestTemplate> {
    let mut obligations: Vec<HashObligation> = ctx.hash_defs().map(HashObligation::from).collect();
    // Stand-in names are content-keyed and unique per application; sorting
    // by them pins the obligation order, which hash-map iteration above does
    // not (and parallel workers discover obligations in racy order).
    obligations.sort_by_key(|o| match *pool.node(o.out) {
        meissa_smt::TermNode::BvVar(v) => pool.var_name(v).to_string(),
        _ => String::new(),
    });
    paths
        .into_iter()
        .enumerate()
        .map(|(id, raw)| {
            // Attach only obligations whose stand-in appears in this path's
            // constraints or final values.
            let used: std::collections::HashSet<TermId> = raw
                .constraints
                .iter()
                .copied()
                .chain(raw.final_values.iter().map(|&(_, t)| t))
                .collect();
            let obs = obligations
                .iter()
                .filter(|o| used.contains(&o.out) || term_set_mentions(pool, &used, o.out))
                .cloned()
                .collect();
            TestTemplate {
                id,
                path: raw.path,
                constraints: raw.constraints,
                final_values: raw.final_values,
                hash_obligations: obs,
            }
        })
        .collect()
}

/// Splits a boolean term into its top-level conjuncts, appending them to
/// `out`. `a && (b && c)` yields `[a, b, c]`; non-conjunction terms are
/// appended as-is.
pub(crate) fn flatten_conjuncts(pool: &TermPool, t: TermId, out: &mut Vec<TermId>) {
    if let meissa_smt::TermNode::BoolAnd(a, b) = *pool.node(t) {
        flatten_conjuncts(pool, a, out);
        flatten_conjuncts(pool, b, out);
    } else {
        out.push(t);
    }
}

/// Does any term in `set` mention `needle` as a subterm?
fn term_set_mentions(
    pool: &TermPool,
    set: &std::collections::HashSet<TermId>,
    needle: TermId,
) -> bool {
    fn mentions(pool: &TermPool, t: TermId, needle: TermId, seen: &mut Vec<bool>) -> bool {
        if t == needle {
            return true;
        }
        if std::mem::replace(&mut seen[t.index()], true) {
            return false;
        }
        use meissa_smt::TermNode::*;
        match *pool.node(t) {
            BvConst(_) | BvVar(_) | BoolConst(_) => false,
            BvBin(_, a, b) | BvConcat(a, b) | Cmp(_, a, b) | BoolAnd(a, b) | BoolOr(a, b) => {
                mentions(pool, a, needle, seen) || mentions(pool, b, needle, seen)
            }
            BvNot(a) | BvShl(a, _) | BvShr(a, _) | BvExtract(a, _, _) | BoolNot(a) => {
                mentions(pool, a, needle, seen)
            }
            BvIte(c, a, b) => {
                mentions(pool, c, needle, seen)
                    || mentions(pool, a, needle, seen)
                    || mentions(pool, b, needle, seen)
            }
        }
    }
    let mut seen = vec![false; pool.len()];
    set.iter().any(|&t| mentions(pool, t, needle, &mut seen))
}

/// Core DFS shared by whole-program execution and per-pipeline summary
/// execution. Walks from `start`; a path ends at `target` (when given) or at
/// any terminal node. `base_constraints` are asserted once below every
/// frame (the public pre-condition of Algorithm 2).
///
/// `sink` receives each valid path.
#[allow(clippy::too_many_arguments)]
pub fn explore(
    cfg: &Cfg,
    session: &mut SolveSession,
    ctx: &mut SymCtx,
    start: NodeId,
    target: Option<NodeId>,
    base_constraints: &[TermId],
    config: &ExecConfig,
    sink: &mut dyn FnMut(RawPath),
) -> ExecStats {
    let targets = target.into_iter().collect();
    explore_multi(
        cfg,
        session,
        ctx,
        start,
        &targets,
        base_constraints,
        &[],
        config,
        sink,
    )
}

/// Like [`explore`], with a *set* of target nodes — a path ends as soon as
/// it reaches any of them — and an initial value-stack seed (the symbolic
/// state at `start`, used by Algorithm 2's incremental path extension).
/// With an empty target set, paths end at terminal nodes. With targets,
/// paths reaching a terminal node *without* hitting any target are also
/// emitted (the caller distinguishes them by their last node) — Algorithm
/// 2's extension needs both continuations toward later pipelines and
/// program-completing paths.
/// Starts from a **fresh solver** (`session.reset_solver()`): frames and
/// learned clauses from a previous top-level exploration would slow unit
/// propagation more than re-blasting costs. Use [`explore_in_session`] to
/// keep the session's current solver — and its bit-blasting cache — warm
/// across related explorations (Algorithm 2's per-group searches and
/// per-seed extensions).
#[allow(clippy::too_many_arguments)]
pub fn explore_multi(
    cfg: &Cfg,
    session: &mut SolveSession,
    ctx: &mut SymCtx,
    start: NodeId,
    targets: &std::collections::HashSet<NodeId>,
    base_constraints: &[TermId],
    initial_values: &[(meissa_ir::FieldId, TermId)],
    config: &ExecConfig,
    sink: &mut dyn FnMut(RawPath),
) -> ExecStats {
    session.reset_solver();
    explore_in_session(
        cfg,
        session,
        ctx,
        start,
        targets,
        base_constraints,
        initial_values,
        config,
        sink,
    )
}

/// One exploration pass over the session's **current** solver; see
/// [`explore_multi`] for parameter semantics. Base constraints are installed
/// in a solver frame per call, so successive calls with different
/// pre-conditions reuse everything the solver has already learned (one
/// shared bit-blasting cache), instead of re-encoding the shared program
/// terms from scratch each time. Frame isolation keeps verdicts independent
/// across calls.
#[allow(clippy::too_many_arguments)]
pub fn explore_in_session(
    cfg: &Cfg,
    session: &mut SolveSession,
    ctx: &mut SymCtx,
    start: NodeId,
    targets: &std::collections::HashSet<NodeId>,
    base_constraints: &[TermId],
    initial_values: &[(meissa_ir::FieldId, TermId)],
    config: &ExecConfig,
    sink: &mut dyn FnMut(RawPath),
) -> ExecStats {
    let budget = ExploreBudget::new(config, Instant::now());
    explore_task(
        cfg,
        session,
        ctx,
        start,
        targets,
        &[],
        base_constraints,
        initial_values,
        config,
        &budget,
        None,
        sink,
    )
}

/// The workhorse behind [`explore_in_session`] and each parallel worker's
/// subtree task: explores from `start` with an already-established prefix —
/// `prefix_trace` (path nodes up to but excluding `start`),
/// `prefix_constraints` (asserted into one solver frame, **without**
/// re-checking: the donor already validated them), and `initial_values`
/// (the value stack at `start`). Budget state is shared through `budget`;
/// `sharer`, when present, may be offered sibling subtrees at branch nodes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_task(
    cfg: &Cfg,
    session: &mut SolveSession,
    ctx: &mut SymCtx,
    start: NodeId,
    targets: &std::collections::HashSet<NodeId>,
    prefix_trace: &[NodeId],
    prefix_constraints: &[TermId],
    initial_values: &[(meissa_ir::FieldId, TermId)],
    config: &ExecConfig,
    budget: &ExploreBudget,
    sharer: Option<&dyn WorkSharer>,
    sink: &mut dyn FnMut(RawPath),
) -> ExecStats {
    let mut stats = ExecStats::default();
    let t0 = Instant::now();
    // Task boundary: pick up clauses sibling workers published since this
    // worker's last task (no-op without an exchange attached).
    session.import_shared();
    let SolveSession {
        pool,
        backend,
        verdict_cache,
        base_verdicts,
        ..
    } = session;
    backend.kind = config.backend;
    backend.solver_mut().push();
    for &c in prefix_constraints {
        backend.solver_mut().assert_term(pool, c);
    }
    // The verdict cache keys on the content hash of the *entire* current
    // constraint set, so the prefix's conjunct hashes seed the stack. Only
    // the incremental early-termination configuration probes it; the
    // baselines skip the keying entirely.
    let use_cache = config.incremental && config.early_termination;
    let key_stack: Vec<u64> = if use_cache {
        prefix_constraints
            .iter()
            .map(|&c| pool.term_hash(c))
            .collect()
    } else {
        Vec::new()
    };
    let mut walker = Walker {
        cfg,
        targets,
        config,
        stats: &mut stats,
        sink,
        budget,
        sharer,
        all_constraints: prefix_constraints.to_vec(),
        trace: prefix_trace.to_vec(),
        cache: verdict_cache,
        base: base_verdicts.as_deref(),
        key_stack,
        use_cache,
    };
    let mut v = ValueStack::new();
    for &(f, t) in initial_values {
        v.set(f, t);
    }
    walker.visit(pool, ctx, backend, &mut v, start, None);
    backend.solver_mut().pop();
    // Incremental checks are counted by the session's solver (delta since
    // the previous exploration); non-incremental checks were tallied
    // directly into `stats.smt_checks` by the walker.
    stats.smt_checks += session.take_new_checks();
    stats.elapsed = t0.elapsed();
    session.record(&stats);
    stats
}

struct Walker<'a> {
    cfg: &'a Cfg,
    targets: &'a std::collections::HashSet<NodeId>,
    config: &'a ExecConfig,
    stats: &'a mut ExecStats,
    sink: &'a mut dyn FnMut(RawPath),
    budget: &'a ExploreBudget,
    sharer: Option<&'a dyn WorkSharer>,
    /// Every constraint currently on the path (for non-incremental
    /// re-solving and for template emission).
    all_constraints: Vec<TermId>,
    trace: Vec<NodeId>,
    /// The session's `(constraint set) → verdict` cache: satisfiability of
    /// a constraint set is context-free, so verdicts survive across tasks,
    /// explorations, and solver resets within one session. This is what
    /// lets a parallel worker that re-explores a familiar region after a
    /// donation skip already-decided sibling arms.
    cache: &'a mut std::collections::HashMap<u128, bool>,
    /// Read-only verdicts inherited from the parent session (see
    /// [`crate::session::SolveSession::base_verdicts`]); consulted after a
    /// `cache` miss, never written.
    base: Option<&'a std::collections::HashMap<u128, bool>>,
    /// Pool-independent structural hashes of `all_constraints`, maintained
    /// in lockstep (only when `use_cache`); their lane fold
    /// ([`crate::session::verdict_key`]) is the cache key for the current
    /// set.
    key_stack: Vec<u64>,
    use_cache: bool,
}

/// One sibling arm's guard, translated and probed at the parent's branch
/// point as part of a batch; the child's `visit` asserts it without
/// re-translating or re-probing.
struct PreArm {
    /// The guard's conjuncts, sorted by structural hash.
    conjuncts: Vec<TermId>,
    /// Structural hashes of `conjuncts`, in the same order.
    hashes: Vec<u64>,
    /// The batched probe's verdict for `prefix ++ conjuncts`.
    unsat: bool,
}

impl Walker<'_> {
    fn out_of_budget(&mut self) -> bool {
        match self.budget.poll() {
            Some(timed_out) => {
                if timed_out {
                    self.stats.timed_out = true;
                }
                true
            }
            None => false,
        }
    }

    /// Satisfiability of the current constraint set, honoring the
    /// incremental/non-incremental configuration. This is the *unrouted*
    /// SMT path: leaf validation and the baseline configurations stay on
    /// the solver regardless of backend (the router only sees
    /// early-termination probes, where BDD classification pays off).
    fn check(&mut self, pool: &mut TermPool, backend: &mut BackendRouter) -> CheckResult {
        if self.config.incremental {
            backend.solver_mut().check(pool)
        } else {
            // Fresh solver per query: what a tool without push/pop pays.
            self.stats.smt_checks += 1;
            let mut fresh = Solver::new();
            fresh.push();
            for &c in &self.all_constraints {
                fresh.assert_term(pool, c);
            }
            fresh.check(pool)
        }
    }

    /// Early-termination probe: is the current constraint set unsatisfiable?
    /// Under the incremental configuration the probe first consults the
    /// session's verdict cache — satisfiability depends only on the
    /// constraint set, so a set already decided by an earlier task (or an
    /// earlier exploration in the same session) is answered without the
    /// solver. A hit still counts one `smt_checks`, exactly like the folded
    /// checks above, so the Fig. 11b "number of SMT calls" metric stays
    /// comparable whether or not the cache intervenes. A cache miss goes to
    /// the backend router: the BDD engine when the whole current set is
    /// match-field-only, otherwise the incremental solver's live frames.
    fn probe_unsat(&mut self, pool: &mut TermPool, backend: &mut BackendRouter) -> bool {
        if !self.use_cache {
            return self.check(pool, backend) == CheckResult::Unsat;
        }
        self.stats.cache_probes += 1;
        let key = crate::session::verdict_key(&self.key_stack);
        if let Some(&unsat) = self
            .cache
            .get(&key)
            .or_else(|| self.base.and_then(|b| b.get(&key)))
        {
            self.stats.cache_hits += 1;
            self.stats.smt_checks += 1; // cached validity check
            return unsat;
        }
        let unsat = !backend.check_set(pool, &self.all_constraints, self.stats);
        self.cache.insert(key, unsat);
        unsat
    }

    /// Translates the guards of the local sibling `Assume` arms under the
    /// current value stack and probes them all in one batched solver
    /// interaction ([`crate::session::probe_arms_cached`] →
    /// [`meissa_smt::Solver::check_under`]). Returns one optional
    /// [`PreArm`] per local child; `None` entries (markers, guards answered
    /// by constant folding, non-predicate nodes, or the non-batching
    /// baseline configurations) fall back to the per-node logic in `visit`.
    /// Donated siblings are excluded by construction — their receiving
    /// worker probes them itself, keeping per-arm accounting identical to a
    /// sequential run.
    fn probe_local_arms(
        &mut self,
        pool: &mut TermPool,
        ctx: &mut SymCtx,
        backend: &mut BackendRouter,
        v: &ValueStack,
        local: &[NodeId],
    ) -> Vec<Option<PreArm>> {
        if !self.use_cache || !self.config.batched_probing {
            return Vec::new();
        }
        let mut pres: Vec<Option<PreArm>> = Vec::new();
        pres.resize_with(local.len(), || None);
        let mut idx = Vec::new();
        let mut terms = Vec::new();
        let mut bundles: Vec<(Vec<TermId>, Vec<u64>)> = Vec::new();
        for (i, &child) in local.iter().enumerate() {
            let Stmt::Assume(b) = self.cfg.stmt(child) else {
                continue;
            };
            if b == &meissa_ir::BExp::True {
                continue; // structural marker: no validity question
            }
            let t = ctx.bexp(pool, &self.cfg.fields, v, b);
            if pool.as_bool_const(t).is_some() {
                continue; // constant folding answers it in `visit`
            }
            let mut cs = Vec::new();
            flatten_conjuncts(pool, t, &mut cs);
            cs.sort_by_key(|&c| pool.term_hash(c));
            let hs: Vec<u64> = cs.iter().map(|&c| pool.term_hash(c)).collect();
            idx.push(i);
            terms.push(t);
            bundles.push((cs, hs));
        }
        if idx.is_empty() {
            return pres;
        }
        let arm_hashes: Vec<Vec<u64>> = bundles.iter().map(|(_, hs)| hs.clone()).collect();
        let unsats = crate::session::probe_arms_cached(
            pool,
            backend,
            self.cache,
            self.base,
            self.stats,
            &self.key_stack,
            &self.all_constraints,
            &terms,
            &arm_hashes,
        );
        for ((i, (conjuncts, hashes)), unsat) in idx.into_iter().zip(bundles).zip(unsats) {
            pres[i] = Some(PreArm {
                conjuncts,
                hashes,
                unsat,
            });
        }
        pres
    }

    fn visit(
        &mut self,
        pool: &mut TermPool,
        ctx: &mut SymCtx,
        backend: &mut BackendRouter,
        v: &mut ValueStack,
        node: NodeId,
        pre: Option<PreArm>,
    ) {
        if self.out_of_budget() {
            return;
        }
        self.trace.push(node);
        let mut pushed = false;
        let mut feasible = true;
        let constraints_mark = self.all_constraints.len();

        match self.cfg.stmt(node) {
            Stmt::Assume(_) if pre.is_some() => {
                // The parent's branch expansion already translated and
                // probed this arm (one batched interaction across all local
                // siblings, counted per arm exactly like the individual
                // probes below). An infeasible arm prunes without ever
                // materializing a solver frame or its guard clauses.
                let arm = pre.unwrap();
                if arm.unsat {
                    feasible = false;
                    self.stats.pruned += 1;
                } else {
                    backend.solver_mut().push();
                    pushed = true;
                    for (c, h) in arm.conjuncts.into_iter().zip(arm.hashes) {
                        backend.solver_mut().assert_term(pool, c);
                        self.all_constraints.push(c);
                        self.key_stack.push(h);
                    }
                }
            }
            Stmt::Assume(b) => {
                // Structural no-op markers carry no validity question;
                // every other predicate node costs one validity check under
                // Algorithm 1's accounting (line 4 calls the solver at each
                // predicate). Constant folding answers many of those checks
                // without the SAT engine — cheaper, but still a check, so
                // the Fig. 11b "number of SMT calls" metric stays
                // comparable with the paper's implementation.
                let is_marker = b == &meissa_ir::BExp::True;
                let t = ctx.bexp(pool, &self.cfg.fields, v, b);
                match pool.as_bool_const(t) {
                    Some(true) => {
                        if !is_marker && self.config.early_termination {
                            self.stats.smt_checks += 1; // folded validity check
                        }
                    }
                    Some(false) if self.config.early_termination => {
                        // Syntactically false: prune via the fold fast path.
                        self.stats.smt_checks += 1; // folded validity check
                        feasible = false;
                        self.stats.pruned += 1;
                    }
                    Some(false) => {
                        // Naive mode must not benefit from folding: carry
                        // the contradiction along and discover it at the
                        // leaf check, like a tool without early termination.
                        backend.solver_mut().push();
                        backend.solver_mut().assert_term(pool, t);
                        self.all_constraints.push(t);
                        pushed = true;
                    }
                    None => {
                        // Record individual conjuncts: Algorithm 2's public
                        // pre-condition intersects *constraint sets*, which
                        // only works at conjunct granularity.
                        backend.solver_mut().push();
                        pushed = true;
                        let before = self.all_constraints.len();
                        flatten_conjuncts(pool, t, &mut self.all_constraints);
                        // `BoolAnd` canonicalizes its operands by pool-local
                        // TermId, so the flatten order above depends on term
                        // interning history — fine sequentially, but a parallel
                        // worker's pool interns in a schedule-dependent order.
                        // Re-sort the statement's conjuncts by their
                        // pool-independent structural hash so every pool
                        // records the same constraint sequence.
                        self.all_constraints[before..]
                            .sort_by_key(|&c| pool.term_hash(c));
                        for i in before..self.all_constraints.len() {
                            let c = self.all_constraints[i];
                            backend.solver_mut().assert_term(pool, c);
                            if self.use_cache {
                                self.key_stack.push(pool.term_hash(c));
                            }
                        }
                        if self.config.early_termination && self.probe_unsat(pool, backend) {
                            feasible = false;
                            self.stats.pruned += 1;
                        }
                    }
                }
            }
            Stmt::Assign(f, e) => {
                let t = ctx.aexp(pool, &self.cfg.fields, v, e);
                v.set(*f, t);
            }
        }
        if feasible {
            let at_target = self.targets.contains(&node);
            let children = self.cfg.succ(node);
            if at_target || children.is_empty() {
                self.leaf(pool, backend, v);
            } else {
                let children = children.to_vec();
                let mut local: &[NodeId] = &children;
                // Work sharing: when the frontier is hungry, hand all but
                // the first child off as tasks — each carries this prefix's
                // trace, constraints, and value snapshot, so the receiving
                // worker re-establishes it without re-checking (every tree
                // edge is still explored exactly once, which is what keeps
                // merged stats equal to a sequential run's).
                // Only shallow subtrees are worth shipping: a task pays a
                // fixed cost (prefix translation + re-assertion in the
                // receiver's solver) that a near-leaf subtree never earns
                // back, and the busiest donation sites are precisely the
                // deep ones. Gating on prefix length keeps tasks chunky —
                // the top few predicate levels of a data plane program fan
                // out into far more subtrees than there are workers. The
                // frontier picks the depth bound from the task costs it
                // observes (see `WorkSharer::donation_limit`).
                if children.len() > 1 {
                    if let Some(sh) = self.sharer {
                        if self.all_constraints.len() <= sh.donation_limit() && sh.hungry() {
                            sh.donate(
                                pool,
                                &self.trace,
                                &self.all_constraints,
                                v,
                                &children[1..],
                            );
                            local = &children[..1];
                        }
                    }
                }
                // Batched branch expansion: translate and probe every local
                // sibling arm in one solver interaction before descending.
                let mut pres = self.probe_local_arms(pool, ctx, backend, v, local);
                for (i, &c) in local.iter().enumerate() {
                    let mark = v.mark();
                    let pre = pres.get_mut(i).and_then(Option::take);
                    self.visit(pool, ctx, backend, v, c, pre);
                    v.restore(mark);
                    if self.out_of_budget() {
                        break;
                    }
                }
            }
        }

        if pushed {
            backend.solver_mut().pop();
            self.all_constraints.truncate(constraints_mark);
            if self.use_cache {
                self.key_stack.truncate(constraints_mark);
            }
        }
        self.trace.pop();
    }

    fn leaf(&mut self, pool: &mut TermPool, backend: &mut BackendRouter, v: &ValueStack) {
        self.stats.paths_explored += 1;
        // With early termination every prefix was checked, but the last
        // check may predate recent assume-true / assignment nodes; the
        // constraint set is unchanged since then, so the path is valid.
        // Without early termination this is the only check on the path.
        let valid = if self.config.early_termination {
            true
        } else {
            self.check(pool, backend) == CheckResult::Sat
        };
        if !valid {
            return;
        }
        self.stats.valid_paths += 1;
        self.budget.note_emit();
        // Sorted by field so emitted paths are deterministic — the value
        // stack is a hash map, whose iteration order is not.
        let mut final_values: Vec<_> = v.iter().collect();
        final_values.sort_by_key(|&(f, _)| f);
        (self.sink)(RawPath {
            path: self.trace.clone(),
            constraints: self.all_constraints.clone(),
            final_values,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_ir::{AExp, BExp, CfgBuilder, CmpOp, FieldId};
    use meissa_num::Bv;

    fn field(b: &mut CfgBuilder, name: &str, w: u16) -> FieldId {
        b.fields_mut().intern(name, w)
    }

    /// The Fig. 7a graph: table A assigns port by dst, table B branches on
    /// port — n×n possible paths, n valid.
    fn fig7_cfg(n: u128) -> Cfg {
        let mut b = CfgBuilder::new();
        let dst = field(&mut b, "dstIP", 32);
        let port = field(&mut b, "egressPort", 9);
        let mac = field(&mut b, "dstMAC", 48);
        b.nop();
        // Table ipv4_host.
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::Cmp(
                CmpOp::Eq,
                AExp::Field(dst),
                AExp::Const(Bv::new(32, 0x01010101 + i)),
            )));
            b.stmt(Stmt::Assign(port, AExp::Const(Bv::new(9, 1 + i))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        // Table mac_agent.
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::Cmp(
                CmpOp::Eq,
                AExp::Field(port),
                AExp::Const(Bv::new(9, 1 + i)),
            )));
            b.stmt(Stmt::Assign(mac, AExp::Const(Bv::new(48, i + 1))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        b.finish()
    }

    #[test]
    fn fig7_valid_paths_are_diagonal() {
        let cfg = fig7_cfg(5);
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        // 25 possible, 5 valid (port set by table A must match table B key).
        assert_eq!(out.templates.len(), 5);
        assert_eq!(out.stats.valid_paths, 5);
        assert_eq!(out.stats.pruned, 20);
    }

    #[test]
    fn early_termination_prunes_smt_work() {
        let cfg = fig7_cfg(6);
        let mut session1 = SolveSession::new();
        let with = generate_templates(&cfg, &mut session1, &ExecConfig::default());
        let mut session2 = SolveSession::new();
        let without = generate_templates(
            &cfg,
            &mut session2,
            &ExecConfig {
                early_termination: false,
                ..ExecConfig::default()
            },
        );
        assert_eq!(with.templates.len(), without.templates.len());
        assert_eq!(without.stats.paths_explored, 36, "all possible paths");
        assert!(with.stats.paths_explored < without.stats.paths_explored);
    }

    #[test]
    fn verdict_cache_answers_repeat_probes() {
        let cfg = fig7_cfg(4);
        let config = ExecConfig::default();
        let mut session = SolveSession::new();
        let first = generate_templates(&cfg, &mut session, &config);
        assert!(
            first.stats.cache_probes > 0,
            "early-termination probes consult the cache"
        );
        assert_eq!(first.stats.cache_hits, 0, "a fresh session starts cold");
        // Re-exploring the same CFG in the same session re-issues the same
        // constraint sets; every probe is now answered from the cache.
        let second = generate_templates(&cfg, &mut session, &config);
        assert_eq!(second.stats.cache_probes, first.stats.cache_probes);
        assert_eq!(
            second.stats.cache_hits, second.stats.cache_probes,
            "identical re-exploration hits on every probe"
        );
        assert_eq!(
            second.stats.smt_checks, first.stats.smt_checks,
            "hits count as checks, keeping the Fig. 11b metric comparable"
        );
        assert_eq!(second.templates.len(), first.templates.len());
        // Session totals carry the cumulative counters.
        assert_eq!(
            session.exec.cache_probes,
            first.stats.cache_probes + second.stats.cache_probes
        );
        assert_eq!(session.exec.cache_hits, second.stats.cache_hits);
    }

    #[test]
    fn backends_agree_and_route_as_configured() {
        // fig7's guards are all `field == const`, so every probe is
        // BDD-classifiable: `auto` and `bdd` must answer entirely without
        // the SAT engine, `smt` entirely with it — and all three must
        // produce the same templates and the same probe accounting.
        let cfg = fig7_cfg(5);
        let mut runs = Vec::new();
        for backend in [BackendKind::Smt, BackendKind::Bdd, BackendKind::Auto] {
            let mut session = SolveSession::new();
            let out = generate_templates(
                &cfg,
                &mut session,
                &ExecConfig {
                    backend,
                    ..ExecConfig::default()
                },
            );
            runs.push((backend, out, session));
        }
        let (_, smt_out, smt_session) = &runs[0];
        for (backend, out, session) in &runs[1..] {
            assert_eq!(out.templates.len(), smt_out.templates.len());
            assert_eq!(out.stats.smt_checks, smt_out.stats.smt_checks, "{backend:?}");
            assert_eq!(out.stats.cache_probes, smt_out.stats.cache_probes);
            assert_eq!(out.stats.pruned, smt_out.stats.pruned);
            assert!(out.stats.bdd_probes > 0, "{backend:?} must use the BDD");
            assert_eq!(out.stats.backend_routed_smt, 0, "nothing out of class");
            assert_eq!(
                session.solver_stats().sat_engine_calls,
                0,
                "{backend:?}: the SAT engine never ran"
            );
        }
        assert_eq!(smt_out.stats.bdd_probes, 0);
        assert_eq!(smt_out.stats.backend_routed_bdd, 0);
        assert!(smt_out.stats.backend_routed_smt > 0);
        assert!(smt_session.solver_stats().checks > 0);
    }

    #[test]
    fn verdict_cache_is_off_in_baseline_modes() {
        let cfg = fig7_cfg(3);
        for config in [
            ExecConfig {
                early_termination: false,
                ..ExecConfig::default()
            },
            ExecConfig {
                incremental: false,
                ..ExecConfig::default()
            },
        ] {
            let mut session = SolveSession::new();
            let a = generate_templates(&cfg, &mut session, &config);
            let b = generate_templates(&cfg, &mut session, &config);
            assert_eq!(a.stats.cache_probes, 0, "baselines never probe the cache");
            assert_eq!(b.stats.cache_hits, 0);
            assert_eq!(b.templates.len(), a.templates.len());
        }
    }

    #[test]
    fn templates_instantiate_and_replay() {
        // End-to-end Definition 3 check: every template's model drives the
        // concrete evaluator down exactly the template's path.
        let cfg = fig7_cfg(4);
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        for t in &out.templates {
            let input = t
                .instantiate(&mut session.pool, &cfg.fields, &[])
                .expect("valid template instantiates");
            let result = meissa_ir::eval_path(&cfg, &t.path, &input);
            assert!(result.is_ok(), "model must execute the covered path");
        }
    }

    #[test]
    fn distinct_templates_cover_distinct_paths() {
        let cfg = fig7_cfg(4);
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let mut seen = std::collections::HashSet::new();
        for t in &out.templates {
            assert!(seen.insert(t.path.clone()), "duplicate path");
        }
    }

    #[test]
    fn syntactically_false_guards_skip_solver() {
        let mut b = CfgBuilder::new();
        let f = field(&mut b, "x", 8);
        b.nop();
        let base = b.frontier();
        // Branch 1: x == 1 (satisfiable).
        b.set_frontier(base.clone());
        b.stmt(Stmt::Assume(BExp::Cmp(
            CmpOp::Eq,
            AExp::Field(f),
            AExp::Const(Bv::new(8, 1)),
        )));
        let f1 = b.frontier();
        // Branch 2: constant false.
        b.set_frontier(base);
        b.stmt(Stmt::Assume(BExp::False));
        let f2 = b.frontier();
        b.set_frontier(Vec::new());
        b.merge_frontiers(vec![f1, f2]);
        b.nop();
        let cfg = b.finish();

        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        assert_eq!(out.templates.len(), 1);
        assert_eq!(out.stats.pruned, 1);
    }

    #[test]
    fn assignment_then_contradiction_is_pruned() {
        // Fig. 5b: dstIP ← k then dstIP == other: invalid.
        let mut b = CfgBuilder::new();
        let f = field(&mut b, "dstIP", 32);
        b.stmt(Stmt::Assign(f, AExp::Const(Bv::new(32, 0xc0a80001))));
        b.stmt(Stmt::Assume(BExp::Cmp(
            CmpOp::Eq,
            AExp::Field(f),
            AExp::Const(Bv::new(32, 0x0a010101)),
        )));
        let cfg = b.finish();
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        assert_eq!(out.templates.len(), 0);
        assert_eq!(out.stats.pruned, 1);
    }

    #[test]
    fn max_templates_caps_output() {
        let cfg = fig7_cfg(8);
        let mut session = SolveSession::new();
        let out = generate_templates(
            &cfg,
            &mut session,
            &ExecConfig {
                max_templates: Some(3),
                ..ExecConfig::default()
            },
        );
        assert_eq!(out.templates.len(), 3);
    }

    #[test]
    fn time_budget_flags_timeout() {
        let cfg = fig7_cfg(10);
        let mut session = SolveSession::new();
        let out = generate_templates(
            &cfg,
            &mut session,
            &ExecConfig {
                time_budget: Some(Duration::from_nanos(1)),
                ..ExecConfig::default()
            },
        );
        assert!(out.stats.timed_out);
    }

    #[test]
    fn non_incremental_mode_matches_results() {
        let cfg = fig7_cfg(5);
        let mut session1 = SolveSession::new();
        let inc = generate_templates(&cfg, &mut session1, &ExecConfig::default());
        let mut session2 = SolveSession::new();
        let fresh = generate_templates(
            &cfg,
            &mut session2,
            &ExecConfig {
                incremental: false,
                ..ExecConfig::default()
            },
        );
        assert_eq!(inc.templates.len(), fresh.templates.len());
    }

    #[test]
    fn session_reuses_one_solver_across_explorations() {
        // `explore_in_session` keeps the session's solver: successive runs
        // with different base constraints answer from the shared
        // bit-blasting cache, and frame isolation keeps verdicts
        // independent.
        let cfg = fig7_cfg(4);
        let mut session = SolveSession::new();
        let mut ctx = crate::symstate::SymCtx::new(None);
        // Pin the SMT backend: under `auto` the fig7 probes are all
        // match-field-only and the BDD would answer every one, leaving no
        // solver activity for this test to observe.
        let config = ExecConfig {
            backend: BackendKind::Smt,
            ..ExecConfig::default()
        };
        let dst = cfg.fields.get("dstIP").unwrap();
        let dst_var = session.pool.var("dstIP", 32);
        let targets = std::collections::HashSet::new();

        // Unconstrained: all 4 diagonal paths.
        let mut n_free = 0;
        explore_in_session(
            &cfg,
            &mut session,
            &mut ctx,
            cfg.entry(),
            &targets,
            &[],
            &[],
            &config,
            &mut |_| n_free += 1,
        );
        assert_eq!(n_free, 4);

        // Base-constrained to one dst: a single path.
        let k = session.pool.bv_const(meissa_num::Bv::new(32, 0x01010102));
        let pin = session.pool.eq(dst_var, k);
        let mut n_pinned = 0;
        explore_in_session(
            &cfg,
            &mut session,
            &mut ctx,
            cfg.entry(),
            &targets,
            &[pin],
            &[],
            &config,
            &mut |_| n_pinned += 1,
        );
        assert_eq!(n_pinned, 1);

        // And the constraint did not leak into a third run.
        let mut n_again = 0;
        explore_in_session(
            &cfg,
            &mut session,
            &mut ctx,
            cfg.entry(),
            &targets,
            &[],
            &[],
            &config,
            &mut |_| n_again += 1,
        );
        assert_eq!(n_again, 4);
        // The session accumulated every exploration's work.
        assert_eq!(session.exec.valid_paths, 9);
        assert!(session.solver_stats().checks > 0);
        let _ = dst;
    }

    #[test]
    fn final_values_capture_effects() {
        let cfg = fig7_cfg(3);
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let mac = cfg.fields.get("dstMAC").unwrap();
        for t in &out.templates {
            let mac_val = t
                .final_values
                .iter()
                .find(|(f, _)| *f == mac)
                .map(|&(_, v)| v)
                .expect("dstMAC assigned on every valid path");
            assert!(session.pool.as_const(mac_val).is_some());
        }
    }
}
