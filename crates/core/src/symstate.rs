//! Symbolic state: the value stack `V` and IR→solver-term translation.
//!
//! §3.2 defines `V ∈ field_id → aexp` mapping each header field to its
//! current symbolic value, with `⟦V⟧a` substituting current values into an
//! expression. Here `V` maps fields to solver [`TermId`]s; reading a field
//! that was never assigned yields its *input variable* — the symbolic value
//! of that field at the start of the execution scope.
//!
//! One translation context serves two scopes:
//!
//! * whole-program execution (`scope = None`): input variables are named by
//!   the field itself (`hdr.ipv4.dst_addr`), representing the arriving
//!   packet;
//! * per-pipeline execution during code summary (`scope = Some("ppl")`):
//!   input variables are named `field@ppl`, representing field values at
//!   *pipeline entry*, so that collected constraints and effects can be
//!   re-encoded as CFG statements relative to the pipeline boundary.
//!
//! Hashing follows §4: a hash whose keys all fold to constants is computed
//! concretely; otherwise the result is a fresh unconstrained variable and
//! the `(algorithm, keys, output)` triple is recorded so the template
//! instantiator can post-filter generated packets.
//!
//! Hash stand-ins are named by **content** — a digest of the algorithm,
//! width, and a pool-independent canonical rendering of the key terms —
//! rather than by discovery order. Two consequences: the same hash
//! application reached along two paths shares one stand-in (sound, since a
//! hash is a function of its keys), and a parallel worker that discovers a
//! hash site in its own term pool mints exactly the name the sequential
//! engine would, which is what keeps parallel output byte-identical.

use meissa_ir::{AExp, AOp, BExp, BOp, CmpOp, FieldId, FieldTable, HashAlg};
use meissa_smt::{TermId, TermPool, VarId};
use std::collections::HashMap;

/// A deferred hash computation recorded during symbolic execution (§4).
#[derive(Clone, Debug)]
pub struct HashDef {
    /// The algorithm.
    pub alg: HashAlg,
    /// Output width in bits.
    pub width: u16,
    /// Key terms (symbolic at record time).
    pub keys: Vec<TermId>,
    /// The fresh variable standing in for the hash result.
    pub out: TermId,
}

/// Translation context shared across one symbolic execution.
pub struct SymCtx {
    /// Scope suffix for input variable names (`None` = program inputs).
    scope: Option<String>,
    /// Input variable term for each field, created on first read.
    input_vars: HashMap<FieldId, TermId>,
    /// Reverse map from solver variables back to fields (used by code
    /// summary to re-encode terms as CFG expressions).
    var_to_field: HashMap<VarId, FieldId>,
    /// Hash stand-in variables: out term → definition.
    hash_defs: HashMap<TermId, HashDef>,
}

/// The value stack `V` with an undo log for DFS backtracking.
#[derive(Default)]
pub struct ValueStack {
    values: HashMap<FieldId, TermId>,
    undo: Vec<(FieldId, Option<TermId>)>,
}

impl ValueStack {
    /// An empty stack (every field reads as its input variable).
    pub fn new() -> Self {
        Self::default()
    }

    /// The assigned value of a field, if any.
    pub fn get(&self, f: FieldId) -> Option<TermId> {
        self.values.get(&f).copied()
    }

    /// Assigns a field, recording the previous binding for undo.
    pub fn set(&mut self, f: FieldId, t: TermId) {
        let prev = self.values.insert(f, t);
        self.undo.push((f, prev));
    }

    /// A checkpoint for later [`ValueStack::restore`].
    pub fn mark(&self) -> usize {
        self.undo.len()
    }

    /// Rolls back to a checkpoint (the `V.restore()` of Algorithm 1).
    pub fn restore(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let (f, prev) = self.undo.pop().unwrap();
            match prev {
                Some(t) => {
                    self.values.insert(f, t);
                }
                None => {
                    self.values.remove(&f);
                }
            }
        }
    }

    /// Iterates over currently-assigned fields.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, TermId)> + '_ {
        self.values.iter().map(|(&f, &t)| (f, t))
    }

    /// Number of assigned fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no field has been assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl SymCtx {
    /// Creates a context. `scope` distinguishes per-pipeline executions.
    pub fn new(scope: Option<&str>) -> Self {
        SymCtx {
            scope: scope.map(str::to_string),
            input_vars: HashMap::new(),
            var_to_field: HashMap::new(),
            hash_defs: HashMap::new(),
        }
    }

    /// The scope suffix for input variable names (`None` = program inputs).
    /// Parallel workers create their own contexts with the same scope so
    /// variables unify by name when terms translate back.
    pub fn scope(&self) -> Option<&str> {
        self.scope.as_deref()
    }

    /// The input variable term for a field (created on first use).
    pub fn input_var(
        &mut self,
        pool: &mut TermPool,
        fields: &FieldTable,
        f: FieldId,
    ) -> TermId {
        if let Some(&t) = self.input_vars.get(&f) {
            return t;
        }
        let name = match &self.scope {
            None => fields.name(f).to_string(),
            Some(s) => format!("{}@{s}", fields.name(f)),
        };
        let t = pool.var(&name, fields.width(f));
        if let meissa_smt::TermNode::BvVar(v) = *pool.node(t) {
            self.var_to_field.insert(v, f);
        }
        self.input_vars.insert(f, t);
        t
    }

    /// The field behind a solver variable, if it is one of ours.
    pub fn field_of_var(&self, v: VarId) -> Option<FieldId> {
        self.var_to_field.get(&v).copied()
    }

    /// The current symbolic value of a field: `V[f]`, defaulting to the
    /// input variable.
    pub fn read(
        &mut self,
        pool: &mut TermPool,
        fields: &FieldTable,
        v: &ValueStack,
        f: FieldId,
    ) -> TermId {
        match v.get(f) {
            Some(t) => t,
            None => self.input_var(pool, fields, f),
        }
    }

    /// Recorded hash definitions (for template obligations).
    pub fn hash_defs(&self) -> impl Iterator<Item = &HashDef> {
        self.hash_defs.values()
    }

    /// Looks up the hash definition behind a stand-in term.
    pub fn hash_def_of(&self, t: TermId) -> Option<&HashDef> {
        self.hash_defs.get(&t)
    }

    /// Registers an externally-discovered hash definition (a parallel
    /// worker's obligation, translated into this context's pool). Keyed by
    /// the stand-in term, so re-registering the same application is a no-op.
    pub fn add_hash_def(&mut self, def: HashDef) {
        self.hash_defs.insert(def.out, def);
    }

    /// Content-keyed stand-in name: algorithm, width, and an FNV-1a digest
    /// of the keys' pool-independent canonical renderings.
    fn hash_name(
        &self,
        pool: &TermPool,
        alg: HashAlg,
        width: u16,
        keys: &[TermId],
    ) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let eat = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&mut h, format!("{alg:?}/{width}").as_bytes());
        for &k in keys {
            eat(&mut h, b"/");
            eat(&mut h, pool.canonical_key(k).as_bytes());
        }
        match &self.scope {
            None => format!("$hash_{alg:?}_{width}_{h:016x}"),
            Some(s) => format!("$hash_{alg:?}_{width}_{h:016x}@{s}"),
        }
    }

    /// Adopts every variable of `pool` that names one of our fields into
    /// the reverse `var → field` map (and the input-var table), declaring
    /// it in the pool if needed so the [`TermId`] is available.
    ///
    /// A parallel worker reads fields the main thread never touched; after
    /// its terms are imported, the main context must recognize those input
    /// variables — code summary's term re-encoding relies on
    /// [`SymCtx::field_of_var`] covering them.
    pub fn register_pool_vars(&mut self, pool: &mut TermPool, fields: &FieldTable) {
        let scope_suffix = self.scope.as_ref().map(|s| format!("@{s}"));
        let vars: Vec<_> = pool.all_vars().collect();
        for v in vars {
            let name = pool.var_name(v).to_string();
            let base = match &scope_suffix {
                None => name.as_str(),
                Some(suf) => match name.strip_suffix(suf.as_str()) {
                    Some(b) => b,
                    None => continue,
                },
            };
            let Some(f) = fields.get(base) else { continue };
            if fields.width(f) != pool.var_width(v) {
                continue;
            }
            let t = pool.var(&name, fields.width(f));
            self.var_to_field.entry(v).or_insert(f);
            self.input_vars.entry(f).or_insert(t);
        }
    }

    /// Translates an arithmetic expression under `V` — the `⟦V⟧a`
    /// substitution of Fig. 6.
    pub fn aexp(
        &mut self,
        pool: &mut TermPool,
        fields: &FieldTable,
        v: &ValueStack,
        e: &AExp,
    ) -> TermId {
        match e {
            AExp::Field(f) => self.read(pool, fields, v, *f),
            AExp::Const(c) => pool.bv_const(*c),
            AExp::Bin(op, a, b) => {
                let ta = self.aexp(pool, fields, v, a);
                let tb = self.aexp(pool, fields, v, b);
                match op {
                    AOp::Add => pool.add(ta, tb),
                    AOp::Sub => pool.sub(ta, tb),
                    AOp::And => pool.bv_and(ta, tb),
                    AOp::Or => pool.bv_or(ta, tb),
                    AOp::Xor => pool.bv_xor(ta, tb),
                }
            }
            AExp::Not(a) => {
                let ta = self.aexp(pool, fields, v, a);
                pool.bv_not(ta)
            }
            AExp::Shl(a, n) => {
                let ta = self.aexp(pool, fields, v, a);
                pool.shl(ta, *n)
            }
            AExp::Shr(a, n) => {
                let ta = self.aexp(pool, fields, v, a);
                pool.shr(ta, *n)
            }
            AExp::Hash(alg, w, args) => {
                let keys: Vec<TermId> = args
                    .iter()
                    .map(|a| self.aexp(pool, fields, v, a))
                    .collect();
                // §4: fold when every key is a known constant.
                let consts: Option<Vec<meissa_num::Bv>> =
                    keys.iter().map(|&k| pool.as_const(k)).collect();
                if let Some(cs) = consts {
                    return pool.bv_const(alg.compute(*w, &cs));
                }
                // Otherwise: unconstrained stand-in + recorded obligation
                // for post-filtering. The stand-in is named by content, so
                // the same application (same algorithm, width, keys) yields
                // the same variable on every path, in every worker pool.
                let name = self.hash_name(pool, *alg, *w, &keys);
                let out = pool.var(&name, *w);
                self.hash_defs.insert(
                    out,
                    HashDef {
                        alg: *alg,
                        width: *w,
                        keys,
                        out,
                    },
                );
                out
            }
        }
    }

    /// Translates a boolean expression under `V`.
    pub fn bexp(
        &mut self,
        pool: &mut TermPool,
        fields: &FieldTable,
        v: &ValueStack,
        e: &BExp,
    ) -> TermId {
        match e {
            BExp::True => pool.bool_true(),
            BExp::False => pool.bool_false(),
            BExp::Cmp(op, a, b) => {
                let ta = self.aexp(pool, fields, v, a);
                let tb = self.aexp(pool, fields, v, b);
                match op {
                    CmpOp::Eq => pool.eq(ta, tb),
                    CmpOp::Ne => pool.ne(ta, tb),
                    CmpOp::Lt => pool.ult(ta, tb),
                    CmpOp::Gt => pool.ugt(ta, tb),
                    CmpOp::Le => pool.ule(ta, tb),
                    CmpOp::Ge => pool.uge(ta, tb),
                }
            }
            BExp::Bin(op, a, b) => {
                let ta = self.bexp(pool, fields, v, a);
                let tb = self.bexp(pool, fields, v, b);
                match op {
                    BOp::And => pool.and(ta, tb),
                    BOp::Or => pool.or(ta, tb),
                }
            }
            BExp::Not(a) => {
                let ta = self.bexp(pool, fields, v, a);
                pool.not(ta)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_num::Bv;

    fn setup() -> (TermPool, FieldTable, SymCtx, ValueStack) {
        let mut fields = FieldTable::new();
        fields.intern("hdr.ip.src", 32);
        fields.intern("hdr.ip.dst", 32);
        fields.intern("meta.port", 9);
        (
            TermPool::new(),
            fields,
            SymCtx::new(None),
            ValueStack::new(),
        )
    }

    #[test]
    fn unassigned_field_reads_input_var() {
        let (mut pool, fields, mut ctx, v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let t = ctx.read(&mut pool, &fields, &v, f);
        assert_eq!(pool.display(t), "hdr.ip.src");
        // Idempotent.
        assert_eq!(ctx.read(&mut pool, &fields, &v, f), t);
    }

    #[test]
    fn assignment_shadows_input() {
        let (mut pool, fields, mut ctx, mut v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let c = pool.bv_const(Bv::new(32, 7));
        v.set(f, c);
        assert_eq!(ctx.read(&mut pool, &fields, &v, f), c);
    }

    #[test]
    fn undo_log_restores() {
        let (mut pool, fields, mut ctx, mut v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let g = fields.get("hdr.ip.dst").unwrap();
        let c1 = pool.bv_const(Bv::new(32, 1));
        let c2 = pool.bv_const(Bv::new(32, 2));
        v.set(f, c1);
        let mark = v.mark();
        v.set(f, c2);
        v.set(g, c2);
        assert_eq!(v.get(f), Some(c2));
        assert_eq!(v.get(g), Some(c2));
        v.restore(mark);
        assert_eq!(v.get(f), Some(c1));
        assert_eq!(v.get(g), None);
        let t = ctx.read(&mut pool, &fields, &v, g);
        assert_eq!(pool.display(t), "hdr.ip.dst");
    }

    #[test]
    fn aexp_substitutes_values() {
        // Fig. 6's substitution: after src ← 5, `src + 1` is `6`.
        let (mut pool, fields, mut ctx, mut v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let five = pool.bv_const(Bv::new(32, 5));
        v.set(f, five);
        let e = AExp::bin(
            AOp::Add,
            AExp::Field(f),
            AExp::Const(Bv::new(32, 1)),
        );
        let t = ctx.aexp(&mut pool, &fields, &v, &e);
        assert_eq!(pool.as_const(t), Some(Bv::new(32, 6)));
    }

    #[test]
    fn bexp_comparisons_fold() {
        let (mut pool, fields, mut ctx, mut v) = setup();
        let f = fields.get("meta.port").unwrap();
        let c = pool.bv_const(Bv::new(9, 5));
        v.set(f, c);
        let checks = [
            (CmpOp::Eq, 5u128, true),
            (CmpOp::Ne, 5, false),
            (CmpOp::Lt, 6, true),
            (CmpOp::Gt, 4, true),
            (CmpOp::Le, 5, true),
            (CmpOp::Ge, 6, false),
        ];
        for (op, k, expect) in checks {
            let e = BExp::Cmp(op, AExp::Field(f), AExp::Const(Bv::new(9, k)));
            let t = ctx.bexp(&mut pool, &fields, &v, &e);
            assert_eq!(pool.as_bool_const(t), Some(expect), "{op:?} {k}");
        }
    }

    #[test]
    fn scoped_input_vars_are_distinct() {
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.src", 32);
        let mut pool = TermPool::new();
        let mut prog_ctx = SymCtx::new(None);
        let mut ppl_ctx = SymCtx::new(Some("ppl1"));
        let v = ValueStack::new();
        let t1 = prog_ctx.read(&mut pool, &fields, &v, f);
        let t2 = ppl_ctx.read(&mut pool, &fields, &v, f);
        assert_ne!(t1, t2);
        assert_eq!(pool.display(t2), "hdr.ip.src@ppl1");
    }

    #[test]
    fn var_to_field_roundtrip() {
        let (mut pool, fields, mut ctx, v) = setup();
        let f = fields.get("hdr.ip.dst").unwrap();
        let t = ctx.read(&mut pool, &fields, &v, f);
        if let meissa_smt::TermNode::BvVar(vid) = *pool.node(t) {
            assert_eq!(ctx.field_of_var(vid), Some(f));
        } else {
            panic!("expected a variable term");
        }
    }

    #[test]
    fn hash_with_constant_keys_folds() {
        let (mut pool, fields, mut ctx, mut v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let c = pool.bv_const(Bv::new(32, 0xdeadbeef));
        v.set(f, c);
        let e = AExp::Hash(HashAlg::Crc16, 16, vec![AExp::Field(f)]);
        let t = ctx.aexp(&mut pool, &fields, &v, &e);
        let expect = HashAlg::Crc16.compute(16, &[Bv::new(32, 0xdeadbeef)]);
        assert_eq!(pool.as_const(t), Some(expect));
        assert_eq!(ctx.hash_defs().count(), 0, "no obligation when folded");
    }

    #[test]
    fn hash_with_symbolic_keys_records_obligation() {
        let (mut pool, fields, mut ctx, v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let e = AExp::Hash(HashAlg::Crc32, 32, vec![AExp::Field(f)]);
        let t = ctx.aexp(&mut pool, &fields, &v, &e);
        assert!(pool.as_const(t).is_none());
        let defs: Vec<&HashDef> = ctx.hash_defs().collect();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].out, t);
        assert_eq!(defs[0].alg, HashAlg::Crc32);
        assert!(ctx.hash_def_of(t).is_some());
    }

    #[test]
    fn hash_names_are_content_keyed_across_pools() {
        // Two pools with skewed numbering; same application must mint the
        // same stand-in name, so worker-discovered hashes line up with the
        // sequential engine's after import.
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.src", 32);
        let e = AExp::Hash(HashAlg::Crc32, 32, vec![AExp::Field(f)]);

        let mut p1 = TermPool::new();
        let mut c1 = SymCtx::new(None);
        let t1 = c1.aexp(&mut p1, &fields, &ValueStack::new(), &e);

        let mut p2 = TermPool::new();
        p2.var("skew", 4); // different ids in this pool
        let mut c2 = SymCtx::new(None);
        let t2 = c2.aexp(&mut p2, &fields, &ValueStack::new(), &e);

        assert_eq!(p1.display(t1), p2.display(t2));
        assert!(p1.display(t1).starts_with("$hash_Crc32_32_"));
    }

    #[test]
    fn same_hash_application_shares_one_standin() {
        let (mut pool, fields, mut ctx, v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let e = AExp::Hash(HashAlg::Crc16, 16, vec![AExp::Field(f)]);
        let t1 = ctx.aexp(&mut pool, &fields, &v, &e);
        let t2 = ctx.aexp(&mut pool, &fields, &v, &e);
        assert_eq!(t1, t2);
        assert_eq!(ctx.hash_defs().count(), 1);
        // A different application gets a different stand-in.
        let g = fields.get("hdr.ip.dst").unwrap();
        let e2 = AExp::Hash(HashAlg::Crc16, 16, vec![AExp::Field(g)]);
        let t3 = ctx.aexp(&mut pool, &fields, &v, &e2);
        assert_ne!(t1, t3);
        assert_eq!(ctx.hash_defs().count(), 2);
    }

    #[test]
    fn add_hash_def_registers_external_obligation() {
        let (mut pool, fields, mut ctx, _v) = setup();
        let f = fields.get("hdr.ip.src").unwrap();
        let key = ctx.input_var(&mut pool, &fields, f);
        let out = pool.var("$hash_Crc16_16_feedbeef", 16);
        ctx.add_hash_def(HashDef {
            alg: HashAlg::Crc16,
            width: 16,
            keys: vec![key],
            out,
        });
        assert!(ctx.hash_def_of(out).is_some());
        assert_eq!(ctx.hash_defs().count(), 1);
    }

    #[test]
    fn register_pool_vars_adopts_worker_inputs() {
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.src", 32);
        let g = fields.intern("meta.port", 9);
        // Worker pool read both fields; main ctx never touched them.
        let mut pool = TermPool::new();
        let mut worker_ctx = SymCtx::new(None);
        let v = ValueStack::new();
        worker_ctx.read(&mut pool, &fields, &v, f);
        worker_ctx.read(&mut pool, &fields, &v, g);
        pool.var("$hash_Crc16_16_0000000000000000", 16); // not a field

        let mut main_ctx = SymCtx::new(None);
        main_ctx.register_pool_vars(&mut pool, &fields);
        let vf = pool.find_var("hdr.ip.src").unwrap();
        let vg = pool.find_var("meta.port").unwrap();
        assert_eq!(main_ctx.field_of_var(vf), Some(f));
        assert_eq!(main_ctx.field_of_var(vg), Some(g));
        // Reading now returns the same input var the worker used.
        let t = main_ctx.read(&mut pool, &fields, &v, f);
        assert_eq!(pool.display(t), "hdr.ip.src");
    }

    #[test]
    fn register_pool_vars_respects_scope() {
        let mut fields = FieldTable::new();
        let f = fields.intern("hdr.ip.src", 32);
        let mut pool = TermPool::new();
        let mut scoped = SymCtx::new(Some("ppl1"));
        let v = ValueStack::new();
        scoped.read(&mut pool, &fields, &v, f); // mints hdr.ip.src@ppl1
        let mut plain = SymCtx::new(None);
        plain.read(&mut pool, &fields, &v, f); // mints hdr.ip.src

        let mut adopt_scoped = SymCtx::new(Some("ppl1"));
        adopt_scoped.register_pool_vars(&mut pool, &fields);
        let scoped_var = pool.find_var("hdr.ip.src@ppl1").unwrap();
        let plain_var = pool.find_var("hdr.ip.src").unwrap();
        assert_eq!(adopt_scoped.field_of_var(scoped_var), Some(f));
        assert_eq!(adopt_scoped.field_of_var(plain_var), None);

        let mut adopt_plain = SymCtx::new(None);
        adopt_plain.register_pool_vars(&mut pool, &fields);
        assert_eq!(adopt_plain.field_of_var(plain_var), Some(f));
        assert_eq!(adopt_plain.field_of_var(scoped_var), None);
    }
}
