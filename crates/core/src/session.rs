//! The unified solve session threaded through the engine layers.
//!
//! Historically `engine` → `summary` → `exec` passed a `&mut TermPool`, a
//! `Solver`, and loose stat counters as separate parameters at every level.
//! [`SolveSession`] bundles them: one term pool, one current incremental
//! solver, and cumulative statistics across every exploration the session
//! ran. Besides removing the parameter threading, the bundle is the unit a
//! future parallel DFS hands to each worker — a worker owns one session,
//! and merging workers is merging their cumulative stats.

use crate::backend::{default_backend, BackendRouter};
use crate::exec::ExecStats;
use meissa_smt::sat::SatStats;
use meissa_smt::{ClauseExchange, SharedClause, Solver, SolverStats, TermId, TermPool};
use meissa_testkit::obs;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Longest learned clause worth exchanging: short clauses prune the most
/// per literal, and translation cost is linear in clause length.
const MAX_SHARE_LITS: usize = 8;
/// Cap on clauses parked for retry because their atoms are not blasted yet.
const MAX_PENDING_IMPORTS: usize = 512;

/// Live observability metrics for the session cache layer
/// (`meissa_session_*` in the Prometheus exposition). Only touched when
/// [`obs::active`].
struct ObsMetrics {
    cache_probes: Arc<obs::Counter>,
    cache_hits: Arc<obs::Counter>,
    arm_batch: Arc<obs::Histogram>,
    clauses_exported: Arc<obs::Counter>,
    clauses_imported: Arc<obs::Counter>,
}

fn obs_metrics() -> &'static ObsMetrics {
    static M: OnceLock<ObsMetrics> = OnceLock::new();
    M.get_or_init(|| ObsMetrics {
        cache_probes: obs::counter("session.cache_probes"),
        cache_hits: obs::counter("session.cache_hits"),
        arm_batch: obs::histogram("session.arm_batch_size"),
        clauses_exported: obs::counter("session.clauses_exported"),
        clauses_imported: obs::counter("session.clauses_imported"),
    })
}

/// Verdict of one branch-arm probe (see [`SolveSession::probe_arms`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The prefix extended by the arm is satisfiable.
    Sat,
    /// The prefix extended by the arm is unsatisfiable.
    Unsat,
}

/// One solving context: term pool + current incremental solver + cumulative
/// statistics. All engine-layer entry points ([`crate::exec::explore_multi`],
/// [`crate::exec::generate_templates`], [`crate::summary::summarize`]) take
/// `&mut SolveSession` instead of loose `(pool, solver, stats)` triples.
pub struct SolveSession {
    /// The term pool every constraint of this session lives in.
    pub pool: TermPool,
    /// The predicate-backend router every probe flows through: the current
    /// incremental SMT solver plus the session's BDD engine, with per-probe
    /// routing (see [`crate::backend`]). Private: explorations manage
    /// frames and check accounting through it, and
    /// [`SolveSession::reset_solver`] replaces the SMT side wholesale.
    pub(crate) backend: BackendRouter,
    /// Cumulative execution counters across every exploration this session
    /// ran (each call also returns its own per-call [`ExecStats`] delta).
    pub exec: ExecStats,
    /// Solver counters retired by [`SolveSession::reset_solver`]; added to
    /// the live solver's counters by [`SolveSession::solver_stats`].
    retired: SolverStats,
    /// SAT-engine counters retired alongside [`SolveSession::retired`];
    /// added to the live engine's counters by [`SolveSession::sat_stats`].
    retired_sat: SatStats,
    /// Live-solver checks already attributed to some exploration's
    /// per-call stats (the incremental-check delta accounting previously
    /// kept by the `Explorer`).
    pub(crate) checks_consumed: u64,
    /// `(canonical constraint set) → unsat?` verdicts from early-termination
    /// probes. Satisfiability is context-free in the constraint set, so the
    /// cache is sound across explorations, CFGs, and solver resets within
    /// one session; a parallel worker re-exploring a familiar region after
    /// a donation skips already-decided sibling arms. Keys are 128-bit
    /// content hashes folded from per-conjunct structural hashes
    /// ([`meissa_smt::TermPool::term_hash`]) — pool-independent like the
    /// canonical renderings they replaced, but allocation-free per probe.
    /// The cache sits *above* the backend router: a hit never reaches
    /// either engine, and both engines populate it on miss.
    pub(crate) verdict_cache: HashMap<u128, bool>,
    /// Read-only verdicts inherited from the parent session at fork time.
    /// Consulted after a `verdict_cache` miss (a hit counts exactly like a
    /// local one) but never written: `verdict_cache` then holds only what
    /// this session decided itself, so a batched-exploration driver can
    /// merge those *discoveries* back deterministically.
    pub(crate) base_verdicts: Option<Arc<HashMap<u128, bool>>>,
    /// The cross-worker learned-clause pool, when clause sharing is on.
    /// Export happens at solver-retire boundaries ([`SolveSession::
    /// reset_solver`] / [`SolveSession::share_learned`]); import at the
    /// driver's task boundaries via [`SolveSession::import_shared`].
    exchange: Option<Arc<ClauseExchange>>,
    /// This session's worker id on the exchange (own clauses are skipped).
    exchange_wid: usize,
    /// How far into the exchange this session has read.
    exchange_cursor: usize,
    /// Shared clauses whose atoms the live solver has not blasted yet;
    /// retried on the next import, bounded by [`MAX_PENDING_IMPORTS`].
    pending_import: Vec<SharedClause>,
    /// Content hashes of clauses already published, so successive retire
    /// boundaries don't republish the re-exported survivors.
    published: HashSet<u64>,
}

/// One step of the order-sensitive 64-bit lane fold behind [`verdict_key`]
/// (the same splitmix64 finalizer the term pool uses for structural hashes).
#[inline]
fn fold_step(mut h: u64, v: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(v);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Running state of the two independently-seeded key lanes.
#[derive(Clone, Copy)]
pub(crate) struct KeyLanes(u64, u64);

impl KeyLanes {
    /// Seeds chosen so the two lanes diverge immediately; any fixed,
    /// distinct pair works.
    pub(crate) fn new() -> KeyLanes {
        KeyLanes(0x6d65_6973_7361_2d61, 0x6d65_6973_7361_2d62)
    }

    pub(crate) fn fold(mut self, hashes: &[u64]) -> KeyLanes {
        for &h in hashes {
            self.0 = fold_step(self.0, h);
            self.1 = fold_step(self.1, !h);
        }
        self
    }

    pub(crate) fn key(self) -> u128 {
        (self.0 as u128) << 64 | self.1 as u128
    }
}

/// The 128-bit verdict-cache key for a constraint set given as per-conjunct
/// structural hashes: two independent order-sensitive lane folds,
/// concatenated. Same sequence → same key on any pool; distinct sequences
/// collide with probability ~2⁻¹²⁸.
pub(crate) fn verdict_key(hashes: &[u64]) -> u128 {
    KeyLanes::new().fold(hashes).key()
}

impl Default for SolveSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SolveSession {
    /// A fresh session: empty pool, fresh solver, zeroed statistics.
    pub fn new() -> Self {
        SolveSession {
            pool: TermPool::new(),
            backend: BackendRouter::new(default_backend()),
            exec: ExecStats::default(),
            retired: SolverStats::default(),
            retired_sat: SatStats::default(),
            checks_consumed: 0,
            verdict_cache: HashMap::new(),
            base_verdicts: None,
            exchange: None,
            exchange_wid: 0,
            exchange_cursor: 0,
            pending_import: Vec::new(),
            published: HashSet::new(),
        }
    }

    /// A worker session *forked* from a main pool: its pool starts as a
    /// clone, so every main-pool `TermId` below the fork point stays valid
    /// verbatim inside the worker — prefix constraints and value seeds need
    /// no translation on the way in, and
    /// [`meissa_smt::TermPool::import_from`] translates only worker-created
    /// terms on the way back. Solver and counters start fresh; the caller
    /// folds them back with [`SolveSession::merge_worker`] at join.
    pub fn fork_from(pool: &TermPool) -> Self {
        SolveSession {
            pool: pool.clone(),
            // A fresh router with a cold BDD engine: its memo tables key on
            // this worker's pool lineage, which forks here.
            backend: BackendRouter::new(default_backend()),
            exec: ExecStats::default(),
            retired: SolverStats::default(),
            retired_sat: SatStats::default(),
            checks_consumed: 0,
            // Workers start cold: cloning the main cache would mostly copy
            // entries for regions the worker never visits, and the merged
            // counters should reflect what each worker actually decided.
            // Drivers that *do* want inherited verdicts attach a read-only
            // snapshot via `base_verdicts` instead.
            verdict_cache: HashMap::new(),
            base_verdicts: None,
            exchange: None,
            exchange_wid: 0,
            exchange_cursor: 0,
            pending_import: Vec::new(),
            published: HashSet::new(),
        }
    }

    /// Attaches the cross-worker clause exchange; `wid` identifies this
    /// session so it never re-imports its own exports.
    pub(crate) fn attach_exchange(&mut self, exchange: Arc<ClauseExchange>, wid: usize) {
        self.exchange = Some(exchange);
        self.exchange_wid = wid;
        self.exchange_cursor = 0;
    }

    /// Publishes the live solver's short, portable learned clauses to the
    /// exchange (no-op without one). Called from every retire boundary and
    /// by drivers at worker exit, so siblings stop re-deriving conflicts
    /// this solver already paid for.
    pub(crate) fn share_learned(&mut self) {
        let Some(ex) = self.exchange.clone() else {
            return;
        };
        let mut exported = 0u64;
        for lits in self.solver().export_portable(MAX_SHARE_LITS) {
            let h = lits
                .iter()
                .fold(0x636c_6175_7365u64, |h, &(k, pol)| fold_step(h, k ^ pol as u64));
            if !self.published.insert(h) {
                continue;
            }
            if !ex.publish(self.exchange_wid, lits) {
                break; // exchange full — later boundaries need not retry
            }
            exported += 1;
        }
        if exported > 0 && obs::active() {
            obs_metrics().clauses_exported.add(exported);
        }
    }

    /// Imports clauses other workers published since the last call into the
    /// live solver (no-op without an exchange). Clauses mentioning atoms
    /// this solver has not blasted yet are parked and retried next time;
    /// imports are logical consequences of the shared constraint content,
    /// so verdicts — and with them every counter above the SAT engine —
    /// are unchanged.
    pub(crate) fn import_shared(&mut self) {
        let Some(ex) = self.exchange.clone() else {
            return;
        };
        let mut fresh = ex.read_new(self.exchange_wid, &mut self.exchange_cursor);
        if fresh.is_empty() && self.pending_import.is_empty() {
            return;
        }
        fresh.append(&mut self.pending_import);
        let (imported, deferred) = self.backend.solver_mut().import_portable(fresh);
        self.pending_import = deferred;
        if self.pending_import.len() > MAX_PENDING_IMPORTS {
            let excess = self.pending_import.len() - MAX_PENDING_IMPORTS;
            self.pending_import.drain(..excess);
        }
        if imported > 0 && obs::active() {
            obs_metrics().clauses_imported.add(imported as u64);
        }
    }

    /// Takes the verdicts this session decided itself, leaving the local
    /// cache empty. With a `base_verdicts` snapshot attached these are
    /// exactly the *new* discoveries — what a batched driver merges back
    /// into the parent cache in deterministic job order.
    pub(crate) fn take_discoveries(&mut self) -> HashMap<u128, bool> {
        std::mem::take(&mut self.verdict_cache)
    }

    /// Replaces the incremental solver with a fresh one, retiring its
    /// counters into the session totals. Frames and learned clauses from
    /// thousands of probes would otherwise accumulate and slow unit
    /// propagation more than re-blasting costs — which is why each
    /// top-level exploration starts from a fresh solver.
    pub fn reset_solver(&mut self) {
        // A retiring solver's learned clauses are about to be dropped —
        // last chance to publish them for siblings.
        self.share_learned();
        let old = std::mem::replace(self.backend.solver_mut(), Solver::new());
        if obs::trace_on() {
            obs::event(
                "session.solver_retire",
                &[
                    ("checks", old.stats.checks),
                    ("learned", old.sat_stats().learned),
                ],
            );
        }
        self.retired = add_solver_stats(self.retired, old.stats);
        self.retired_sat = add_sat_stats(self.retired_sat, old.sat_stats());
        self.checks_consumed = 0;
    }

    /// The live incremental SMT solver behind the router (frame management
    /// and counter reads; probing goes through the router).
    pub(crate) fn solver(&self) -> &Solver {
        self.backend.solver()
    }

    /// Cumulative solver counters: every retired solver plus the live one.
    pub fn solver_stats(&self) -> SolverStats {
        add_solver_stats(self.retired, self.solver().stats)
    }

    /// Cumulative SAT-engine counters: every retired solver's engine plus
    /// the live one's.
    pub fn sat_stats(&self) -> SatStats {
        add_sat_stats(self.retired_sat, self.solver().sat_stats())
    }

    /// Live-solver checks not yet attributed to a per-exploration stats
    /// delta; marks them consumed.
    pub(crate) fn take_new_checks(&mut self) -> u64 {
        let delta = self.solver().stats.checks - self.checks_consumed;
        self.checks_consumed = self.solver().stats.checks;
        delta
    }

    /// Probes every sibling arm of a branch point in one batched backend
    /// interaction: per arm the verdict cache is consulted first (keyed on
    /// the content hash of `prefix ++ arm`, so verdicts survive across
    /// explorations and pools), the misses go to the backend router as one
    /// batch — the BDD engine when the whole query is match-field-only,
    /// otherwise [`meissa_smt::Solver::check_under`] as one assumption
    /// batch over the solver's current frame stack — and fresh verdicts
    /// are fed back into the cache. The solver's live frames must assert
    /// exactly `prefix`.
    ///
    /// Every arm counts one check (cache hit, BDD answer, or SAT run
    /// alike), keeping the Fig. 11b metric identical to individual
    /// `push/assert/check/pop` probing.
    pub fn probe_arms(&mut self, prefix: &[TermId], arms: &[TermId]) -> Vec<Verdict> {
        let prefix_hashes: Vec<u64> = prefix.iter().map(|&c| self.pool.term_hash(c)).collect();
        let arm_hashes: Vec<Vec<u64>> = arms
            .iter()
            .map(|&a| {
                // Key at conjunct granularity, sorted — the same shape the
                // walker uses, so verdicts flow both ways through the cache.
                let mut cs = Vec::new();
                crate::exec::flatten_conjuncts(&self.pool, a, &mut cs);
                let mut hs: Vec<u64> = cs.iter().map(|&c| self.pool.term_hash(c)).collect();
                hs.sort_unstable();
                hs
            })
            .collect();
        let mut exec = ExecStats::default();
        let verdicts = probe_arms_cached(
            &mut self.pool,
            &mut self.backend,
            &mut self.verdict_cache,
            self.base_verdicts.as_deref(),
            &mut exec,
            &prefix_hashes,
            prefix,
            arms,
            &arm_hashes,
        );
        exec.smt_checks += self.take_new_checks();
        self.record(&exec);
        verdicts
            .into_iter()
            .map(|unsat| if unsat { Verdict::Unsat } else { Verdict::Sat })
            .collect()
    }

    /// Folds one exploration's per-call counters into the session totals.
    pub(crate) fn record(&mut self, delta: &ExecStats) {
        self.exec.paths_explored += delta.paths_explored;
        self.exec.valid_paths += delta.valid_paths;
        self.exec.pruned += delta.pruned;
        self.exec.smt_checks += delta.smt_checks;
        self.exec.cache_probes += delta.cache_probes;
        self.exec.cache_hits += delta.cache_hits;
        self.exec.batched_probes += delta.batched_probes;
        self.exec.arm_batches += delta.arm_batches;
        self.exec.backend_routed_smt += delta.backend_routed_smt;
        self.exec.backend_routed_bdd += delta.backend_routed_bdd;
        self.exec.bdd_probes += delta.bdd_probes;
        self.exec.bdd_nodes += delta.bdd_nodes;
        self.exec.elapsed += delta.elapsed;
        self.exec.timed_out |= delta.timed_out;
    }

    /// Merges a parallel worker's cumulative counters into this session at
    /// join: execution tallies sum (and `timed_out` ORs) into
    /// [`SolveSession::exec`], solver counters fold into the retired totals
    /// so [`SolveSession::solver_stats`] covers every worker's solver.
    /// Merging N workers that together did a sequential run's work yields
    /// that run's counters: every field is a sum except `depth` (a gauge of
    /// the *live* solver, meaningless for a joined worker and dropped) and
    /// `max_depth` (a peak, merged via max).
    pub fn merge_worker(&mut self, exec: &ExecStats, solver: &SolverStats, sat: &SatStats) {
        self.record(exec);
        let dead = SolverStats {
            depth: 0, // joined workers hold no live frames
            ..*solver
        };
        self.retired = add_solver_stats(self.retired, dead);
        let dead_sat = SatStats {
            learned: 0, // a joined worker's clause store is gone
            ..*sat
        };
        self.retired_sat = add_sat_stats(self.retired_sat, dead_sat);
    }

    /// Consumes the session, yielding the pool (for [`crate::RunOutput`],
    /// whose templates' constraints live in it).
    pub fn into_pool(self) -> TermPool {
        self.pool
    }
}

/// The cache-then-batch probe shared by [`SolveSession::probe_arms`] and the
/// walker's branch expansion (which holds the session's pool, router, and
/// cache as separate borrows). Per arm: one `cache_probes`; a hit answers
/// from the cache (one `cache_hits`, one `smt_checks` — cached validity
/// check); the misses go to the backend router as one atomic batch — the
/// BDD engine when `ctx_terms` and every miss arm are match-field-only,
/// otherwise one [`meissa_smt::Solver::check_under`] call whose per-arm
/// `checks` the caller attributes via `take_new_checks` — and their
/// verdicts are fed back into the cache. `prefix_hashes` are the context's
/// per-conjunct content hashes in assertion order; `ctx_terms` the same
/// context as terms (what the live frames assert). Returns `unsat?` per
/// arm, in order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_arms_cached(
    pool: &mut TermPool,
    backend: &mut BackendRouter,
    cache: &mut HashMap<u128, bool>,
    base: Option<&HashMap<u128, bool>>,
    exec: &mut ExecStats,
    prefix_hashes: &[u64],
    ctx_terms: &[TermId],
    arms: &[TermId],
    arm_hashes: &[Vec<u64>],
) -> Vec<bool> {
    debug_assert_eq!(arms.len(), arm_hashes.len());
    let obs_on = obs::active();
    if arms.len() >= 2 {
        exec.arm_batches += 1;
        exec.batched_probes += arms.len() as u64;
        if obs_on {
            obs_metrics().arm_batch.record(arms.len() as u64);
        }
    }
    let prefix_lanes = KeyLanes::new().fold(prefix_hashes);
    let mut verdicts: Vec<Option<bool>> = Vec::with_capacity(arms.len());
    let mut miss_terms: Vec<TermId> = Vec::new();
    let mut miss_keys: Vec<u128> = Vec::new();
    for (i, &arm) in arms.iter().enumerate() {
        exec.cache_probes += 1;
        let key = prefix_lanes.fold(&arm_hashes[i]).key();
        if let Some(&unsat) = cache
            .get(&key)
            .or_else(|| base.and_then(|b| b.get(&key)))
        {
            // A base-snapshot hit counts exactly like a local one but is
            // not copied down: `cache` stays "what this session decided".
            exec.cache_hits += 1;
            exec.smt_checks += 1; // cached validity check
            verdicts.push(Some(unsat));
        } else {
            verdicts.push(None);
            miss_terms.push(arm);
            miss_keys.push(key);
        }
    }
    if obs_on {
        let m = obs_metrics();
        m.cache_probes.add(arms.len() as u64);
        m.cache_hits.add((arms.len() - miss_terms.len()) as u64);
    }
    let solved = backend.check_arm_batch(pool, &[ctx_terms], &miss_terms, exec);
    let mut solved_it = solved.into_iter().zip(miss_keys);
    verdicts
        .into_iter()
        .map(|v| match v {
            Some(unsat) => unsat,
            None => {
                let (sat, key) = solved_it.next().expect("one verdict per miss");
                let unsat = !sat;
                cache.insert(key, unsat);
                unsat
            }
        })
        .collect()
}

/// `SolverStats` has no `Add` impl upstream; the session sums every counter
/// except `depth`, which is a gauge (the retired solver's depth is dead, the
/// live one's is current), and `max_depth`, a peak merged via max.
pub fn add_solver_stats(a: SolverStats, b: SolverStats) -> SolverStats {
    SolverStats {
        checks: a.checks + b.checks,
        fast_path: a.fast_path + b.fast_path,
        sat_engine_calls: a.sat_engine_calls + b.sat_engine_calls,
        model_reuse: a.model_reuse + b.model_reuse,
        sat: a.sat + b.sat,
        unsat: a.unsat + b.unsat,
        depth: b.depth,
        max_depth: a.max_depth.max(b.max_depth),
    }
}

/// Sums SAT-engine tallies; `learned` is a gauge (clauses *currently*
/// retained), so the live side's value wins — mirroring how
/// [`add_solver_stats`] treats `depth`.
pub fn add_sat_stats(a: SatStats, b: SatStats) -> SatStats {
    SatStats {
        solves: a.solves + b.solves,
        conflicts: a.conflicts + b.conflicts,
        decisions: a.decisions + b.decisions,
        propagations: a.propagations + b.propagations,
        restarts: a.restarts + b.restarts,
        learned: b.learned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_retires_counters() {
        let mut s = SolveSession::new();
        let t = s.pool.bool_const(true);
        s.backend.smt.solver.push();
        s.backend.smt.solver.assert_term(&mut s.pool, t);
        s.backend.smt.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 1);
        s.reset_solver();
        assert_eq!(s.solver_stats().checks, 1, "retired checks survive reset");
        assert_eq!(s.take_new_checks(), 0, "fresh solver has no new checks");
        s.backend.smt.solver.push();
        s.backend.smt.solver.assert_term(&mut s.pool, t);
        s.backend.smt.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 2);
        assert_eq!(s.take_new_checks(), 1);
    }

    #[test]
    fn merging_workers_equals_sequential_counters() {
        // A sequential run whose work was split across 3 workers must
        // reconstruct the same counters at join: tallies sum, peaks max.
        let worker_exec = [
            ExecStats {
                paths_explored: 4,
                valid_paths: 2,
                pruned: 1,
                smt_checks: 9,
                cache_probes: 6,
                cache_hits: 2,
                batched_probes: 4,
                arm_batches: 2,
                backend_routed_smt: 2,
                backend_routed_bdd: 1,
                bdd_probes: 2,
                bdd_nodes: 10,
                elapsed: std::time::Duration::from_millis(5),
                timed_out: false,
            },
            ExecStats {
                paths_explored: 3,
                valid_paths: 3,
                pruned: 0,
                smt_checks: 7,
                cache_probes: 4,
                cache_hits: 0,
                batched_probes: 2,
                arm_batches: 1,
                backend_routed_smt: 1,
                backend_routed_bdd: 2,
                bdd_probes: 3,
                bdd_nodes: 20,
                elapsed: std::time::Duration::from_millis(4),
                timed_out: false,
            },
            ExecStats {
                paths_explored: 1,
                valid_paths: 0,
                pruned: 2,
                smt_checks: 5,
                cache_probes: 3,
                cache_hits: 1,
                batched_probes: 0,
                arm_batches: 0,
                backend_routed_smt: 0,
                backend_routed_bdd: 0,
                bdd_probes: 0,
                bdd_nodes: 0,
                elapsed: std::time::Duration::from_millis(1),
                timed_out: false,
            },
        ];
        let worker_solver = [
            SolverStats {
                checks: 9,
                fast_path: 4,
                sat_engine_calls: 5,
                model_reuse: 1,
                sat: 6,
                unsat: 3,
                depth: 3,
                max_depth: 7,
            },
            SolverStats {
                checks: 7,
                fast_path: 2,
                sat_engine_calls: 5,
                model_reuse: 0,
                sat: 5,
                unsat: 2,
                depth: 1,
                max_depth: 11,
            },
            SolverStats {
                checks: 5,
                fast_path: 5,
                sat_engine_calls: 0,
                model_reuse: 1,
                sat: 1,
                unsat: 4,
                depth: 2,
                max_depth: 4,
            },
        ];
        let worker_sat = [
            SatStats { solves: 5, conflicts: 2, decisions: 9, propagations: 40, restarts: 1, learned: 3 },
            SatStats { solves: 5, conflicts: 1, decisions: 7, propagations: 30, restarts: 0, learned: 2 },
            SatStats { solves: 0, conflicts: 0, decisions: 0, propagations: 0, restarts: 0, learned: 0 },
        ];
        let mut main = SolveSession::new();
        for ((e, s), sat) in worker_exec.iter().zip(&worker_solver).zip(&worker_sat) {
            main.merge_worker(e, s, sat);
        }
        // Execution tallies: sums of the per-worker deltas.
        assert_eq!(main.exec.paths_explored, 8);
        assert_eq!(main.exec.valid_paths, 5);
        assert_eq!(main.exec.pruned, 3);
        assert_eq!(main.exec.smt_checks, 21);
        assert_eq!(main.exec.cache_probes, 13);
        assert_eq!(main.exec.cache_hits, 3);
        assert_eq!(main.exec.batched_probes, 6);
        assert_eq!(main.exec.arm_batches, 3);
        assert_eq!(main.exec.backend_routed_smt, 3);
        assert_eq!(main.exec.backend_routed_bdd, 3);
        assert_eq!(main.exec.bdd_probes, 5);
        assert_eq!(main.exec.bdd_nodes, 30);
        assert!(!main.exec.timed_out);
        // Solver tallies: sums; peak depth via max; live depth is the main
        // session's own (0 — joined workers hold no frames here).
        let s = main.solver_stats();
        assert_eq!(s.checks, 21);
        assert_eq!(s.fast_path, 11);
        assert_eq!(s.sat_engine_calls, 10);
        assert_eq!(s.model_reuse, 2);
        assert_eq!(s.sat, 12);
        assert_eq!(s.unsat, 9);
        assert_eq!(s.max_depth, 11, "peak depth merges via max");
        assert_eq!(s.depth, 0, "worker live depth is not carried over");
        let sat = main.sat_stats();
        assert_eq!(sat.solves, 10);
        assert_eq!(sat.propagations, 70);
        assert_eq!(sat.learned, 0, "worker clause stores are not carried over");
    }

    #[test]
    fn merge_worker_propagates_timeout() {
        let mut main = SolveSession::new();
        let mut e = ExecStats::default();
        main.merge_worker(&e, &SolverStats::default(), &SatStats::default());
        assert!(!main.exec.timed_out);
        e.timed_out = true;
        main.merge_worker(&e, &SolverStats::default(), &SatStats::default());
        assert!(main.exec.timed_out, "one timed-out worker flags the run");
    }

    #[test]
    fn merge_worker_composes_with_own_explorations() {
        // Counters a session accumulated itself and counters absorbed from
        // workers land in the same totals.
        let mut s = SolveSession::new();
        let t = s.pool.bool_const(true);
        s.backend.smt.solver.push();
        s.backend.smt.solver.assert_term(&mut s.pool, t);
        s.backend.smt.solver.check(&mut s.pool);
        let own_checks = s.solver_stats().checks;
        s.merge_worker(
            &ExecStats {
                smt_checks: 3,
                ..ExecStats::default()
            },
            &SolverStats {
                checks: 3,
                max_depth: 2,
                ..SolverStats::default()
            },
            &SatStats::default(),
        );
        assert_eq!(s.solver_stats().checks, own_checks + 3);
        assert_eq!(s.exec.smt_checks, 3);
    }

    #[test]
    fn record_accumulates() {
        let mut s = SolveSession::new();
        let d = ExecStats {
            paths_explored: 3,
            valid_paths: 2,
            pruned: 1,
            smt_checks: 5,
            cache_probes: 4,
            cache_hits: 2,
            batched_probes: 3,
            arm_batches: 1,
            backend_routed_smt: 2,
            backend_routed_bdd: 1,
            bdd_probes: 2,
            bdd_nodes: 7,
            elapsed: std::time::Duration::from_millis(2),
            timed_out: false,
        };
        s.record(&d);
        s.record(&d);
        assert_eq!(s.exec.paths_explored, 6);
        assert_eq!(s.exec.smt_checks, 10);
        assert_eq!(s.exec.cache_probes, 8);
        assert_eq!(s.exec.cache_hits, 4);
        assert_eq!(s.exec.backend_routed_smt, 4);
        assert_eq!(s.exec.backend_routed_bdd, 2);
        assert_eq!(s.exec.bdd_probes, 4);
        assert_eq!(s.exec.bdd_nodes, 14);
        assert!(!s.exec.timed_out);
    }
}
