//! The unified solve session threaded through the engine layers.
//!
//! Historically `engine` → `summary` → `exec` passed a `&mut TermPool`, a
//! `Solver`, and loose stat counters as separate parameters at every level.
//! [`SolveSession`] bundles them: one term pool, one current incremental
//! solver, and cumulative statistics across every exploration the session
//! ran. Besides removing the parameter threading, the bundle is the unit a
//! future parallel DFS hands to each worker — a worker owns one session,
//! and merging workers is merging their cumulative stats.

use crate::exec::ExecStats;
use meissa_smt::{Solver, SolverStats, TermPool};
use std::collections::HashMap;

/// One solving context: term pool + current incremental solver + cumulative
/// statistics. All engine-layer entry points ([`crate::exec::explore_multi`],
/// [`crate::exec::generate_templates`], [`crate::summary::summarize`]) take
/// `&mut SolveSession` instead of loose `(pool, solver, stats)` triples.
pub struct SolveSession {
    /// The term pool every constraint of this session lives in.
    pub pool: TermPool,
    /// The current incremental solver. Private: explorations manage frames
    /// and check accounting through it, and [`SolveSession::reset_solver`]
    /// replaces it wholesale.
    pub(crate) solver: Solver,
    /// Cumulative execution counters across every exploration this session
    /// ran (each call also returns its own per-call [`ExecStats`] delta).
    pub exec: ExecStats,
    /// Solver counters retired by [`SolveSession::reset_solver`]; added to
    /// the live solver's counters by [`SolveSession::solver_stats`].
    retired: SolverStats,
    /// Live-solver checks already attributed to some exploration's
    /// per-call stats (the incremental-check delta accounting previously
    /// kept by the `Explorer`).
    pub(crate) checks_consumed: u64,
    /// `(canonical constraint set) → unsat?` verdicts from early-termination
    /// probes. Satisfiability is context-free in the constraint set, so the
    /// cache is sound across explorations, CFGs, and solver resets within
    /// one session; a parallel worker re-exploring a familiar region after
    /// a donation skips already-decided sibling arms. Keys render through
    /// [`meissa_smt::TermPool::canonical_key`], so they are pool-independent.
    pub(crate) verdict_cache: HashMap<String, bool>,
}

impl Default for SolveSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SolveSession {
    /// A fresh session: empty pool, fresh solver, zeroed statistics.
    pub fn new() -> Self {
        SolveSession {
            pool: TermPool::new(),
            solver: Solver::new(),
            exec: ExecStats::default(),
            retired: SolverStats::default(),
            checks_consumed: 0,
            verdict_cache: HashMap::new(),
        }
    }

    /// A worker session *forked* from a main pool: its pool starts as a
    /// clone, so every main-pool `TermId` below the fork point stays valid
    /// verbatim inside the worker — prefix constraints and value seeds need
    /// no translation on the way in, and
    /// [`meissa_smt::TermPool::import_from`] translates only worker-created
    /// terms on the way back. Solver and counters start fresh; the caller
    /// folds them back with [`SolveSession::merge_worker`] at join.
    pub fn fork_from(pool: &TermPool) -> Self {
        SolveSession {
            pool: pool.clone(),
            solver: Solver::new(),
            exec: ExecStats::default(),
            retired: SolverStats::default(),
            checks_consumed: 0,
            // Workers start cold: cloning the main cache would mostly copy
            // entries for regions the worker never visits, and the merged
            // counters should reflect what each worker actually decided.
            verdict_cache: HashMap::new(),
        }
    }

    /// Replaces the incremental solver with a fresh one, retiring its
    /// counters into the session totals. Frames and learned clauses from
    /// thousands of probes would otherwise accumulate and slow unit
    /// propagation more than re-blasting costs — which is why each
    /// top-level exploration starts from a fresh solver.
    pub fn reset_solver(&mut self) {
        let old = std::mem::replace(&mut self.solver, Solver::new());
        self.retired = add_solver_stats(self.retired, old.stats);
        self.checks_consumed = 0;
    }

    /// Cumulative solver counters: every retired solver plus the live one.
    pub fn solver_stats(&self) -> SolverStats {
        add_solver_stats(self.retired, self.solver.stats)
    }

    /// Live-solver checks not yet attributed to a per-exploration stats
    /// delta; marks them consumed.
    pub(crate) fn take_new_checks(&mut self) -> u64 {
        let delta = self.solver.stats.checks - self.checks_consumed;
        self.checks_consumed = self.solver.stats.checks;
        delta
    }

    /// Folds one exploration's per-call counters into the session totals.
    pub(crate) fn record(&mut self, delta: &ExecStats) {
        self.exec.paths_explored += delta.paths_explored;
        self.exec.valid_paths += delta.valid_paths;
        self.exec.pruned += delta.pruned;
        self.exec.smt_checks += delta.smt_checks;
        self.exec.cache_probes += delta.cache_probes;
        self.exec.cache_hits += delta.cache_hits;
        self.exec.elapsed += delta.elapsed;
        self.exec.timed_out |= delta.timed_out;
    }

    /// Merges a parallel worker's cumulative counters into this session at
    /// join: execution tallies sum (and `timed_out` ORs) into
    /// [`SolveSession::exec`], solver counters fold into the retired totals
    /// so [`SolveSession::solver_stats`] covers every worker's solver.
    /// Merging N workers that together did a sequential run's work yields
    /// that run's counters: every field is a sum except `depth` (a gauge of
    /// the *live* solver, meaningless for a joined worker and dropped) and
    /// `max_depth` (a peak, merged via max).
    pub fn merge_worker(&mut self, exec: &ExecStats, solver: &SolverStats) {
        self.record(exec);
        let dead = SolverStats {
            depth: 0, // joined workers hold no live frames
            ..*solver
        };
        self.retired = add_solver_stats(self.retired, dead);
    }

    /// Consumes the session, yielding the pool (for [`crate::RunOutput`],
    /// whose templates' constraints live in it).
    pub fn into_pool(self) -> TermPool {
        self.pool
    }
}

/// `SolverStats` has no `Add` impl upstream; the session sums every counter
/// except `depth`, which is a gauge (the retired solver's depth is dead, the
/// live one's is current), and `max_depth`, a peak merged via max.
pub fn add_solver_stats(a: SolverStats, b: SolverStats) -> SolverStats {
    SolverStats {
        checks: a.checks + b.checks,
        fast_path: a.fast_path + b.fast_path,
        sat_engine_calls: a.sat_engine_calls + b.sat_engine_calls,
        sat: a.sat + b.sat,
        unsat: a.unsat + b.unsat,
        depth: b.depth,
        max_depth: a.max_depth.max(b.max_depth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_retires_counters() {
        let mut s = SolveSession::new();
        let t = s.pool.bool_const(true);
        s.solver.push();
        s.solver.assert_term(&mut s.pool, t);
        s.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 1);
        s.reset_solver();
        assert_eq!(s.solver_stats().checks, 1, "retired checks survive reset");
        assert_eq!(s.take_new_checks(), 0, "fresh solver has no new checks");
        s.solver.push();
        s.solver.assert_term(&mut s.pool, t);
        s.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 2);
        assert_eq!(s.take_new_checks(), 1);
    }

    #[test]
    fn merging_workers_equals_sequential_counters() {
        // A sequential run whose work was split across 3 workers must
        // reconstruct the same counters at join: tallies sum, peaks max.
        let worker_exec = [
            ExecStats {
                paths_explored: 4,
                valid_paths: 2,
                pruned: 1,
                smt_checks: 9,
                cache_probes: 6,
                cache_hits: 2,
                elapsed: std::time::Duration::from_millis(5),
                timed_out: false,
            },
            ExecStats {
                paths_explored: 3,
                valid_paths: 3,
                pruned: 0,
                smt_checks: 7,
                cache_probes: 4,
                cache_hits: 0,
                elapsed: std::time::Duration::from_millis(4),
                timed_out: false,
            },
            ExecStats {
                paths_explored: 1,
                valid_paths: 0,
                pruned: 2,
                smt_checks: 5,
                cache_probes: 3,
                cache_hits: 1,
                elapsed: std::time::Duration::from_millis(1),
                timed_out: false,
            },
        ];
        let worker_solver = [
            SolverStats {
                checks: 9,
                fast_path: 4,
                sat_engine_calls: 5,
                sat: 6,
                unsat: 3,
                depth: 3,
                max_depth: 7,
            },
            SolverStats {
                checks: 7,
                fast_path: 2,
                sat_engine_calls: 5,
                sat: 5,
                unsat: 2,
                depth: 1,
                max_depth: 11,
            },
            SolverStats {
                checks: 5,
                fast_path: 5,
                sat_engine_calls: 0,
                sat: 1,
                unsat: 4,
                depth: 2,
                max_depth: 4,
            },
        ];
        let mut main = SolveSession::new();
        for (e, s) in worker_exec.iter().zip(&worker_solver) {
            main.merge_worker(e, s);
        }
        // Execution tallies: sums of the per-worker deltas.
        assert_eq!(main.exec.paths_explored, 8);
        assert_eq!(main.exec.valid_paths, 5);
        assert_eq!(main.exec.pruned, 3);
        assert_eq!(main.exec.smt_checks, 21);
        assert_eq!(main.exec.cache_probes, 13);
        assert_eq!(main.exec.cache_hits, 3);
        assert!(!main.exec.timed_out);
        // Solver tallies: sums; peak depth via max; live depth is the main
        // session's own (0 — joined workers hold no frames here).
        let s = main.solver_stats();
        assert_eq!(s.checks, 21);
        assert_eq!(s.fast_path, 11);
        assert_eq!(s.sat_engine_calls, 10);
        assert_eq!(s.sat, 12);
        assert_eq!(s.unsat, 9);
        assert_eq!(s.max_depth, 11, "peak depth merges via max");
        assert_eq!(s.depth, 0, "worker live depth is not carried over");
    }

    #[test]
    fn merge_worker_propagates_timeout() {
        let mut main = SolveSession::new();
        let mut e = ExecStats::default();
        main.merge_worker(&e, &SolverStats::default());
        assert!(!main.exec.timed_out);
        e.timed_out = true;
        main.merge_worker(&e, &SolverStats::default());
        assert!(main.exec.timed_out, "one timed-out worker flags the run");
    }

    #[test]
    fn merge_worker_composes_with_own_explorations() {
        // Counters a session accumulated itself and counters absorbed from
        // workers land in the same totals.
        let mut s = SolveSession::new();
        let t = s.pool.bool_const(true);
        s.solver.push();
        s.solver.assert_term(&mut s.pool, t);
        s.solver.check(&mut s.pool);
        let own_checks = s.solver_stats().checks;
        s.merge_worker(
            &ExecStats {
                smt_checks: 3,
                ..ExecStats::default()
            },
            &SolverStats {
                checks: 3,
                max_depth: 2,
                ..SolverStats::default()
            },
        );
        assert_eq!(s.solver_stats().checks, own_checks + 3);
        assert_eq!(s.exec.smt_checks, 3);
    }

    #[test]
    fn record_accumulates() {
        let mut s = SolveSession::new();
        let d = ExecStats {
            paths_explored: 3,
            valid_paths: 2,
            pruned: 1,
            smt_checks: 5,
            cache_probes: 4,
            cache_hits: 2,
            elapsed: std::time::Duration::from_millis(2),
            timed_out: false,
        };
        s.record(&d);
        s.record(&d);
        assert_eq!(s.exec.paths_explored, 6);
        assert_eq!(s.exec.smt_checks, 10);
        assert_eq!(s.exec.cache_probes, 8);
        assert_eq!(s.exec.cache_hits, 4);
        assert!(!s.exec.timed_out);
    }
}
