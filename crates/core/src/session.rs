//! The unified solve session threaded through the engine layers.
//!
//! Historically `engine` → `summary` → `exec` passed a `&mut TermPool`, a
//! `Solver`, and loose stat counters as separate parameters at every level.
//! [`SolveSession`] bundles them: one term pool, one current incremental
//! solver, and cumulative statistics across every exploration the session
//! ran. Besides removing the parameter threading, the bundle is the unit a
//! future parallel DFS hands to each worker — a worker owns one session,
//! and merging workers is merging their cumulative stats.

use crate::exec::ExecStats;
use meissa_smt::{Solver, SolverStats, TermPool};

/// One solving context: term pool + current incremental solver + cumulative
/// statistics. All engine-layer entry points ([`crate::exec::explore_multi`],
/// [`crate::exec::generate_templates`], [`crate::summary::summarize`]) take
/// `&mut SolveSession` instead of loose `(pool, solver, stats)` triples.
pub struct SolveSession {
    /// The term pool every constraint of this session lives in.
    pub pool: TermPool,
    /// The current incremental solver. Private: explorations manage frames
    /// and check accounting through it, and [`SolveSession::reset_solver`]
    /// replaces it wholesale.
    pub(crate) solver: Solver,
    /// Cumulative execution counters across every exploration this session
    /// ran (each call also returns its own per-call [`ExecStats`] delta).
    pub exec: ExecStats,
    /// Solver counters retired by [`SolveSession::reset_solver`]; added to
    /// the live solver's counters by [`SolveSession::solver_stats`].
    retired: SolverStats,
    /// Live-solver checks already attributed to some exploration's
    /// per-call stats (the incremental-check delta accounting previously
    /// kept by the `Explorer`).
    pub(crate) checks_consumed: u64,
}

impl Default for SolveSession {
    fn default() -> Self {
        Self::new()
    }
}

impl SolveSession {
    /// A fresh session: empty pool, fresh solver, zeroed statistics.
    pub fn new() -> Self {
        SolveSession {
            pool: TermPool::new(),
            solver: Solver::new(),
            exec: ExecStats::default(),
            retired: SolverStats::default(),
            checks_consumed: 0,
        }
    }

    /// Replaces the incremental solver with a fresh one, retiring its
    /// counters into the session totals. Frames and learned clauses from
    /// thousands of probes would otherwise accumulate and slow unit
    /// propagation more than re-blasting costs — which is why each
    /// top-level exploration starts from a fresh solver.
    pub fn reset_solver(&mut self) {
        let old = std::mem::replace(&mut self.solver, Solver::new());
        self.retired = add_solver_stats(self.retired, old.stats);
        self.checks_consumed = 0;
    }

    /// Cumulative solver counters: every retired solver plus the live one.
    pub fn solver_stats(&self) -> SolverStats {
        add_solver_stats(self.retired, self.solver.stats)
    }

    /// Live-solver checks not yet attributed to a per-exploration stats
    /// delta; marks them consumed.
    pub(crate) fn take_new_checks(&mut self) -> u64 {
        let delta = self.solver.stats.checks - self.checks_consumed;
        self.checks_consumed = self.solver.stats.checks;
        delta
    }

    /// Folds one exploration's per-call counters into the session totals.
    pub(crate) fn record(&mut self, delta: &ExecStats) {
        self.exec.paths_explored += delta.paths_explored;
        self.exec.valid_paths += delta.valid_paths;
        self.exec.pruned += delta.pruned;
        self.exec.smt_checks += delta.smt_checks;
        self.exec.elapsed += delta.elapsed;
        self.exec.timed_out |= delta.timed_out;
    }

    /// Consumes the session, yielding the pool (for [`crate::RunOutput`],
    /// whose templates' constraints live in it).
    pub fn into_pool(self) -> TermPool {
        self.pool
    }
}

/// `SolverStats` has no `Add` impl upstream; the session sums every counter
/// except `depth`, which is a gauge (the retired solver's depth is dead, the
/// live one's is current).
fn add_solver_stats(a: SolverStats, b: SolverStats) -> SolverStats {
    SolverStats {
        checks: a.checks + b.checks,
        fast_path: a.fast_path + b.fast_path,
        sat_engine_calls: a.sat_engine_calls + b.sat_engine_calls,
        sat: a.sat + b.sat,
        unsat: a.unsat + b.unsat,
        depth: b.depth,
        max_depth: a.max_depth.max(b.max_depth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_retires_counters() {
        let mut s = SolveSession::new();
        let t = s.pool.bool_const(true);
        s.solver.push();
        s.solver.assert_term(&mut s.pool, t);
        s.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 1);
        s.reset_solver();
        assert_eq!(s.solver_stats().checks, 1, "retired checks survive reset");
        assert_eq!(s.take_new_checks(), 0, "fresh solver has no new checks");
        s.solver.push();
        s.solver.assert_term(&mut s.pool, t);
        s.solver.check(&mut s.pool);
        assert_eq!(s.solver_stats().checks, 2);
        assert_eq!(s.take_new_checks(), 1);
    }

    #[test]
    fn record_accumulates() {
        let mut s = SolveSession::new();
        let d = ExecStats {
            paths_explored: 3,
            valid_paths: 2,
            pruned: 1,
            smt_checks: 5,
            elapsed: std::time::Duration::from_millis(2),
            timed_out: false,
        };
        s.record(&d);
        s.record(&d);
        assert_eq!(s.exec.paths_explored, 6);
        assert_eq!(s.exec.smt_checks, 10);
        assert!(!s.exec.timed_out);
    }
}
