//! Stateful multi-packet test generation: k-packet sequence templates.
//!
//! The single-packet engine inherits §4's stateless register model: every
//! `REG:name-POS:idx` cell is a free symbolic input, so behaviours that
//! depend on what an *earlier* packet stored are invisible. This module
//! closes that gap for bounded sequences. [`Meissa::run_sequences`] unrolls
//! the program CFG `k` times ([`meissa_ir::unroll`]) — non-register fields
//! renamed `pkt{i}.…` per copy, register fields *shared* — and runs the
//! ordinary template generator on the concatenated graph. Because symbolic
//! execution walks one path through all `k` copies with a single value
//! environment, a register write in copy `i−1` shadows the register's input
//! variable for copy `i`'s reads: packet *i*'s behaviour is constrained by
//! packet *i−1*'s writes with no extra encoding.
//!
//! Each valid unrolled path becomes a [`SequenceTemplate`]: the underlying
//! [`TestTemplate`] holds the *inter-packet* constraint conjunction and the
//! final symbolic state, and `packet_paths` records the per-packet slice of
//! the covered path in original-CFG node ids. Instantiation yields a
//! [`SequenceCase`] — one concrete input state per packet (over the
//! original program's fields) plus the initial register values the sequence
//! assumes, which is empty under zero-init (the default: a freshly booted
//! target already satisfies it) and carries the solver's chosen pre-state
//! under `symbolic_init`.
//!
//! `k = 1` does not approximate the single-packet engine — it *is* the
//! single-packet engine: `run_sequences` delegates to the exact
//! [`Meissa::run`] flow (summary included) and wraps each template 1:1, so
//! templates and [`RunStats`] are byte-identical to a plain `run`.

use crate::engine::{Meissa, RunStats};
use crate::exec::generate_templates;
use crate::session::SolveSession;
use crate::template::TestTemplate;
use meissa_ir::{
    count_paths, is_register_field, unroll, Cfg, ConcreteState, FieldId, FieldTable,
    InitialState, NodeId,
};
use meissa_lang::CompiledProgram;
use meissa_num::Bv;
use meissa_smt::TermPool;
use meissa_testkit::obs;
use std::collections::HashMap;
use std::time::Instant;

/// A test case template for one valid k-packet sequence.
#[derive(Clone, Debug)]
pub struct SequenceTemplate {
    /// Sequential template id.
    pub id: usize,
    /// Sequence length.
    pub k: usize,
    /// Per-packet slices of the covered path, as *original-CFG* node ids
    /// (`packet_paths[i]` is the path packet `i` drives). Zero-init chain
    /// nodes belong to no packet and are omitted.
    pub packet_paths: Vec<Vec<NodeId>>,
    /// The underlying template over the unrolled CFG: `constraints` is the
    /// inter-packet path condition (over `pkt{i}.…` input variables and the
    /// shared register state), `final_values` the expected symbolic outputs
    /// of every copy.
    pub template: TestTemplate,
}

/// A concrete, ordered test case instantiated from a [`SequenceTemplate`].
#[derive(Clone, Debug)]
pub struct SequenceCase {
    /// One input state per packet, over the *original* program's fields.
    /// Register fields are deliberately absent: the target threads register
    /// state across the sequence itself.
    pub packets: Vec<ConcreteState>,
    /// Register values the sequence assumes *before* packet 0, over the
    /// original program's fields. Empty under zero-init; under
    /// `symbolic_init` a driver must seed these into the target before
    /// injecting.
    pub initial_registers: ConcreteState,
}

/// The output of a stateful engine run.
pub struct StatefulRunOutput {
    /// Term pool the sequence constraints live in.
    pub pool: TermPool,
    /// The graph template generation actually ran on: the k-unrolled CFG,
    /// or (for `k = 1`) whatever [`Meissa::run`] produced.
    pub cfg: Cfg,
    /// Generated sequence templates, one per valid unrolled path.
    pub sequences: Vec<SequenceTemplate>,
    /// Statistics — byte-identical to a plain `run` when `k = 1`.
    pub stats: RunStats,
    /// Sequence length.
    pub k: usize,
    /// The original program's field table (for splitting unrolled states).
    original_fields: FieldTable,
    /// `copy_field[i][f.0]` = exploration-table id of original field `f` in
    /// copy `i` (identity for `k = 1`).
    copy_field: Vec<Vec<FieldId>>,
    /// Register cells as (original id, exploration-table id) pairs.
    registers: Vec<(FieldId, FieldId)>,
}

impl StatefulRunOutput {
    /// Instantiates sequence template `idx` into a concrete ordered case.
    pub fn instantiate(&mut self, idx: usize) -> Option<SequenceCase> {
        let t = &self.sequences[idx].template;
        let unrolled = t.instantiate(&mut self.pool, &self.cfg.fields, &[])?;
        Some(self.split(&unrolled))
    }

    /// Splits a model over the unrolled field table into per-packet input
    /// states (original fields) plus the initial register state.
    pub fn split(&self, unrolled: &ConcreteState) -> SequenceCase {
        let vals: HashMap<FieldId, Bv> = unrolled.iter().collect();
        let mut packets = Vec::with_capacity(self.k);
        for map in &self.copy_field {
            let mut st = ConcreteState::new();
            for f in self.original_fields.iter() {
                if is_register_field(self.original_fields.name(f)) {
                    continue; // the target threads register state itself
                }
                if let Some(v) = vals.get(&map[f.0 as usize]) {
                    st.set(&self.original_fields, f, *v);
                }
            }
            packets.push(st);
        }
        let mut initial_registers = ConcreteState::new();
        for &(orig, unrolled_id) in &self.registers {
            if let Some(v) = vals.get(&unrolled_id) {
                initial_registers.set(&self.original_fields, orig, *v);
            }
        }
        SequenceCase {
            packets,
            initial_registers,
        }
    }

    /// The original program's field table the per-packet states refer to.
    pub fn original_fields(&self) -> &FieldTable {
        &self.original_fields
    }
}

impl Meissa {
    /// Runs stateful sequence-test generation: `config.k_packets` packets
    /// per sequence, initial register state zeroed unless
    /// `config.symbolic_init`. See the module docs for the encoding;
    /// `k_packets = 1` delegates to the exact single-packet [`Meissa::run`]
    /// flow.
    pub fn run_sequences(&self, program: &CompiledProgram) -> StatefulRunOutput {
        obs::init_from_env();
        let k = self.config.k_packets.max(1);
        let mut seq_span = obs::span("sequence.run");
        seq_span.field("k", k as u64);

        let original_fields = program.cfg.fields.clone();
        if k == 1 {
            let out = self.run(program);
            seq_span.field("templates", out.templates.len() as u64);
            drop(seq_span);
            // The summarized table extends the original one in place, so
            // original ids are valid exploration ids: identity mapping.
            let identity: Vec<FieldId> = original_fields.iter().collect();
            let registers: Vec<(FieldId, FieldId)> = original_fields
                .iter()
                .filter(|&f| is_register_field(original_fields.name(f)))
                .map(|f| (f, f))
                .collect();
            let sequences = out
                .templates
                .into_iter()
                .map(|t| SequenceTemplate {
                    id: t.id,
                    k: 1,
                    packet_paths: vec![t.path.clone()],
                    template: t,
                })
                .collect();
            return StatefulRunOutput {
                pool: out.pool,
                cfg: out.cfg,
                sequences,
                stats: out.stats,
                k: 1,
                original_fields,
                copy_field: vec![identity],
                registers,
            };
        }

        let t0 = Instant::now();
        let init = if self.config.symbolic_init {
            InitialState::Symbolic
        } else {
            InitialState::Zero
        };
        let mut unroll_span = obs::span("sequence.unroll");
        let u = unroll(&program.cfg, k, init);
        unroll_span.field("k", k as u64);
        unroll_span.field("nodes", u.cfg.num_nodes() as u64);
        unroll_span.field("registers", u.registers.len() as u64);
        drop(unroll_span);

        let mut session = SolveSession::new();
        let mut stats = RunStats {
            paths_before: count_paths(&u.cfg).total,
            ..RunStats::default()
        };
        // Code summary is an inter-pipeline decomposition of *one* packet's
        // traversal; across copies the shared register fields make effects
        // order-dependent, so the unrolled graph runs the basic framework.
        stats.paths_after = stats.paths_before.clone();

        let exec = generate_templates(&u.cfg, &mut session, &self.config.exec_config());
        stats.exec_elapsed = exec.stats.elapsed;
        stats.smt_checks = exec.stats.smt_checks;
        stats.valid_paths = exec.stats.valid_paths;
        stats.paths_explored = exec.stats.paths_explored;
        stats.pruned = exec.stats.pruned;
        stats.timed_out = exec.stats.timed_out;
        stats.cache_probes = session.exec.cache_probes;
        stats.cache_hits = session.exec.cache_hits;
        stats.batched_probes = session.exec.batched_probes;
        stats.arm_batches = session.exec.arm_batches;
        stats.backend_routed_smt = session.exec.backend_routed_smt;
        stats.backend_routed_bdd = session.exec.backend_routed_bdd;
        stats.bdd_probes = session.exec.bdd_probes;
        stats.bdd_nodes = session.exec.bdd_nodes;
        stats.solver = session.solver_stats();
        stats.sat = session.sat_stats();
        stats.elapsed = t0.elapsed();

        // Rule coverage over the unrolled graph: sites propagate per copy
        // with un-prefixed table names, so hits from any packet of a
        // sequence accrue to the one physical table.
        let rcov = crate::coverage::measure_rules(&u.cfg, &exec.templates);
        stats.rules_hit = rcov.rules_hit();
        stats.rules_total = rcov.rules_total();
        stats.tables_full = rcov.tables_full();
        stats.tables_total = rcov.tables_total();
        if obs::active() {
            obs::counter("coverage.rules_hit").add(stats.rules_hit);
            obs::gauge("coverage.tables_full").set(stats.tables_full);
        }

        // Split each unrolled path into per-packet slices: node j of copy i
        // has unrolled id i·n + j; init-chain nodes (ids ≥ k·n) are global.
        let n = program.cfg.num_nodes();
        let sequences: Vec<SequenceTemplate> = exec
            .templates
            .into_iter()
            .map(|t| {
                let mut packet_paths = vec![Vec::new(); k];
                for &node in &t.path {
                    let idx = node.0 as usize;
                    if idx < k * n {
                        packet_paths[idx / n].push(NodeId((idx % n) as u32));
                    }
                }
                SequenceTemplate {
                    id: t.id,
                    k,
                    packet_paths,
                    template: t,
                }
            })
            .collect();

        if obs::trace_on() {
            obs::note("coverage", {
                use meissa_testkit::json::ToJson as _;
                rcov.to_json().to_text()
            });
            seq_span.field("templates", sequences.len() as u64);
            seq_span.field("smt_checks", stats.smt_checks);
            seq_span.field("paths_explored", stats.paths_explored);
            seq_span.field("rules_hit", stats.rules_hit);
            seq_span.field("rules_total", stats.rules_total);
            drop(seq_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        if obs::log_on(obs::LogLevel::Info) {
            obs::log(
                obs::LogLevel::Info,
                "sequence",
                &format!(
                    "run done: k={k} sequences={} smt_checks={} elapsed={:?}",
                    sequences.len(),
                    stats.smt_checks,
                    stats.elapsed
                ),
            );
        }

        stats.rule_coverage = Some(rcov);
        crate::engine::ledger_append_run(
            "sequence.run",
            &program.cfg,
            &self.config,
            &stats,
            None,
        );

        let registers: Vec<(FieldId, FieldId)> = u
            .registers
            .iter()
            .map(|&r| {
                let name = u.cfg.fields.name(r);
                (
                    original_fields
                        .get(name)
                        .expect("register exists in the original table"),
                    r,
                )
            })
            .collect();
        StatefulRunOutput {
            pool: session.into_pool(),
            cfg: u.cfg,
            sequences,
            stats,
            k,
            original_fields,
            copy_field: u.copy_field,
            registers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MeissaConfig;
    use meissa_lang::{compile, parse_program, parse_rules};

    /// A register-gated forwarder: packet is forwarded only when the seen
    /// flag is already set; every packet from port 1 sets it. Only a
    /// 2-packet sequence can both set and consume the flag from zero-init.
    const GATED: &str = r#"
        header pkt { kind: 8; }
        metadata meta { drop: 1; }
        register seen[2]: 1;
        parser p { state start { extract(pkt); accept; } }
        action mark() { seen[0] = 1; }
        action pass_() { }
        action drop_() { meta.drop = 1; }
        control ig {
          if (hdr.pkt.kind == 1) { call mark(); }
          else {
            if (seen[0] == 1) { call pass_(); } else { call drop_(); }
          }
        }
        pipeline ingress0 { parser = p; control = ig; }
        deparser { emit(pkt); }
    "#;

    fn program() -> meissa_lang::CompiledProgram {
        compile(
            &parse_program(GATED).unwrap(),
            &parse_rules("").unwrap(),
        )
        .unwrap()
    }

    fn engine(k: usize) -> Meissa {
        Meissa {
            config: MeissaConfig {
                k_packets: k,
                threads: 1,
                ..MeissaConfig::default()
            },
        }
    }

    #[test]
    fn k1_is_byte_identical_to_run() {
        let cp = program();
        let single = Meissa {
            config: MeissaConfig {
                threads: 1,
                ..MeissaConfig::default()
            },
        }
        .run(&cp);
        let seq = engine(1).run_sequences(&cp);
        assert_eq!(seq.k, 1);
        assert_eq!(seq.sequences.len(), single.templates.len());
        for (s, t) in seq.sequences.iter().zip(&single.templates) {
            assert_eq!(s.template.path, t.path);
            assert_eq!(s.template.constraints, t.constraints);
            assert_eq!(s.template.final_values, t.final_values);
            assert_eq!(s.packet_paths, vec![t.path.clone()]);
        }
        assert_eq!(seq.stats.smt_checks, single.stats.smt_checks);
        assert_eq!(seq.stats.paths_before, single.stats.paths_before);
        assert_eq!(seq.stats.paths_explored, single.stats.paths_explored);
    }

    #[test]
    fn k2_finds_the_set_then_consume_sequence() {
        let cp = program();
        let mut out = engine(2).run_sequences(&cp);
        assert_eq!(out.k, 2);
        assert!(!out.sequences.is_empty());
        let fields = out.original_fields().clone();
        let kind = fields.get("hdr.pkt.kind").unwrap();
        let drop = fields.get("meta.drop").unwrap();
        // Look for a sequence whose packet 0 marks (kind==1) and whose
        // packet 1 consumes the flag (kind!=1 yet not dropped). Under
        // zero-init this is only reachable via the threaded register.
        let mut found = false;
        for i in 0..out.sequences.len() {
            let Some(case) = out.instantiate(i) else {
                continue;
            };
            assert_eq!(case.packets.len(), 2);
            assert!(
                case.initial_registers.is_empty(),
                "zero-init carries no register seed"
            );
            let k0 = case.packets[0].get(&fields, kind);
            let k1 = case.packets[1].get(&fields, kind);
            if k0.val() == 1 && k1.val() != 1 {
                // Replay concretely on the unrolled graph: packet 1 must
                // pass (drop stays 0 in copy 1).
                let mut st = ConcreteState::new();
                let t = &out.cfg.fields;
                for (copy, pkt) in case.packets.iter().enumerate() {
                    for (f, v) in pkt.iter() {
                        let name = fields.name(f);
                        let uf = t
                            .get(&meissa_ir::sequence_field_name(copy, name))
                            .unwrap();
                        st.set(t, uf, v);
                    }
                }
                let final_st =
                    meissa_ir::eval_path(&out.cfg, &out.sequences[i].template.path, &st)
                        .expect("sequence path replays");
                let d1 = t.get(&meissa_ir::sequence_field_name(1, "meta.drop")).unwrap();
                if final_st.get(t, d1).is_zero() {
                    found = true;
                }
            }
            let _ = drop;
        }
        assert!(found, "a mark-then-pass sequence must be generated");
    }

    #[test]
    fn symbolic_init_seeds_initial_registers() {
        let cp = program();
        let mut e = engine(2);
        e.config.symbolic_init = true;
        let mut out = e.run_sequences(&cp);
        let fields = out.original_fields().clone();
        let kind = fields.get("hdr.pkt.kind").unwrap();
        let seen = fields.get("REG:seen-POS:0").unwrap();
        // With a symbolic pre-state there is a sequence where BOTH packets
        // consume (neither marks): the flag was already set before packet 0.
        let mut found = false;
        for i in 0..out.sequences.len() {
            let Some(case) = out.instantiate(i) else {
                continue;
            };
            let both_consume = case
                .packets
                .iter()
                .all(|p| p.get(&fields, kind).val() != 1);
            if both_consume && case.initial_registers.get(&fields, seen).val() == 1 {
                found = true;
            }
        }
        assert!(found, "symbolic init must surface a pre-seeded sequence");
    }

    #[test]
    fn sequence_exploration_is_thread_invariant() {
        let cp = program();
        let base = engine(2).run_sequences(&cp);
        let mut e4 = engine(2);
        e4.config.threads = 4;
        e4.config.min_paths_per_worker = 0;
        let par = e4.run_sequences(&cp);
        assert_eq!(base.sequences.len(), par.sequences.len());
        for (a, b) in base.sequences.iter().zip(&par.sequences) {
            assert_eq!(a.template.path, b.template.path);
            assert_eq!(a.packet_paths, b.packet_paths);
        }
        assert_eq!(base.stats.smt_checks, par.stats.smt_checks);
    }
}
