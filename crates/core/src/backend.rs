//! The predicate-backend abstraction: one trait, two engines, one router.
//!
//! Every probe the explorers issue — "is this constraint set satisfiable?",
//! "which of these sibling arms survive under the shared prefix?" — flows
//! through [`BackendRouter`] instead of calling [`Solver`] directly. The
//! router owns both engines behind the [`PredicateBackend`] trait:
//!
//! * [`SmtBackend`] — the incremental SMT solver, unchanged in behavior:
//!   single probes use `check` against the live frames, arm batches use
//!   `check_under` assumptions. It accepts every query.
//! * [`BddBackend`] — the hermetic ROBDD engine
//!   ([`meissa_smt::bdd::BddEngine`]), exact on *match-field-only*
//!   constraint sets (boolean structure over `field ⋈ const` comparisons)
//!   and unable to answer anything else.
//!
//! Routing is per probe and whole-set atomic: a probe goes to the BDD only
//! when its *entire* constraint set (context and arms alike) classifies as
//! match-field-only; one out-of-class conjunct sends the whole probe to
//! SMT, so the two engines never split a single verdict. The session's
//! verdict cache sits *above* this router — a cache hit never reaches it,
//! and both engines populate the same cache on miss.
//!
//! Accounting: `smt_checks` keeps its meaning of "probes answered" (one per
//! arm regardless of which engine answered), so routing does not disturb the
//! golden counters; `sat_engine_calls` still counts only real CDCL runs and
//! therefore *drops* when the BDD absorbs probes. Router decisions and BDD
//! work are tallied in the four `backend_*`/`bdd_*` [`ExecStats`] fields and
//! mirrored to `testkit::obs` counters when tracing is live.

use crate::exec::ExecStats;
use meissa_smt::bdd::BddEngine;
use meissa_smt::{CheckResult, Solver, TermId, TermPool};
use meissa_testkit::obs;
use std::sync::{Arc, OnceLock};

/// Live observability counters for the routing layer (`meissa_backend_*` in
/// the Prometheus exposition). Only touched when [`obs::active`].
struct ObsBackend {
    routed_smt: Arc<obs::Counter>,
    routed_bdd: Arc<obs::Counter>,
    bdd_probes: Arc<obs::Counter>,
    bdd_nodes: Arc<obs::Counter>,
}

fn obs_backend() -> &'static ObsBackend {
    static B: OnceLock<ObsBackend> = OnceLock::new();
    B.get_or_init(|| ObsBackend {
        routed_smt: obs::counter("backend.routed_smt"),
        routed_bdd: obs::counter("backend.routed_bdd"),
        bdd_probes: obs::counter("backend.bdd_probes"),
        bdd_nodes: obs::counter("backend.bdd_nodes"),
    })
}

/// Which predicate backend answers probes (`MeissaConfig.backend`,
/// `MEISSA_BACKEND=smt|bdd|auto`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Every probe goes to the incremental SMT solver (the historical path).
    Smt,
    /// Match-field-only probes go to the BDD engine. Out-of-class probes
    /// still fall back to SMT — the BDD cannot answer them — so today this
    /// routes identically to [`BackendKind::Auto`]; it exists so the two
    /// policies can diverge (e.g. a strict mode that rejects fallback).
    Bdd,
    /// The router classifies each probe: match-field-only → BDD, anything
    /// else → SMT. The default.
    Auto,
}

impl BackendKind {
    /// Parses the `MEISSA_BACKEND` spelling.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "smt" => Some(BackendKind::Smt),
            "bdd" => Some(BackendKind::Bdd),
            "auto" => Some(BackendKind::Auto),
            _ => None,
        }
    }
}

/// The process-default backend: `MEISSA_BACKEND` when set and valid,
/// otherwise [`BackendKind::Auto`].
pub fn default_backend() -> BackendKind {
    std::env::var("MEISSA_BACKEND")
        .ok()
        .and_then(|s| BackendKind::parse(&s))
        .unwrap_or(BackendKind::Auto)
}

/// A predicate engine that can answer satisfiability probes over constraint
/// sets. Probes arrive as slices-of-slices so callers pass (prefix, delta)
/// pairs without concatenating; the conjunction of everything is the query.
pub trait PredicateBackend {
    /// Engine name for reports and trace events.
    fn name(&self) -> &'static str;

    /// Can this engine answer a probe over exactly these constraint sets?
    /// Must be cheap — it runs on every probe under [`BackendKind::Auto`].
    fn accepts(&mut self, pool: &TermPool, sets: &[&[TermId]]) -> bool;

    /// Satisfiability of the conjunction of all sets. For [`SmtBackend`]
    /// the sets must already be asserted in the live frames (they are
    /// documentation of the query, not re-asserted); for [`BddBackend`]
    /// they are the whole query.
    fn check(&mut self, pool: &mut TermPool, sets: &[&[TermId]]) -> CheckResult;

    /// Batched sibling arms: each arm is probed as `ctx ∧ arm`
    /// independently. Same frame contract as [`PredicateBackend::check`]:
    /// the SMT engine expects `ctx` live in its frames and probes the arms
    /// as assumptions.
    fn check_arms(&mut self, pool: &mut TermPool, ctx: &[&[TermId]], arms: &[TermId])
        -> Vec<CheckResult>;
}

/// The incremental SMT solver behind the trait. Frames, assumptions, and
/// all counters behave exactly as before the refactor.
pub struct SmtBackend {
    pub solver: Solver,
}

impl PredicateBackend for SmtBackend {
    fn name(&self) -> &'static str {
        "smt"
    }

    fn accepts(&mut self, _pool: &TermPool, _sets: &[&[TermId]]) -> bool {
        true
    }

    fn check(&mut self, pool: &mut TermPool, _sets: &[&[TermId]]) -> CheckResult {
        self.solver.check(pool)
    }

    fn check_arms(
        &mut self,
        pool: &mut TermPool,
        _ctx: &[&[TermId]],
        arms: &[TermId],
    ) -> Vec<CheckResult> {
        self.solver.check_under(pool, arms)
    }
}

/// The ROBDD engine behind the trait: exact on match-field-only sets,
/// rejects everything else via [`PredicateBackend::accepts`].
pub struct BddBackend {
    pub engine: BddEngine,
}

impl PredicateBackend for BddBackend {
    fn name(&self) -> &'static str {
        "bdd"
    }

    fn accepts(&mut self, pool: &TermPool, sets: &[&[TermId]]) -> bool {
        sets.iter()
            .copied()
            .flatten()
            .all(|&t| self.engine.accepts(pool, t))
    }

    fn check(&mut self, pool: &mut TermPool, sets: &[&[TermId]]) -> CheckResult {
        if self.engine.conj_sat(pool, sets) {
            CheckResult::Sat
        } else {
            CheckResult::Unsat
        }
    }

    fn check_arms(
        &mut self,
        pool: &mut TermPool,
        ctx: &[&[TermId]],
        arms: &[TermId],
    ) -> Vec<CheckResult> {
        self.engine
            .conj_sat_arms(pool, ctx, arms)
            .iter()
            .map(|&sat| if sat { CheckResult::Sat } else { CheckResult::Unsat })
            .collect()
    }
}

/// Owns both engines and routes each probe to one of them according to
/// [`BackendKind`]. Lives inside [`crate::SolveSession`]; the explorers
/// never see a raw [`Solver`] for probing anymore (frame management —
/// push/pop/assert — still goes through [`BackendRouter::solver_mut`],
/// because frames are an SMT-engine concept).
pub struct BackendRouter {
    pub kind: BackendKind,
    pub smt: SmtBackend,
    pub bdd: BddBackend,
}

impl BackendRouter {
    pub fn new(kind: BackendKind) -> BackendRouter {
        BackendRouter {
            kind,
            smt: SmtBackend { solver: Solver::new() },
            bdd: BddBackend { engine: BddEngine::new() },
        }
    }

    pub fn solver(&self) -> &Solver {
        &self.smt.solver
    }

    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.smt.solver
    }

    /// Does the whole probe classify for the BDD under the current policy?
    fn bdd_takes(&mut self, pool: &TermPool, sets: &[&[TermId]]) -> bool {
        self.kind != BackendKind::Smt && self.bdd.accepts(pool, sets)
    }

    /// Routes one whole-set probe. `ctx` is the complete constraint set of
    /// the query and must already be asserted in the SMT solver's live
    /// frames (the SMT path checks the frames; the BDD path checks `ctx`).
    /// Returns `true` when satisfiable.
    ///
    /// Accounting: a BDD answer bumps `exec.smt_checks` directly (one probe
    /// answered); an SMT answer leaves `smt_checks` to the caller's
    /// solver-delta fold, as before.
    pub fn check_set(&mut self, pool: &mut TermPool, ctx: &[TermId], exec: &mut ExecStats) -> bool {
        let sets: [&[TermId]; 1] = [ctx];
        if self.bdd_takes(pool, &sets) {
            let before = self.bdd.engine.node_count();
            let sat = self.bdd.check(pool, &sets) == CheckResult::Sat;
            let grown = self.bdd.engine.node_count() - before;
            exec.backend_routed_bdd += 1;
            exec.bdd_probes += 1;
            exec.bdd_nodes += grown;
            exec.smt_checks += 1;
            if obs::active() {
                let m = obs_backend();
                m.routed_bdd.add(1);
                m.bdd_probes.add(1);
                m.bdd_nodes.add(grown);
            }
            sat
        } else {
            exec.backend_routed_smt += 1;
            if obs::active() {
                obs_backend().routed_smt.add(1);
            }
            self.smt.check(pool, &sets) == CheckResult::Sat
        }
    }

    /// Routes a batch of sibling arms under a shared context. The batch is
    /// atomic: the BDD takes it only when the context *and every arm*
    /// classify; otherwise the whole batch goes to `check_under`. An empty
    /// batch returns without counting a routing decision.
    pub fn check_arm_batch(
        &mut self,
        pool: &mut TermPool,
        ctx: &[&[TermId]],
        arms: &[TermId],
        exec: &mut ExecStats,
    ) -> Vec<bool> {
        if arms.is_empty() {
            return Vec::new();
        }
        let all_in_class =
            self.kind != BackendKind::Smt && self.bdd.accepts(pool, ctx) && self.bdd.accepts(pool, &[arms]);
        if all_in_class {
            let before = self.bdd.engine.node_count();
            let verdicts = self.bdd.check_arms(pool, ctx, arms);
            let grown = self.bdd.engine.node_count() - before;
            exec.backend_routed_bdd += 1;
            exec.bdd_probes += arms.len() as u64;
            exec.bdd_nodes += grown;
            exec.smt_checks += arms.len() as u64;
            if obs::active() {
                let m = obs_backend();
                m.routed_bdd.add(1);
                m.bdd_probes.add(arms.len() as u64);
                m.bdd_nodes.add(grown);
            }
            verdicts.iter().map(|&v| v == CheckResult::Sat).collect()
        } else {
            exec.backend_routed_smt += 1;
            if obs::active() {
                obs_backend().routed_smt.add(1);
            }
            self.smt
                .check_arms(pool, ctx, arms)
                .iter()
                .map(|&v| v == CheckResult::Sat)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_num::Bv;

    #[test]
    fn kind_parses_env_spellings() {
        assert_eq!(BackendKind::parse("smt"), Some(BackendKind::Smt));
        assert_eq!(BackendKind::parse("BDD "), Some(BackendKind::Bdd));
        assert_eq!(BackendKind::parse("Auto"), Some(BackendKind::Auto));
        assert_eq!(BackendKind::parse("z3"), None);
    }

    #[test]
    fn backend_names() {
        let r = BackendRouter::new(BackendKind::Auto);
        assert_eq!(r.smt.name(), "smt");
        let mut b = r.bdd;
        assert_eq!(b.name(), "bdd");
        let pool = TermPool::new();
        assert!(b.accepts(&pool, &[]));
    }

    /// In-class probes route to the BDD under auto, and the verdict matches
    /// what the SMT path would say; out-of-class probes fall back.
    #[test]
    fn auto_routes_by_class_and_agrees() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let k3 = pool.bv_const(Bv::new(8, 3));
        let k5 = pool.bv_const(Bv::new(8, 5));
        let eq3 = pool.eq(x, k3);
        let eq5 = pool.eq(x, k5);

        let mut r = BackendRouter::new(BackendKind::Auto);
        let mut exec = ExecStats::default();
        // Contradiction, fully in class: BDD answers Unsat.
        r.solver_mut().push();
        r.solver_mut().assert_term(&mut pool, eq3);
        r.solver_mut().assert_term(&mut pool, eq5);
        let sat = r.check_set(&mut pool, &[eq3, eq5], &mut exec);
        assert!(!sat);
        assert_eq!(exec.backend_routed_bdd, 1);
        assert_eq!(exec.backend_routed_smt, 0);
        assert_eq!(exec.bdd_probes, 1);
        assert_eq!(exec.smt_checks, 1);
        assert!(exec.bdd_nodes > 0);
        assert_eq!(r.solver().stats.checks, 0, "BDD probe never touched SMT");
        r.solver_mut().pop();

        // Out of class (arithmetic): falls back to the live frames.
        let sum = pool.add(x, k3);
        let arith = pool.eq(sum, k5);
        r.solver_mut().push();
        r.solver_mut().assert_term(&mut pool, arith);
        let sat = r.check_set(&mut pool, &[arith], &mut exec);
        assert!(sat);
        assert_eq!(exec.backend_routed_smt, 1);
        assert_eq!(r.solver().stats.checks, 1);
        r.solver_mut().pop();
    }

    #[test]
    fn smt_kind_never_routes_to_bdd() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let k3 = pool.bv_const(Bv::new(8, 3));
        let eq3 = pool.eq(x, k3);
        let mut r = BackendRouter::new(BackendKind::Smt);
        let mut exec = ExecStats::default();
        r.solver_mut().push();
        r.solver_mut().assert_term(&mut pool, eq3);
        assert!(r.check_set(&mut pool, &[eq3], &mut exec));
        assert_eq!(exec.backend_routed_smt, 1);
        assert_eq!(exec.backend_routed_bdd, 0);
        assert_eq!(exec.bdd_probes, 0);
        r.solver_mut().pop();
    }

    #[test]
    fn arm_batch_is_atomic_on_class() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let k3 = pool.bv_const(Bv::new(8, 3));
        let k5 = pool.bv_const(Bv::new(8, 5));
        let eq3 = pool.eq(x, k3);
        let eq5 = pool.eq(x, k5);
        let sum = pool.add(x, k3);
        let arith = pool.eq(sum, k5);

        let mut r = BackendRouter::new(BackendKind::Auto);
        let mut exec = ExecStats::default();
        // Whole batch in class → BDD, one decision for two arms.
        let v = r.check_arm_batch(&mut pool, &[&[eq3]], &[eq3, eq5], &mut exec);
        assert_eq!(v, vec![true, false]);
        assert_eq!(exec.backend_routed_bdd, 1);
        assert_eq!(exec.bdd_probes, 2);
        assert_eq!(exec.smt_checks, 2);

        // One out-of-class arm taints the batch → all arms via check_under.
        let v = r.check_arm_batch(&mut pool, &[], &[eq3, arith], &mut exec);
        assert_eq!(v, vec![true, true]);
        assert_eq!(exec.backend_routed_smt, 1);
        assert_eq!(exec.bdd_probes, 2, "unchanged");
        assert_eq!(r.solver().stats.checks, 2, "both arms probed by SMT");

        // Empty batch: no routing decision recorded.
        let routed = exec.backend_routed_smt + exec.backend_routed_bdd;
        assert!(r.check_arm_batch(&mut pool, &[], &[], &mut exec).is_empty());
        assert_eq!(exec.backend_routed_smt + exec.backend_routed_bdd, routed);
    }
}
