//! Meissa's core: test case generation for data plane CFGs.
//!
//! * [`symstate`] — the symbolic state of §3.2: the value stack `V`
//!   (field → symbolic expression) and translation of IR expressions into
//!   solver terms, including the §4 hash treatment.
//! * [`exec`] — Algorithm 1: DFS path enumeration with early termination
//!   backed by incremental SMT solving; emits a test case template per
//!   valid path.
//! * [`summary`] — Algorithm 2: code summary. Pipelines are summarized in
//!   topological order; public pre-conditions (intersection of all entry
//!   paths' constraints and agreeing values) prune the per-pipeline search,
//!   and each surviving valid path is re-encoded as one guard predicate plus
//!   atomic effect assignments via `@` auxiliary variables.
//! * [`session`] — the [`session::SolveSession`] bundle (term pool +
//!   incremental solver + cumulative statistics) threaded through every
//!   layer instead of loose `(pool, solver, stats)` parameters; the unit of
//!   per-worker state for the parallel explorer.
//! * [`parallel`] — the work-stealing parallel explorer: subtree tasks over
//!   per-worker sessions, minipool term translation at task boundaries, a
//!   deterministic DFS-order merge, and the batch runner behind code
//!   summary's concurrent group searches and seed extensions.
//! * [`template`] — test case templates and their instantiation into
//!   concrete input states (solver model extraction + hash post-filtering).
//! * [`engine`] — the top-level [`engine::Meissa`] façade used by the test
//!   driver, examples, and benchmarks; collects the statistics the paper's
//!   figures report (time, SMT calls, possible paths).
//! * [`stateful`] — k-packet sequence testing: the CFG unrolled with
//!   register state threaded between copies ([`meissa_ir::unroll`]),
//!   sequence templates, and per-packet case splitting; `k = 1` delegates
//!   to the single-packet engine byte-for-byte.
//! * [`backend`] — the predicate-backend abstraction: every probe routes
//!   through a [`backend::PredicateBackend`] (incremental SMT solver or the
//!   hermetic BDD engine) picked per probe by [`backend::BackendRouter`].
//! * [`coverage`] — coverage accounting (path / branch / statement).

pub mod backend;
pub mod coverage;
pub mod engine;
pub mod exec;
pub(crate) mod parallel;
pub mod session;
pub mod stateful;
pub mod summary;
pub mod symstate;
pub mod template;

pub use backend::{default_backend, BackendKind, BackendRouter, PredicateBackend};
pub use engine::{Meissa, MeissaConfig, RunOutput, RunStats};
pub use exec::{ExecConfig, ExecOutput, ExecStats};
pub use session::SolveSession;
pub use stateful::{SequenceCase, SequenceTemplate, StatefulRunOutput};
pub use template::{HashObligation, TestTemplate};
