//! Work-stealing parallel path exploration over per-worker [`SolveSession`]s.
//!
//! The DFS + SMT loop of Algorithm 1 dominates end-to-end cost, and
//! independent path suffixes explore independently — so the explorer shards
//! the DFS *tree* across worker threads:
//!
//! * A **task** is a subtree: `(node, path-prefix, constraint-prefix,
//!   value-snapshot)`. Term ids are pool-local, so a task carries its prefix
//!   terms in a private minipool; the donor translates once
//!   ([`TermPool::import`]) and the receiving worker translates into its own
//!   pool before re-establishing the prefix (asserted in one solver frame,
//!   *without* re-checking — the donor already validated it).
//! * Each worker owns one [`SolveSession`] (pool + incremental solver +
//!   counters) that persists across tasks, keeping the solver's
//!   bit-blasting cache warm. Discovered [`RawPath`]s ship back over an
//!   [`std::sync::mpsc`] channel, tagged with the worker id so the merge
//!   step knows which pool their terms live in.
//! * **Work sharing**: at a multi-child node, a walker whose frontier is
//!   hungry donates all children but the first ([`WorkSharer::donate`]) and
//!   recurses only into the head. Every tree edge is explored exactly once,
//!   by exactly one worker — which is why merged per-worker counters equal a
//!   sequential run's.
//! * **Cancellation**: one shared [`ExploreBudget`] (an atomic state cell)
//!   is polled by every walker; a template-cap or deadline trip observed by
//!   any worker stops all of them promptly. Drained-but-cancelled tasks
//!   abort on their first budget poll.
//!
//! **Determinism.** The final path *set* is thread-count independent (the
//! partition covers the same tree), and the emitted order is made
//! deterministic by sorting merged paths into sequential DFS order
//! ([`cmp_paths`]: order by successor position at the first divergence)
//! before translating them into the main pool — so main-pool term ids, and
//! everything derived from them, are reproducible run to run.

use crate::exec::{explore_task, ExecConfig, ExecStats, ExploreBudget, RawPath, WorkSharer};
use crate::session::SolveSession;
use crate::symstate::{HashDef, SymCtx, ValueStack};
use meissa_ir::{Cfg, FieldId, NodeId};
use meissa_smt::{ClauseExchange, TermId, TermNode, TermPool};
use meissa_testkit::obs;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Slots in the cross-worker learned-clause exchange. Publication is
/// append-only and drops on overflow, so this bounds both memory and the
/// work a late import can possibly do.
const EXCHANGE_CAPACITY: usize = 4096;

/// The cross-worker clause pool for a run, honoring the
/// `MEISSA_CLAUSE_SHARE` switch (`off` disables sharing; anything else —
/// including unset — enables it for multi-worker runs).
fn clause_exchange(workers: usize) -> Option<Arc<ClauseExchange>> {
    if workers < 2 {
        return None; // nothing to exchange with
    }
    if std::env::var("MEISSA_CLAUSE_SHARE").is_ok_and(|v| v == "off") {
        return None;
    }
    Some(Arc::new(ClauseExchange::new(EXCHANGE_CAPACITY)))
}

/// One subtree task. Every worker pool is a fork of the main pool, so the
/// seed task (`pool: None`) carries main-pool ids that are valid verbatim
/// in every worker. A donated task instead carries its prefix terms in a
/// small private minipool — built *once* per donation, [`Arc`]-shared by
/// all sibling tasks — which the receiver imports into its own pool.
struct Task {
    node: NodeId,
    trace: Vec<NodeId>,
    pool: Option<Arc<TermPool>>,
    constraints: Vec<TermId>,
    values: Vec<(FieldId, TermId)>,
}

struct FrontierState {
    tasks: VecDeque<Task>,
    /// Workers currently blocked waiting for a task.
    idle: usize,
    /// Tasks created but not yet finished (queued *or* running). Donations
    /// increment before the donor's own subtree finishes, so this reaches
    /// zero only when the whole tree is explored.
    pending: usize,
    done: bool,
}

/// The shared work queue. `idle_hint`/`queue_hint` mirror the mutex-guarded
/// state so [`WorkSharer::hungry`] — consulted at every branch node — costs
/// two relaxed atomic loads, not a lock.
struct Frontier {
    state: Mutex<FrontierState>,
    available: Condvar,
    idle_hint: AtomicUsize,
    queue_hint: AtomicUsize,
    /// EWMA of observed task durations in nanoseconds (0 = no sample yet).
    /// Feeds [`Frontier::donation_limit`]: the donation depth gate adapts
    /// to how chunky tasks actually are instead of assuming one size.
    task_ns_ewma: AtomicU64,
    /// Current donation depth bound derived from the EWMA (see
    /// [`WorkSharer::donation_limit`]).
    donate_depth: AtomicUsize,
}

/// The static donation depth bound before any task has been timed — the
/// value the gate used when it was a compile-time constant.
const DONATE_DEPTH_DEFAULT: usize = 6;

impl Frontier {
    fn new(initial: Task) -> Self {
        let mut tasks = VecDeque::new();
        tasks.push_back(initial);
        Frontier {
            state: Mutex::new(FrontierState {
                tasks,
                idle: 0,
                pending: 1,
                done: false,
            }),
            available: Condvar::new(),
            idle_hint: AtomicUsize::new(0),
            queue_hint: AtomicUsize::new(1),
            task_ns_ewma: AtomicU64::new(0),
            donate_depth: AtomicUsize::new(DONATE_DEPTH_DEFAULT),
        }
    }

    /// Blocks until a task is available or the frontier drains for good.
    fn pop(&self) -> Option<Task> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(t) = st.tasks.pop_front() {
                self.queue_hint.store(st.tasks.len(), Ordering::Relaxed);
                return Some(t);
            }
            if st.done {
                return None;
            }
            st.idle += 1;
            self.idle_hint.store(st.idle, Ordering::Relaxed);
            st = self.available.wait(st).unwrap();
            st.idle -= 1;
            self.idle_hint.store(st.idle, Ordering::Relaxed);
        }
    }

    /// Marks one popped task finished; the last finish ends the run. The
    /// task's duration feeds the EWMA behind the adaptive donation gate:
    /// when tasks run tiny, donation retreats toward the root so each
    /// shipped subtree is chunky enough to earn back its fixed cost
    /// (minipool snapshot + prefix re-assertion); when tasks run long,
    /// deeper donation splits them finer so idle workers find food.
    fn finish_task(&self, dur: std::time::Duration) {
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let old = self.task_ns_ewma.load(Ordering::Relaxed);
        let ewma = if old == 0 {
            dur_ns.max(1)
        } else {
            (old.saturating_mul(3).saturating_add(dur_ns)) / 4
        };
        self.task_ns_ewma.store(ewma, Ordering::Relaxed);
        let depth = match ewma {
            0..=100_000 => 2,            // ≤ 0.1 ms: only root-adjacent subtrees pay off
            100_001..=500_000 => 4,      // ≤ 0.5 ms
            500_001..=2_000_000 => DONATE_DEPTH_DEFAULT, // ≤ 2 ms: the old static regime
            2_000_001..=10_000_000 => 9, // ≤ 10 ms
            _ => 12,                     // chunky tasks: split them fine
        };
        self.donate_depth.store(depth, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        st.pending -= 1;
        if st.pending == 0 {
            st.done = true;
            self.available.notify_all();
        }
    }
}

impl WorkSharer for Frontier {
    fn hungry(&self) -> bool {
        // Donate only when starving workers outnumber queued tasks. Keeping
        // this strict matters: every donation snapshots its prefix and every
        // received task re-asserts it, so a sated frontier that kept
        // accepting donations would turn the explorer into a task-creation
        // benchmark.
        self.idle_hint.load(Ordering::Relaxed) > self.queue_hint.load(Ordering::Relaxed)
    }

    fn donate(
        &self,
        pool: &TermPool,
        trace: &[NodeId],
        constraints: &[TermId],
        values: &ValueStack,
        siblings: &[NodeId],
    ) {
        // Snapshot the (shallow, donation is depth-gated) prefix into one
        // small minipool, Arc-shared by all sibling tasks. Importing a
        // handful of prefix terms is far cheaper than cloning the donor's
        // whole pool, which grows without bound over the tasks it runs.
        let mut mini = TermPool::new();
        let mut cache = HashMap::new();
        let cs: Vec<TermId> = constraints
            .iter()
            .map(|&c| mini.import(pool, c, &mut cache))
            .collect();
        let mut vals: Vec<(FieldId, TermId)> = values
            .iter()
            .map(|(f, t)| (f, mini.import(pool, t, &mut cache)))
            .collect();
        vals.sort_by_key(|&(f, _)| f);
        let snap = Arc::new(mini);
        let mut st = self.state.lock().unwrap();
        for &sib in siblings {
            st.tasks.push_back(Task {
                node: sib,
                trace: trace.to_vec(),
                pool: Some(snap.clone()),
                constraints: cs.clone(),
                values: vals.clone(),
            });
            st.pending += 1;
        }
        self.queue_hint.store(st.tasks.len(), Ordering::Relaxed);
        drop(st);
        self.available.notify_all();
        obs::event(
            "worker.donate",
            &[("siblings", siblings.len() as u64), ("depth", trace.len() as u64)],
        );
    }

    fn donation_limit(&self) -> usize {
        self.donate_depth.load(Ordering::Relaxed)
    }
}

/// Sequential DFS emission order, reconstructed from path node sequences:
/// at the first divergence the path whose node comes earlier in the shared
/// parent's successor list is emitted first. (A strict-prefix pair cannot
/// occur — paths end at targets or terminals, never mid-way through another
/// path — but length breaks the tie anyway.)
fn cmp_paths(cfg: &Cfg, a: &[NodeId], b: &[NodeId]) -> std::cmp::Ordering {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            let succ = cfg.succ(a[i - 1]);
            let pa = succ.iter().position(|&s| s == a[i]);
            let pb = succ.iter().position(|&s| s == b[i]);
            return pa.cmp(&pb);
        }
    }
    a.len().cmp(&b.len())
}

/// Saturating possible-path count below `start`, clamped to `limit`:
/// [`meissa_ir::count_paths_between`] in `u64` arithmetic, since the worker
/// cap only needs to distinguish "a handful" from "plenty" — real targets'
/// exact counts (up to 10^390) are irrelevant here.
fn possible_path_estimate(cfg: &Cfg, start: NodeId, limit: u64) -> u64 {
    let order = cfg.topo_order();
    let mut counts: HashMap<NodeId, u64> = HashMap::with_capacity(order.len());
    for &n in order.iter().rev() {
        let succ = cfg.succ(n);
        let c = if succ.is_empty() {
            1
        } else {
            succ.iter()
                .map(|s| counts.get(s).copied().unwrap_or(1))
                .fold(0u64, u64::saturating_add)
                .min(limit)
        };
        counts.insert(n, c);
    }
    counts.get(&start).copied().unwrap_or(1)
}

struct WorkerOutput {
    session: SolveSession,
    ctx: SymCtx,
    busy: std::time::Duration,
    tasks: usize,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    cfg: &Cfg,
    main_pool: &TermPool,
    targets: &HashSet<NodeId>,
    config: &ExecConfig,
    frontier: &Frontier,
    budget: &ExploreBudget,
    scope: Option<&str>,
    exchange: Option<&Arc<ClauseExchange>>,
    tx: mpsc::Sender<(usize, RawPath)>,
    wid: usize,
) -> WorkerOutput {
    // A popped solver frame only *disables* its clauses (the activation
    // literal is falsified, the clauses stay), so a long-lived solver's SAT
    // database — and with it every check — keeps growing as tasks
    // accumulate. The sequential engine pays that for the whole tree;
    // a worker bounds it by retiring its solver after this many checks and
    // re-blasting the (shallow) next prefix into a fresh one.
    const WORKER_RESET_CHECKS: u64 = 512;
    let t_worker = Instant::now();
    let mut span = obs::span("parallel.worker");
    span.field("wid", wid as u64);
    let mut session = SolveSession::fork_from(main_pool);
    if let Some(ex) = exchange {
        session.attach_exchange(ex.clone(), wid);
    }
    let mut ctx = SymCtx::new(scope);
    let mut busy = std::time::Duration::ZERO;
    let mut steal_wait = std::time::Duration::ZERO;
    let mut tasks = 0usize;
    let mut steals = 0u64;
    loop {
        let t_pop = Instant::now();
        let Some(task) = frontier.pop() else {
            steal_wait += t_pop.elapsed();
            break;
        };
        steal_wait += t_pop.elapsed();
        let t_task = Instant::now();
        tasks += 1;
        if task.pool.is_some() {
            // A minipool snapshot means this task was donated by a sibling
            // worker rather than seeded by the dispatcher.
            steals += 1;
            obs::event("worker.steal", &[("depth", task.trace.len() as u64)]);
        }
        if session.solver().stats.checks >= WORKER_RESET_CHECKS {
            session.reset_solver();
        }
        // Resolve the task's prefix in this worker's pool. Seed-task ids
        // are below the fork point and valid verbatim; a donated task's
        // terms import from its minipool snapshot (cache per task:
        // snapshots are distinct objects).
        let (cs, vals): (Vec<TermId>, Vec<(FieldId, TermId)>) = match &task.pool {
            None => (task.constraints.clone(), task.values.clone()),
            Some(mini) => {
                // Minipool ids are private to the snapshot — full import.
                let mut cache = HashMap::new();
                let cs = task
                    .constraints
                    .iter()
                    .map(|&c| session.pool.import(mini, c, &mut cache))
                    .collect();
                let vals = task
                    .values
                    .iter()
                    .map(|&(f, t)| (f, session.pool.import(mini, t, &mut cache)))
                    .collect();
                (cs, vals)
            }
        };
        explore_task(
            cfg,
            &mut session,
            &mut ctx,
            task.node,
            targets,
            &task.trace,
            &cs,
            &vals,
            config,
            budget,
            Some(frontier),
            &mut |p| {
                // The receiver outlives the workers; a send only fails
                // after the main thread has given up on the run.
                let _ = tx.send((wid, p));
            },
        );
        let dur = t_task.elapsed();
        frontier.finish_task(dur);
        busy += dur;
    }
    // Last export: the clauses this worker learned after its final retire
    // boundary are still useful to stragglers.
    session.share_learned();
    span.field("tasks", tasks as u64);
    span.field("steals", steals);
    span.field("busy_us", busy.as_micros() as u64);
    span.field("steal_wait_us", steal_wait.as_micros() as u64);
    span.field("wall_us", t_worker.elapsed().as_micros() as u64);
    span.field("smt_checks", session.exec.smt_checks);
    WorkerOutput {
        session,
        ctx,
        busy,
        tasks,
    }
}

/// Parallel counterpart of [`crate::exec::explore_multi`]: explores from
/// `start` across `config.threads` workers and returns the discovered valid
/// paths — translated into the *main* session's pool, sorted into
/// sequential DFS order — plus merged per-call statistics. Worker counters
/// and hash obligations fold into `session` / `ctx` exactly as a sequential
/// run's would ([`SolveSession::merge_worker`],
/// [`SymCtx::add_hash_def`] + [`SymCtx::register_pool_vars`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_parallel(
    cfg: &Cfg,
    session: &mut SolveSession,
    ctx: &mut SymCtx,
    start: NodeId,
    targets: &HashSet<NodeId>,
    base_constraints: &[TermId],
    initial_values: &[(FieldId, TermId)],
    config: &ExecConfig,
) -> (Vec<RawPath>, ExecStats) {
    let mut threads = config.threads.max(1);
    if threads > 1 && config.min_paths_per_worker > 0 {
        // Right-size the pool before paying for it. Two caps:
        //
        // (a) machine cores — workers beyond the available parallelism
        //     only add scheduling latency, and each still costs a pool
        //     fork plus its share of the deterministic merge (observed:
        //     gw-3-r8 dropped to 0.54× sequential when 8 workers shared
        //     one core);
        // (b) possible paths below the root — a subtree with fewer than
        //     `min_paths_per_worker` paths per worker cannot keep the
        //     frontier fed, so tiny trees fall back toward the sequential
        //     engine. The estimate saturates, keeping the counting
        //     O(V + E) in u64; huge graphs always pass this cap.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        threads = threads.min(cores);
        let limit = (threads as u64).saturating_mul(config.min_paths_per_worker);
        let est = possible_path_estimate(cfg, start, limit);
        threads = threads.min((est / config.min_paths_per_worker).max(1) as usize);
    }
    if threads == 1 {
        let mut paths = Vec::new();
        let stats = crate::exec::explore_multi(
            cfg,
            session,
            ctx,
            start,
            targets,
            base_constraints,
            initial_values,
            config,
            &mut |p| paths.push(p),
        );
        return (paths, stats);
    }
    let t0 = Instant::now();
    // Parity with `explore_multi`: a top-level exploration starts from a
    // fresh main solver (the workers bring their own).
    session.reset_solver();

    // Seed task: the caller's prefix ids are main-pool ids, valid verbatim
    // in every forked worker pool — no translation needed.
    let shared = session.pool.len() as u32;
    let mut vals: Vec<(FieldId, TermId)> = initial_values.to_vec();
    vals.sort_by_key(|&(f, _)| f);
    let frontier = Frontier::new(Task {
        node: start,
        trace: Vec::new(),
        pool: None,
        constraints: base_constraints.to_vec(),
        values: vals,
    });
    let budget = ExploreBudget::new(config, t0);
    let scope: Option<String> = ctx.scope().map(str::to_string);
    let exchange = clause_exchange(threads);
    let (tx, rx) = mpsc::channel::<(usize, RawPath)>();

    let main_pool = &session.pool;
    // The main thread drains the path channel *inside* the scope, while
    // workers are still exploring — collecting (and allocating for) the
    // result set used to sit on the critical join path.
    let (outputs, mut tagged): (Vec<WorkerOutput>, Vec<(usize, RawPath)>) =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|wid| {
                    let frontier = &frontier;
                    let budget = &budget;
                    let scope = scope.as_deref();
                    let exchange = exchange.as_ref();
                    let tx = tx.clone();
                    s.spawn(move || {
                        worker_loop(
                            cfg, main_pool, targets, config, frontier, budget, scope, exchange,
                            tx, wid,
                        )
                    })
                })
                .collect();
            // Workers hold the remaining senders; the drain ends when the
            // last one exits its loop and drops its clone.
            drop(tx);
            let tagged: Vec<(usize, RawPath)> = rx.iter().collect();
            let outputs = handles
                .into_iter()
                .map(|h| h.join().expect("parallel exploration worker panicked"))
                .collect();
            (outputs, tagged)
        });
    let t_explore = t0.elapsed();

    // ---- deterministic merge -------------------------------------------
    // Sort the (worker, path) pairs into sequential DFS order *before*
    // translating into the main pool: translation order decides main-pool
    // term-id assignment, so sorting first makes those ids — and every
    // downstream rendering — independent of scheduling.
    let mut mspan = obs::span("parallel.merge");
    tagged.sort_by(|a, b| cmp_paths(cfg, &a.1.path, &b.1.path));
    if let Some(max) = config.max_templates {
        // Workers may overshoot the cap by in-flight emissions; keep the
        // first `max` in DFS order so the capped output is deterministic.
        tagged.truncate(max);
    }
    let mut caches: Vec<HashMap<TermId, TermId>> = (0..threads).map(|_| HashMap::new()).collect();
    let mut merged: Vec<RawPath> = Vec::with_capacity(tagged.len());
    for (w, p) in tagged {
        let wpool = &outputs[w].session.pool;
        let constraints = p
            .constraints
            .iter()
            .map(|&c| session.pool.import_from(wpool, c, shared, &mut caches[w]))
            .collect();
        let final_values = p
            .final_values
            .iter()
            .map(|&(f, t)| (f, session.pool.import_from(wpool, t, shared, &mut caches[w])))
            .collect();
        merged.push(RawPath {
            path: p.path,
            constraints,
            final_values,
        });
    }

    // Hash obligations: stand-in names are content-keyed, so every worker
    // mints identical names for identical applications; sorting by name
    // makes the import order (and dedup survivor) deterministic.
    let mut defs: Vec<(String, usize, HashDef)> = Vec::new();
    for (w, out) in outputs.iter().enumerate() {
        for d in out.ctx.hash_defs() {
            defs.push((var_term_name(&out.session.pool, d.out), w, d.clone()));
        }
    }
    defs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    for (_, w, d) in defs {
        let wpool = &outputs[w].session.pool;
        let keys = d
            .keys
            .iter()
            .map(|&k| session.pool.import_from(wpool, k, shared, &mut caches[w]))
            .collect();
        let out_t = session.pool.import_from(wpool, d.out, shared, &mut caches[w]);
        ctx.add_hash_def(HashDef {
            alg: d.alg,
            width: d.width,
            keys,
            out: out_t,
        });
    }
    ctx.register_pool_vars(&mut session.pool, &cfg.fields);
    mspan.field("paths", merged.len() as u64);
    drop(mspan);

    // ---- counter merge --------------------------------------------------
    let mut stats = ExecStats::default();
    for out in &outputs {
        stats.paths_explored += out.session.exec.paths_explored;
        stats.valid_paths += out.session.exec.valid_paths;
        stats.pruned += out.session.exec.pruned;
        stats.smt_checks += out.session.exec.smt_checks;
        stats.cache_probes += out.session.exec.cache_probes;
        stats.cache_hits += out.session.exec.cache_hits;
        stats.batched_probes += out.session.exec.batched_probes;
        stats.arm_batches += out.session.exec.arm_batches;
        stats.backend_routed_smt += out.session.exec.backend_routed_smt;
        stats.backend_routed_bdd += out.session.exec.backend_routed_bdd;
        stats.bdd_probes += out.session.exec.bdd_probes;
        stats.bdd_nodes += out.session.exec.bdd_nodes;
        stats.timed_out |= out.session.exec.timed_out;
        session.merge_worker(&out.session.exec, &out.session.solver_stats(), &out.session.sat_stats());
    }
    stats.timed_out |= budget.timed_out();
    stats.elapsed = t0.elapsed();
    if std::env::var_os("MEISSA_PAR_DEBUG").is_some() {
        let busy: f64 = outputs.iter().map(|o| o.busy.as_secs_f64()).sum();
        let tasks: usize = outputs.iter().map(|o| o.tasks).sum();
        eprintln!(
            "explore_parallel: threads={threads} explore={:.1}ms merge={:.1}ms \
             worker_busy_sum={:.1}ms tasks={tasks} paths={}",
            t_explore.as_secs_f64() * 1e3,
            (t0.elapsed() - t_explore).as_secs_f64() * 1e3,
            busy * 1e3,
            merged.len()
        );
    }
    (merged, stats)
}

fn var_term_name(pool: &TermPool, t: TermId) -> String {
    match *pool.node(t) {
        TermNode::BvVar(v) => pool.var_name(v).to_string(),
        _ => String::new(),
    }
}

/// One independent exploration job for [`explore_batch`]: Algorithm 2's
/// per-group interior searches and per-seed extensions, whose prefix terms
/// live in the *main* pool.
pub(crate) struct ExploreJob {
    pub start: NodeId,
    pub targets: HashSet<NodeId>,
    /// Base constraints (main-pool ids).
    pub base: Vec<TermId>,
    /// Initial value-stack seed (main-pool ids).
    pub seeds: Vec<(FieldId, TermId)>,
    /// Variable scope for the job's fresh [`SymCtx`].
    pub scope: Option<String>,
}

/// The outcome of one [`ExploreJob`], translated back into the main pool.
pub(crate) struct JobResult {
    /// Valid paths, in the job's own sequential emission order.
    pub paths: Vec<RawPath>,
    /// The job's per-call statistics.
    pub stats: ExecStats,
    /// Hash obligations the job discovered, sorted by stand-in name; the
    /// caller registers them on the context that will re-encode the paths.
    pub hash_defs: Vec<HashDef>,
}

/// Runs a batch of independent exploration jobs across `config.threads`
/// workers and returns results **in job order** — which is also the order
/// their terms are translated into the main pool, so main-pool term-id
/// assignment is schedule-independent. Each job runs sequentially inside
/// one worker (its own emission order is the sequential one); workers pull
/// jobs from a shared counter and keep one warm [`SolveSession`] across the
/// jobs they execute. Worker counters merge into `session` at join.
pub(crate) fn explore_batch(
    cfg: &Cfg,
    session: &mut SolveSession,
    config: &ExecConfig,
    jobs: &[ExploreJob],
) -> Vec<JobResult> {
    struct BatchWorkerOutput {
        session: SolveSession,
        /// (job index, paths in worker pool, stats, defs in worker pool,
        /// verdicts the job decided itself)
        done: Vec<(usize, Vec<RawPath>, ExecStats, Vec<HashDef>, HashMap<u128, bool>)>,
    }
    let mut threads = config.threads.max(1).min(jobs.len().max(1));
    if config.min_paths_per_worker > 0 {
        // Same right-sizing rationale as `explore_parallel` cap (a): a
        // batch worker beyond the core count only adds scheduling latency
        // plus a pool fork. Job-count imbalance is already handled by the
        // shared-counter pull below.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        threads = threads.min(cores);
    }
    let next = AtomicUsize::new(0);
    // Workers see the main cache as a read-only snapshot: each job starts
    // from the same warm base at every thread count, which is what makes
    // per-job probe/hit/engine-call counters — and their batch sums —
    // thread-invariant. What a job decides on top of the base it keeps
    // locally; those discoveries are merged back below in job order.
    let base: Arc<HashMap<u128, bool>> = Arc::new(session.verdict_cache.clone());
    let exchange = clause_exchange(threads);
    let main_pool = &session.pool;
    let shared = main_pool.len() as u32;
    let outputs: Vec<BatchWorkerOutput> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|wid| {
                let next = &next;
                let base = base.clone();
                let exchange = exchange.clone();
                s.spawn(move || {
                    // Fork the main pool once per worker: job prefixes are
                    // main-pool ids and need no translation on the way in.
                    let mut wsession = SolveSession::fork_from(main_pool);
                    wsession.base_verdicts = Some(base);
                    if let Some(ex) = exchange {
                        wsession.attach_exchange(ex, wid);
                    }
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let job = &jobs[i];
                        let mut ctx = SymCtx::new(job.scope.as_deref());
                        let mut paths = Vec::new();
                        let stats = crate::exec::explore_multi(
                            cfg,
                            &mut wsession,
                            &mut ctx,
                            job.start,
                            &job.targets,
                            &job.base,
                            &job.seeds,
                            config,
                            &mut |p| paths.push(p),
                        );
                        let defs: Vec<HashDef> = ctx.hash_defs().cloned().collect();
                        // Emptying the local cache per job keeps every job's
                        // counters a function of (job, base) alone — not of
                        // which jobs this worker happened to run before.
                        let found = wsession.take_discoveries();
                        done.push((i, paths, stats, defs, found));
                    }
                    wsession.share_learned();
                    BatchWorkerOutput {
                        session: wsession,
                        done,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch exploration worker panicked"))
            .collect()
    });

    // Translate back in **job order** (not completion order) so main-pool
    // term-id assignment is deterministic.
    #[allow(clippy::type_complexity)]
    let mut by_job: Vec<Option<(usize, &Vec<RawPath>, ExecStats, &Vec<HashDef>, &HashMap<u128, bool>)>> =
        (0..jobs.len()).map(|_| None).collect();
    for (w, out) in outputs.iter().enumerate() {
        for (i, paths, stats, defs, found) in &out.done {
            by_job[*i] = Some((w, paths, *stats, defs, found));
        }
    }
    let mut caches: Vec<HashMap<TermId, TermId>> = (0..outputs.len()).map(|_| HashMap::new()).collect();
    let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
    for slot in by_job {
        let (w, paths, stats, defs, found) = slot.expect("every job was executed");
        // Fold the job's verdict discoveries into the main cache in job
        // order — a later `explore_batch` (or sequential exploration) in
        // the same session starts from the same warm cache regardless of
        // which worker ran which job. Keys are pool-independent content
        // hashes, so no translation is needed.
        for (&k, &v) in found {
            session.verdict_cache.entry(k).or_insert(v);
        }
        let wpool = &outputs[w].session.pool;
        let paths = paths
            .iter()
            .map(|p| RawPath {
                path: p.path.clone(),
                constraints: p
                    .constraints
                    .iter()
                    .map(|&c| session.pool.import_from(wpool, c, shared, &mut caches[w]))
                    .collect(),
                final_values: p
                    .final_values
                    .iter()
                    .map(|&(f, t)| (f, session.pool.import_from(wpool, t, shared, &mut caches[w])))
                    .collect(),
            })
            .collect();
        let mut hash_defs: Vec<(String, HashDef)> = defs
            .iter()
            .map(|d| {
                let keys = d
                    .keys
                    .iter()
                    .map(|&k| session.pool.import_from(wpool, k, shared, &mut caches[w]))
                    .collect();
                let out_t = session.pool.import_from(wpool, d.out, shared, &mut caches[w]);
                (
                    var_term_name(wpool, d.out),
                    HashDef {
                        alg: d.alg,
                        width: d.width,
                        keys,
                        out: out_t,
                    },
                )
            })
            .collect();
        hash_defs.sort_by(|a, b| a.0.cmp(&b.0));
        results.push(JobResult {
            paths,
            stats,
            hash_defs: hash_defs.into_iter().map(|(_, d)| d).collect(),
        });
    }
    for out in &outputs {
        session.merge_worker(&out.session.exec, &out.session.solver_stats(), &out.session.sat_stats());
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{generate_templates, ExecConfig};
    use meissa_ir::{AExp, BExp, CfgBuilder, CmpOp, FieldId, Stmt};
    use meissa_num::Bv;

    fn field(b: &mut CfgBuilder, name: &str, w: u16) -> FieldId {
        b.fields_mut().intern(name, w)
    }

    /// The exec-test Fig. 7a graph: n×n possible paths, n valid.
    fn fig7_cfg(n: u128) -> Cfg {
        let mut b = CfgBuilder::new();
        let dst = field(&mut b, "dstIP", 32);
        let port = field(&mut b, "egressPort", 9);
        let mac = field(&mut b, "dstMAC", 48);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::Cmp(
                CmpOp::Eq,
                AExp::Field(dst),
                AExp::Const(Bv::new(32, 0x01010101 + i)),
            )));
            b.stmt(Stmt::Assign(port, AExp::Const(Bv::new(9, 1 + i))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        let base = b.frontier();
        let mut arms = Vec::new();
        for i in 0..n {
            b.set_frontier(base.clone());
            b.stmt(Stmt::Assume(BExp::Cmp(
                CmpOp::Eq,
                AExp::Field(port),
                AExp::Const(Bv::new(9, 1 + i)),
            )));
            b.stmt(Stmt::Assign(mac, AExp::Const(Bv::new(48, i + 1))));
            arms.push(b.frontier());
        }
        b.set_frontier(Vec::new());
        b.merge_frontiers(arms);
        b.nop();
        b.finish()
    }

    fn canon(pool: &TermPool, t: TermId) -> String {
        pool.canonical_key(t)
    }

    #[test]
    fn parallel_matches_sequential_set_order_and_counters() {
        let cfg = fig7_cfg(7);
        let mut seq_session = SolveSession::new();
        let seq = generate_templates(&cfg, &mut seq_session, &ExecConfig::default());
        for threads in [2, 4, 8] {
            let mut par_session = SolveSession::new();
            let par = generate_templates(
                &cfg,
                &mut par_session,
                &ExecConfig {
                    threads,
                    // fig7(7) has only 49 possible paths; disable the
                    // worker right-sizing so this test keeps exercising
                    // the full parallel machinery.
                    min_paths_per_worker: 0,
                    ..ExecConfig::default()
                },
            );
            assert_eq!(par.templates.len(), seq.templates.len(), "t={threads}");
            for (a, b) in seq.templates.iter().zip(&par.templates) {
                assert_eq!(a.path, b.path, "same path sequence, same order");
                let ca: Vec<String> = a
                    .constraints
                    .iter()
                    .map(|&c| canon(&seq_session.pool, c))
                    .collect();
                let cb: Vec<String> = b
                    .constraints
                    .iter()
                    .map(|&c| canon(&par_session.pool, c))
                    .collect();
                assert_eq!(ca, cb, "same constraints in the same order");
                let fa: Vec<(FieldId, String)> = a
                    .final_values
                    .iter()
                    .map(|&(f, t)| (f, canon(&seq_session.pool, t)))
                    .collect();
                let fb: Vec<(FieldId, String)> = b
                    .final_values
                    .iter()
                    .map(|&(f, t)| (f, canon(&par_session.pool, t)))
                    .collect();
                assert_eq!(fa, fb, "same final values");
            }
            // Every tree edge is explored exactly once, so merged counters
            // equal the sequential run's.
            assert_eq!(par.stats.valid_paths, seq.stats.valid_paths);
            assert_eq!(par.stats.paths_explored, seq.stats.paths_explored);
            assert_eq!(par.stats.pruned, seq.stats.pruned);
            assert_eq!(par.stats.smt_checks, seq.stats.smt_checks);
            // Each predicate node probes exactly once regardless of which
            // worker visits it (donated prefixes are re-asserted without
            // re-probing); hit counts may differ — workers keep private
            // verdict caches — but probe counts must not.
            assert_eq!(par.stats.cache_probes, seq.stats.cache_probes);
        }
    }

    #[test]
    fn parallel_merges_counters_into_session() {
        let cfg = fig7_cfg(5);
        let mut seq_session = SolveSession::new();
        generate_templates(&cfg, &mut seq_session, &ExecConfig::default());
        let mut par_session = SolveSession::new();
        generate_templates(
            &cfg,
            &mut par_session,
            &ExecConfig {
                threads: 4,
                min_paths_per_worker: 0,
                ..ExecConfig::default()
            },
        );
        assert_eq!(par_session.exec.valid_paths, seq_session.exec.valid_paths);
        assert_eq!(par_session.exec.pruned, seq_session.exec.pruned);
        assert_eq!(
            par_session.solver_stats().checks,
            seq_session.solver_stats().checks
        );
    }

    #[test]
    fn cmp_paths_reconstructs_dfs_order() {
        let cfg = fig7_cfg(3);
        // Collect sequential order, then shuffle deterministically and
        // re-sort: the comparator must restore the original order.
        let mut session = SolveSession::new();
        let out = generate_templates(&cfg, &mut session, &ExecConfig::default());
        let original: Vec<Vec<NodeId>> = out.templates.iter().map(|t| t.path.clone()).collect();
        let mut shuffled = original.clone();
        shuffled.reverse();
        shuffled.swap(0, 1);
        shuffled.sort_by(|a, b| cmp_paths(&cfg, a, b));
        assert_eq!(shuffled, original);
    }

    #[test]
    fn explore_batch_returns_results_in_job_order() {
        let cfg = fig7_cfg(4);
        let dst = cfg.fields.get("dstIP").unwrap();
        let mut session = SolveSession::new();
        let mut ctx = SymCtx::new(None);
        let dst_var = {
            use crate::symstate::ValueStack;
            let v0 = ValueStack::new();
            ctx.read(&mut session.pool, &cfg.fields, &v0, dst)
        };
        // One job per dst pin: each has exactly one valid path.
        let jobs: Vec<ExploreJob> = (0..4u128)
            .map(|i| {
                let k = session.pool.bv_const(Bv::new(32, 0x01010101 + i));
                let pin = session.pool.eq(dst_var, k);
                ExploreJob {
                    start: cfg.entry(),
                    targets: HashSet::new(),
                    base: vec![pin],
                    seeds: Vec::new(),
                    scope: None,
                }
            })
            .collect();
        let config = ExecConfig {
            threads: 4,
            min_paths_per_worker: 0,
            ..ExecConfig::default()
        };
        let results = explore_batch(&cfg, &mut session, &config, &jobs);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.paths.len(), 1, "job {i}: one pinned path");
            // The imported base constraint round-trips to the job's own pin.
            assert_eq!(r.paths[0].constraints[0], jobs[i].base[0]);
        }
        // Worker counters merged: 4 jobs × (1 valid + 3 pruned per table).
        assert_eq!(session.exec.valid_paths, 4);
        assert_eq!(session.exec.pruned, 24);
    }
}
