//! Baseline tools for the §5 comparisons.
//!
//! Each baseline keeps the algorithmic property the paper attributes to the
//! original (see DESIGN.md's substitution table):
//!
//! * [`p4pktgen`] — whole-program symbolic execution with early
//!   termination but **no code summary and no incremental solving** (every
//!   satisfiability query pays a fresh solve); single-pipeline programs
//!   only; targets the reference (BMv2-class) backend, so bf-p4c-class
//!   backend faults never manifest for it.
//! * [`gauntlet`] — the model-based-testing mode: exhaustive possible-path
//!   enumeration with **no early termination** (validity is only decided at
//!   path ends), no summary, no incremental reuse. Modified per §5.1 to
//!   traverse installed table rules. Single-pipeline programs only.
//! * [`aquila`] — a verification tool: per-valid-path checking of every
//!   intent against *source semantics* (so it can never see non-code
//!   bugs), plus a static deparser check. Skips intents involving
//!   checksums ("verifying checksum is not well supported by SMT solvers",
//!   §6).
//! * [`pta`] — PTA requires hand-written unit tests and supports only
//!   P4-14-era programs; it participates in the Table 2 matrix through its
//!   capability profile.

pub mod aquila;
pub mod gauntlet;
pub mod p4pktgen;
pub mod pta;

use meissa_dataplane::Fault;
use std::time::Duration;

/// Outcome of running a tool against a (program, fault) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToolVerdict {
    /// The tool flagged the bug.
    Detected,
    /// The tool ran to completion without flagging anything.
    NotDetected,
    /// The tool cannot handle the program (feature/scale gap).
    Unsupported,
    /// The tool exceeded its time budget.
    Timeout,
}

impl ToolVerdict {
    /// Table 2 cell rendering.
    pub fn symbol(&self) -> &'static str {
        match self {
            ToolVerdict::Detected => "✓",
            ToolVerdict::NotDetected => "✗",
            ToolVerdict::Unsupported => "✗ (unsupported)",
            ToolVerdict::Timeout => "✗ (timeout)",
        }
    }

    /// True for [`ToolVerdict::Detected`].
    pub fn detected(&self) -> bool {
        *self == ToolVerdict::Detected
    }
}

/// A timed tool run (the Fig. 9/10 measurements).
#[derive(Clone, Debug)]
pub struct ToolRun {
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Templates generated (testing tools) or paths checked (verification).
    pub work_items: u64,
    /// SMT checks issued.
    pub smt_checks: u64,
    /// Outcome flags.
    pub verdict: ToolVerdict,
}

/// Faults introduced by the shared p4c frontend manifest on every target;
/// bf-p4c backend faults exist only on the Tofino-class target that
/// p4pktgen (a BMv2 tool) cannot drive.
pub fn fault_is_frontend(f: &Fault) -> bool {
    matches!(
        f,
        Fault::WrongConstant { .. } | Fault::PriorityInverted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_symbols() {
        assert_eq!(ToolVerdict::Detected.symbol(), "✓");
        assert!(ToolVerdict::Detected.detected());
        assert!(!ToolVerdict::Timeout.detected());
    }

    #[test]
    fn frontend_fault_classification() {
        assert!(fault_is_frontend(&Fault::PriorityInverted));
        assert!(fault_is_frontend(&Fault::WrongConstant {
            field: "x".into(),
            xor_mask: 1
        }));
        assert!(!fault_is_frontend(&Fault::ChecksumNotUpdated));
        assert!(!fault_is_frontend(&Fault::SetValidDropped {
            header: "h".into()
        }));
    }
}
