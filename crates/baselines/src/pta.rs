//! The PTA capability model.
//!
//! PTA translates P4 programs with hand-written assumptions/assertions into
//! packet sender and checker programs — "It requires engineers to handwrite
//! unit tests" (§8) and predates P4-16 ("it does not support P4-16 in which
//! bug 7–16 are written", §5.2). There is no algorithm to reproduce: its
//! Table 2 column is a function of which bugs a plausible hand-written unit
//! test catches on a P4-14-era program, which the paper reports directly.
//! This module encodes that capability profile so the Table 2 bench can
//! render the full five-tool matrix.

use crate::ToolVerdict;

/// PTA's verdict for a Table 2 bug index (1-based), per the paper's row.
pub fn detect_bug(bug_index: usize) -> ToolVerdict {
    match bug_index {
        // Hand-written unit tests for parser/ingress logic and deparser
        // emission catch bugs 3, 4, 5.
        3..=5 => ToolVerdict::Detected,
        // Bugs 7–16 are written in P4-16: out of scope for PTA.
        7..=16 => ToolVerdict::Unsupported,
        _ => ToolVerdict::NotDetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_table2_column() {
        let detected: Vec<usize> = (1..=16)
            .filter(|&i| detect_bug(i).detected())
            .collect();
        assert_eq!(detected, vec![3, 4, 5]);
    }
}
