//! The p4pktgen-like baseline.
//!
//! p4pktgen performs whole-program symbolic execution with path pruning but
//! predates both code summary and aggressive incremental-solver reuse, and
//! it drives the BMv2 reference target. Faithful properties kept here:
//!
//! * no code summary — multi-pipeline programs are out of reach
//!   ("Path explosion makes it impracticable to test large-scaled
//!   programs", §8), and we reject them as unsupported like §5.1 does;
//! * non-incremental solving — every early-termination query re-solves the
//!   whole constraint prefix from scratch;
//! * no production rule ingestion for bug hunting — "It also does not test
//!   table rules" (§8): [`detect_bug`] re-compiles the program with an
//!   empty rule set, so rule-configuration bugs are invisible;
//! * BMv2-class target — bf-p4c backend faults never manifest
//!   ([`crate::fault_is_frontend`]).
//!
//! For the Fig. 9 scalability comparison, [`generate`] (like the paper's
//! modified-Gauntlet protocol) runs it over the full rule set so the
//! measured cost difference is algorithmic, not an input-format accident.

use crate::{fault_is_frontend, ToolRun, ToolVerdict};
use meissa_core::{Meissa, MeissaConfig};
use meissa_dataplane::{Fault, SwitchTarget};
use meissa_driver::TestDriver;
use meissa_lang::{compile, CompiledProgram, RuleSet};
use std::time::Duration;

fn config(budget: Option<Duration>) -> MeissaConfig {
    MeissaConfig {
        code_summary: false,
        early_termination: true,
        incremental: false,
        time_budget: budget,
        ..MeissaConfig::default()
    }
}

/// True when the tool can process the program at all.
pub fn supports(program: &CompiledProgram) -> bool {
    program.num_pipes == 1
}

/// Test-case generation timing run (Fig. 9).
pub fn generate(program: &CompiledProgram, budget: Option<Duration>) -> ToolRun {
    if !supports(program) {
        return ToolRun {
            elapsed: Duration::ZERO,
            work_items: 0,
            smt_checks: 0,
            verdict: ToolVerdict::Unsupported,
        };
    }
    let engine = Meissa {
        config: config(budget),
    };
    let out = engine.run(program);
    ToolRun {
        elapsed: out.stats.elapsed,
        work_items: out.stats.valid_paths,
        smt_checks: out.stats.smt_checks,
        verdict: if out.stats.timed_out {
            ToolVerdict::Timeout
        } else {
            ToolVerdict::NotDetected
        },
    }
}

/// Bug-hunting run: generate tests (over an empty rule set) and execute
/// them against the faulty target.
pub fn detect_bug(
    program: &CompiledProgram,
    fault: &Fault,
    budget: Option<Duration>,
) -> ToolVerdict {
    if !supports(program) {
        return ToolVerdict::Unsupported;
    }
    // p4pktgen does not ingest the production rule set.
    let stripped = match compile(&program.source, &RuleSet::new()) {
        Ok(p) => p,
        Err(_) => return ToolVerdict::Unsupported,
    };
    // BMv2 target: backend faults do not exist there.
    let effective_fault = if fault_is_frontend(fault) {
        fault.clone()
    } else {
        Fault::None
    };
    let engine = Meissa {
        config: config(budget),
    };
    let mut run = engine.run(&stripped);
    if run.stats.timed_out {
        return ToolVerdict::Timeout;
    }
    let driver = TestDriver::without_structural_checks(&stripped);
    let target = SwitchTarget::with_fault(&stripped, effective_fault);
    let report = driver.run(&mut run, &target);
    if report.found_bug() {
        ToolVerdict::Detected
    } else {
        ToolVerdict::NotDetected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{parse_program, parse_rules};

    const SINGLE_PIPE: &str = r#"
        header pkt { t: 16; }
        metadata meta { out: 8; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action mark() { hdr.pkt.t = 0x1111; meta.out = 7; }
        action pass() { meta.out = 1; }
        control c {
          if (hdr.pkt.t == 0x0800) { call mark(); } else { call pass(); }
        }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
    "#;

    fn program(src: &str, rules: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap(), &parse_rules(rules).unwrap()).unwrap()
    }

    #[test]
    fn single_pipe_supported_multi_pipe_not() {
        let single = program(SINGLE_PIPE, "");
        assert!(supports(&single));
        let multi_src = r#"
            metadata meta { x: 8; }
            control c { }
            pipeline a { control = c; }
            pipeline b { control = c; }
            topology { start -> a; a -> b; b -> end; }
        "#;
        let multi = program(multi_src, "");
        assert!(!supports(&multi));
        assert_eq!(generate(&multi, None).verdict, ToolVerdict::Unsupported);
        assert_eq!(
            detect_bug(&multi, &Fault::None, None),
            ToolVerdict::Unsupported
        );
    }

    #[test]
    fn generates_templates_on_supported_programs() {
        let p = program(SINGLE_PIPE, "");
        let run = generate(&p, None);
        assert_eq!(run.verdict, ToolVerdict::NotDetected);
        assert_eq!(run.work_items, 2, "two branches");
        assert!(run.smt_checks > 0);
    }

    #[test]
    fn detects_frontend_faults_but_not_backend_faults() {
        let p = program(SINGLE_PIPE, "");
        let frontend = Fault::WrongConstant {
            field: "hdr.pkt.t".into(),
            xor_mask: 0x4,
        };
        assert_eq!(detect_bug(&p, &frontend, None), ToolVerdict::Detected);
        // A backend fault never manifests on the BMv2-class target.
        let backend = Fault::WrongArithComparison { width: 16 };
        assert_eq!(detect_bug(&p, &backend, None), ToolVerdict::NotDetected);
    }
}
