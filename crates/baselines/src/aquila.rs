//! The Aquila-like verifier.
//!
//! Aquila verifies production data plane programs against LPI
//! specifications. This baseline performs the classic path-based check:
//! enumerate every valid path of the *whole* program CFG (no code summary —
//! that is Meissa's contribution) and, for each path and each intent, ask
//! the solver whether some input satisfies `path condition ∧ given ∧
//! ¬expect(final state)`. A SAT answer is a counterexample: a code bug.
//!
//! Faithful limitations:
//!
//! * **source-only**: it reasons over the CFG, so bugs introduced by the
//!   backend/toolchain (Table 2 bugs 7–16) are invisible by construction;
//! * **checksums skipped**: intents whose clauses contain a `csum16`
//!   application are not checked (§6: "verifying checksum is not well
//!   supported by SMT solvers") — which is why bug 6 escapes it;
//! * a static deparser completeness check (valid headers ⊆ emit list),
//!   which is how verification catches Table 2 bug 5.

use crate::{ToolRun, ToolVerdict};
use meissa_core::exec::{explore, ExecConfig, RawPath};
use meissa_core::symstate::{SymCtx, ValueStack};
use meissa_core::SolveSession;
use meissa_ir::{AExp, BExp, HashAlg};
use meissa_lang::CompiledProgram;
use meissa_smt::{CheckResult, Solver};
use std::time::{Duration, Instant};

/// A verification outcome.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// Names of violated intents (with a counterexample each).
    pub violations: Vec<String>,
    /// Valid headers missing from the deparser emit list.
    pub deparser_omissions: Vec<String>,
    /// Intents skipped because they involve checksums.
    pub skipped_intents: Vec<String>,
    /// Timing and work counters.
    pub run: ToolRun,
}

impl VerifyOutcome {
    /// True when verification found any defect.
    pub fn found_bug(&self) -> bool {
        !self.violations.is_empty() || !self.deparser_omissions.is_empty()
    }
}

fn bexp_has_csum(e: &BExp) -> bool {
    fn aexp_has(e: &AExp) -> bool {
        match e {
            AExp::Hash(HashAlg::Csum16, _, _) => true,
            AExp::Hash(_, _, args) => args.iter().any(aexp_has),
            AExp::Field(_) | AExp::Const(_) => false,
            AExp::Bin(_, a, b) => aexp_has(a) || aexp_has(b),
            AExp::Not(a) | AExp::Shl(a, _) | AExp::Shr(a, _) => aexp_has(a),
        }
    }
    match e {
        BExp::True | BExp::False => false,
        BExp::Cmp(_, a, b) => aexp_has(a) || aexp_has(b),
        BExp::Bin(_, a, b) => bexp_has_csum(a) || bexp_has_csum(b),
        BExp::Not(a) => bexp_has_csum(a),
    }
}

/// Verifies a program against its intents with a time budget.
pub fn verify(program: &CompiledProgram, budget: Option<Duration>) -> VerifyOutcome {
    let t0 = Instant::now();
    let cfg = &program.cfg;
    let mut session = SolveSession::new();
    let mut ctx = SymCtx::new(None);

    // Static deparser completeness: every header that *can* be valid at the
    // end of some path must be on the emit list. (Checked per valid path
    // below against final symbolic state.)
    let mut deparser_omissions: Vec<String> = Vec::new();

    // A verification tool re-encodes the program per query: no incremental
    // solver reuse across paths or checks (the optimization Meissa's §3.2
    // early termination leans on).
    let exec_cfg = ExecConfig {
        early_termination: true,
        incremental: false,
        time_budget: budget,
        ..ExecConfig::default()
    };
    let mut paths: Vec<RawPath> = Vec::new();
    let stats = explore(
        cfg,
        &mut session,
        &mut ctx,
        cfg.entry(),
        None,
        &[],
        &exec_cfg,
        &mut |p| paths.push(p),
    );
    // Path enumeration is done; the verification conditions below run on
    // per-query fresh solvers, so only the pool outlives the session.
    let mut pool = session.into_pool();

    let mut violations: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    let mut smt_checks = stats.smt_checks;

    for intent in &program.intents {
        if bexp_has_csum(&intent.given) || bexp_has_csum(&intent.expect) {
            skipped.push(intent.name.clone());
            continue;
        }
        let v0 = ValueStack::new();
        let given = ctx.bexp(&mut pool, &cfg.fields, &v0, &intent.given);
        let mut violated = false;
        for path in &paths {
            if let Some(b) = budget {
                if t0.elapsed() > b {
                    return VerifyOutcome {
                        violations,
                        deparser_omissions,
                        skipped_intents: skipped,
                        run: ToolRun {
                            elapsed: t0.elapsed(),
                            work_items: paths.len() as u64,
                            smt_checks,
                            verdict: ToolVerdict::Timeout,
                        },
                    };
                }
            }
            // Final symbolic state of the path.
            let mut v = ValueStack::new();
            for &(f, t) in &path.final_values {
                v.set(f, t);
            }
            let expect = ctx.bexp(&mut pool, &cfg.fields, &v, &intent.expect);
            let neg = pool.not(expect);
            // One verification condition per (path, intent), discharged on
            // a fresh solver.
            let mut solver = Solver::new();
            solver.push();
            for &c in &path.constraints {
                solver.assert_term(&mut pool, c);
            }
            solver.assert_term(&mut pool, given);
            solver.assert_term(&mut pool, neg);
            let r = solver.check(&mut pool);
            solver.pop();
            smt_checks += 1;
            if r == CheckResult::Sat {
                violated = true;
                break;
            }
        }
        if violated {
            violations.push(intent.name.clone());
        }
    }

    // Deparser completeness per valid path: a header assigned valid in the
    // final symbolic state must be emitted.
    for layout in &program.headers {
        if program.deparse_order.contains(&layout.name) {
            continue;
        }
        let can_be_valid = paths.iter().any(|p| {
            p.final_values.iter().any(|&(f, t)| {
                f == layout.valid
                    && pool.as_const(t).map(|b| !b.is_zero()).unwrap_or(true)
            })
        });
        if can_be_valid {
            deparser_omissions.push(layout.name.clone());
        }
    }

    let timed_out = stats.timed_out;
    VerifyOutcome {
        violations,
        deparser_omissions,
        skipped_intents: skipped,
        run: ToolRun {
            elapsed: t0.elapsed(),
            work_items: paths.len() as u64,
            smt_checks,
            verdict: if timed_out {
                ToolVerdict::Timeout
            } else {
                ToolVerdict::NotDetected
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};

    fn program(src: &str, rules: &str) -> CompiledProgram {
        compile(
            &parse_program(src).unwrap(),
            &parse_rules(rules).unwrap(),
        )
        .unwrap()
    }

    const BASE: &str = r#"
        header pkt { t: 16; }
        metadata meta { out: 8; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action set_out(v: 8) { meta.out = v; }
        action drop_() { meta.drop = 1; }
        table tbl {
          key = { hdr.pkt.t: exact; }
          actions = { set_out; drop_; }
          default_action = drop_();
        }
        control c { apply(tbl); }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
        intent always_decided {
          given true;
          expect meta.drop == 1 || meta.out != 0;
        }
    "#;

    #[test]
    fn clean_program_verifies() {
        let cp = program(BASE, "rules tbl { 1 => set_out(5); 2 => set_out(6); }");
        let out = verify(&cp, None);
        assert!(!out.found_bug(), "{:?}", out.violations);
        assert!(out.run.work_items >= 3);
    }

    #[test]
    fn misconfigured_rule_is_caught() {
        // Rule maps t=1 to out=0: violates the intent.
        let cp = program(BASE, "rules tbl { 1 => set_out(0); }");
        let out = verify(&cp, None);
        assert_eq!(out.violations, vec!["always_decided".to_string()]);
    }

    #[test]
    fn checksum_intents_are_skipped() {
        let src = BASE.replace(
            "intent always_decided {\n          given true;\n          expect meta.drop == 1 || meta.out != 0;\n        }",
            "intent csum_ok { given true; expect meta.out == hash(csum16, 8, hdr.pkt.t); }",
        );
        let cp = program(&src, "rules tbl { 1 => set_out(5); }");
        let out = verify(&cp, None);
        assert_eq!(out.skipped_intents, vec!["csum_ok".to_string()]);
        assert!(!out.found_bug(), "skipped, not violated");
    }

    #[test]
    fn deparser_omission_is_caught_statically() {
        // `extra` is extracted (hence valid) but never emitted.
        let src = BASE
            .replace(
                "header pkt { t: 16; }",
                "header pkt { t: 16; }\nheader extra { x: 8; }",
            )
            .replace("extract(pkt); accept;", "extract(pkt); extract(extra); accept;");
        let cp = program(&src, "rules tbl { 1 => set_out(5); }");
        let out = verify(&cp, None);
        assert_eq!(out.deparser_omissions, vec!["extra".to_string()]);
        assert!(out.found_bug());
    }
}
