//! The Gauntlet-like baseline (model-based testing mode).
//!
//! Gauntlet's model-based testing computes a program's input/output model
//! by enumerating *every possible path* and deciding validity at path ends
//! — no early termination, no summary, no incremental reuse. Per §5.1 the
//! mode was "modified … to traverse all possible table rules to achieve
//! full coverage for fair comparison", which this implementation does
//! natively. It tests both the frontend and the Tofino-class backend (it
//! found the bf-p4c bugs of Table 2), so every fault class manifests — but
//! "its model-based testing does not scale to programs that are large
//! enough" (§6): multi-pipeline programs are unsupported, and single-pipe
//! runs carry a time budget.

use crate::{ToolRun, ToolVerdict};
use meissa_core::{Meissa, MeissaConfig};
use meissa_dataplane::{Fault, SwitchTarget};
use meissa_driver::TestDriver;
use meissa_lang::CompiledProgram;
use std::time::Duration;

fn config(budget: Option<Duration>) -> MeissaConfig {
    MeissaConfig {
        code_summary: false,
        early_termination: false,
        incremental: false,
        time_budget: budget,
        ..MeissaConfig::default()
    }
}

/// True when the tool can process the program.
pub fn supports(program: &CompiledProgram) -> bool {
    program.num_pipes == 1
}

/// Test-case (model) generation timing run (Fig. 9).
pub fn generate(program: &CompiledProgram, budget: Option<Duration>) -> ToolRun {
    if !supports(program) {
        return ToolRun {
            elapsed: Duration::ZERO,
            work_items: 0,
            smt_checks: 0,
            verdict: ToolVerdict::Unsupported,
        };
    }
    let engine = Meissa {
        config: config(budget),
    };
    let out = engine.run(program);
    ToolRun {
        elapsed: out.stats.elapsed,
        work_items: out.stats.valid_paths,
        smt_checks: out.stats.smt_checks,
        verdict: if out.stats.timed_out {
            ToolVerdict::Timeout
        } else {
            ToolVerdict::NotDetected
        },
    }
}

/// Bug-hunting run: build the model, execute against the faulty target.
pub fn detect_bug(
    program: &CompiledProgram,
    fault: &Fault,
    budget: Option<Duration>,
) -> ToolVerdict {
    if !supports(program) {
        return ToolVerdict::Unsupported;
    }
    let engine = Meissa {
        config: config(budget),
    };
    let mut run = engine.run(program);
    if run.stats.timed_out {
        return ToolVerdict::Timeout;
    }
    let driver = TestDriver::without_structural_checks(program);
    let target = SwitchTarget::with_fault(program, fault.clone());
    let report = driver.run(&mut run, &target);
    if report.found_bug() {
        ToolVerdict::Detected
    } else {
        ToolVerdict::NotDetected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROBE: &str = r#"
        header pkt { t: 16; }
        header tag { v: 8; }
        metadata meta { drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action attach() { hdr.tag.setValid(); hdr.tag.v = 9; }
        action skip_() { }
        control c {
          if (hdr.pkt.t == 1) { call attach(); } else { call skip_(); }
        }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); emit(tag); }
    "#;

    fn program(src: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap()
    }

    #[test]
    fn detects_backend_faults_on_small_programs() {
        let p = program(PROBE);
        let fault = Fault::SetValidDropped {
            header: "tag".into(),
        };
        assert_eq!(detect_bug(&p, &fault, None), ToolVerdict::Detected);
        assert_eq!(detect_bug(&p, &Fault::None, None), ToolVerdict::NotDetected);
    }

    #[test]
    fn multi_pipe_is_unsupported() {
        let src = r#"
            metadata meta { x: 8; }
            control c { }
            pipeline a { control = c; }
            pipeline b { control = c; }
            topology { start -> a; a -> b; b -> end; }
        "#;
        let p = program(src);
        assert_eq!(generate(&p, None).verdict, ToolVerdict::Unsupported);
        assert_eq!(
            detect_bug(&p, &Fault::PriorityInverted, None),
            ToolVerdict::Unsupported
        );
    }

    #[test]
    fn explores_every_possible_path() {
        let p = program(PROBE);
        let run = generate(&p, None);
        // Exhaustive enumeration touches both arms regardless of validity.
        assert_eq!(run.verdict, ToolVerdict::NotDetected);
        assert_eq!(run.work_items, 2);
    }
}
