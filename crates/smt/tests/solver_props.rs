//! Property tests for the SMT solver: on randomly generated bitvector
//! formulas, (i) every `Sat` answer's model actually satisfies the formula
//! under concrete evaluation, and (ii) for tiny variable domains the
//! solver's verdict agrees with brute-force enumeration.

use meissa_num::Bv;
use meissa_smt::term::EvalValue;
use meissa_smt::{CheckResult, Solver, TermId, TermPool, VarId};
use meissa_testkit::prop::{self, G};
use meissa_testkit::{prop_assert, prop_assert_eq};

/// A recipe for one random term over two 4-bit variables.
#[derive(Debug, Clone)]
enum Node {
    VarX,
    VarY,
    Const(u8),
    Add(Box<Node>, Box<Node>),
    Sub(Box<Node>, Box<Node>),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Xor(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

#[derive(Debug, Clone)]
enum Formula {
    Eq(Node, Node),
    Ult(Node, Node),
    FAnd(Box<Formula>, Box<Formula>),
    FOr(Box<Formula>, Box<Formula>),
    FNot(Box<Formula>),
}

/// A random term over two 4-bit variables; `depth` bounds recursion, and
/// leaves come first in the choice order so shrinking collapses subtrees.
fn arb_node(g: &mut G, depth: u32) -> Node {
    let choices = if depth == 0 { 3 } else { 9 };
    match g.index(choices) {
        0 => Node::VarX,
        1 => Node::VarY,
        2 => Node::Const(g.range(0..16u8)),
        3 => Node::Add(
            Box::new(arb_node(g, depth - 1)),
            Box::new(arb_node(g, depth - 1)),
        ),
        4 => Node::Sub(
            Box::new(arb_node(g, depth - 1)),
            Box::new(arb_node(g, depth - 1)),
        ),
        5 => Node::And(
            Box::new(arb_node(g, depth - 1)),
            Box::new(arb_node(g, depth - 1)),
        ),
        6 => Node::Or(
            Box::new(arb_node(g, depth - 1)),
            Box::new(arb_node(g, depth - 1)),
        ),
        7 => Node::Xor(
            Box::new(arb_node(g, depth - 1)),
            Box::new(arb_node(g, depth - 1)),
        ),
        _ => Node::Not(Box::new(arb_node(g, depth - 1))),
    }
}

fn arb_formula(g: &mut G, depth: u32) -> Formula {
    let choices = if depth == 0 { 2 } else { 5 };
    match g.index(choices) {
        0 => Formula::Eq(arb_node(g, 3), arb_node(g, 3)),
        1 => Formula::Ult(arb_node(g, 3), arb_node(g, 3)),
        2 => Formula::FAnd(
            Box::new(arb_formula(g, depth - 1)),
            Box::new(arb_formula(g, depth - 1)),
        ),
        3 => Formula::FOr(
            Box::new(arb_formula(g, depth - 1)),
            Box::new(arb_formula(g, depth - 1)),
        ),
        _ => Formula::FNot(Box::new(arb_formula(g, depth - 1))),
    }
}

fn build_node(pool: &mut TermPool, n: &Node) -> TermId {
    match n {
        Node::VarX => pool.var("x", 4),
        Node::VarY => pool.var("y", 4),
        Node::Const(c) => pool.bv_const(Bv::new(4, *c as u128)),
        Node::Add(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.add(a, b)
        }
        Node::Sub(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.sub(a, b)
        }
        Node::And(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.bv_and(a, b)
        }
        Node::Or(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.bv_or(a, b)
        }
        Node::Xor(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.bv_xor(a, b)
        }
        Node::Not(a) => {
            let a = build_node(pool, a);
            pool.bv_not(a)
        }
    }
}

fn build_formula(pool: &mut TermPool, f: &Formula) -> TermId {
    match f {
        Formula::Eq(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.eq(a, b)
        }
        Formula::Ult(a, b) => {
            let (a, b) = (build_node(pool, a), build_node(pool, b));
            pool.ult(a, b)
        }
        Formula::FAnd(a, b) => {
            let (a, b) = (build_formula(pool, a), build_formula(pool, b));
            pool.and(a, b)
        }
        Formula::FOr(a, b) => {
            let (a, b) = (build_formula(pool, a), build_formula(pool, b));
            pool.or(a, b)
        }
        Formula::FNot(a) => {
            let a = build_formula(pool, a);
            pool.not(a)
        }
    }
}

fn eval_under(pool: &TermPool, t: TermId, x: u128, y: u128) -> bool {
    let env = |v: VarId| match pool.var_name(v) {
        "x" => Some(Bv::new(4, x)),
        "y" => Some(Bv::new(4, y)),
        _ => None,
    };
    match pool.eval(t, &env) {
        Some(EvalValue::Bool(b)) => b,
        other => panic!("expected boolean evaluation, got {other:?}"),
    }
}

/// On Sat, the extracted model satisfies the formula; on Unsat, no
/// (x, y) ∈ 16×16 satisfies it.
#[test]
fn solver_agrees_with_brute_force() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let f = arb_formula(g, 2);
        let mut pool = TermPool::new();
        // Force both variables to exist so models always carry them.
        pool.var("x", 4);
        pool.var("y", 4);
        let t = build_formula(&mut pool, &f);

        let mut solver = Solver::new();
        solver.push();
        solver.assert_term(&mut pool, t);
        let verdict = solver.check(&mut pool);

        let brute = (0u128..16)
            .flat_map(|x| (0u128..16).map(move |y| (x, y)))
            .find(|&(x, y)| eval_under(&pool, t, x, y));

        match verdict {
            CheckResult::Sat => {
                let m = solver.model(&pool);
                let x = m.value_of("x").unwrap().val();
                let y = m.value_of("y").unwrap().val();
                prop_assert!(
                    eval_under(&pool, t, x, y),
                    "model (x={x}, y={y}) must satisfy the formula"
                );
                prop_assert!(brute.is_some(), "brute force agrees Sat");
            }
            CheckResult::Unsat => {
                prop_assert!(brute.is_none(), "brute force agrees Unsat");
            }
        }
        Ok(())
    });
}

/// Batched assumption probing is observationally identical to individual
/// probing: for a random prefix formula and a random set of sibling arms,
/// `check_under(arms)` returns exactly the verdicts that a fresh solver
/// produces by probing each arm with its own `push/assert/check/pop`
/// cycle — and the batch leaves the assertion stack's own verdict intact.
#[test]
fn check_under_matches_individual_probes() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let prefix = arb_formula(g, 2);
        let n_arms = g.range(1..5usize);
        let arms: Vec<Formula> = (0..n_arms).map(|_| arb_formula(g, 2)).collect();

        let mut pool = TermPool::new();
        pool.var("x", 4);
        pool.var("y", 4);
        let t_prefix = build_formula(&mut pool, &prefix);
        let t_arms: Vec<TermId> = arms.iter().map(|a| build_formula(&mut pool, a)).collect();

        // Batched: one solver, one check_under over all sibling arms.
        let mut batched = Solver::new();
        batched.push();
        batched.assert_term(&mut pool, t_prefix);
        let before = batched.check(&mut pool);
        let got = batched.check_under(&mut pool, &t_arms);
        let after = batched.check(&mut pool);
        prop_assert_eq!(before, after, "check_under must not disturb the stack");

        // Individual: a fresh solver probing each arm in its own frame.
        let mut single = Solver::new();
        single.push();
        single.assert_term(&mut pool, t_prefix);
        let mut want = Vec::with_capacity(t_arms.len());
        for &arm in &t_arms {
            single.push();
            single.assert_term(&mut pool, arm);
            want.push(single.check(&mut pool));
            single.pop();
        }

        prop_assert_eq!(&got, &want, "batched verdicts must match individual probes");
        // Counter parity: each batched arm costs exactly one `checks`, like
        // an individual probe (Fig. 11b comparability).
        prop_assert_eq!(
            batched.stats.checks,
            single.stats.checks + 2,
            "one check per arm plus the two stack checks"
        );
        Ok(())
    });
}

/// Push/pop leaves earlier frames intact: asserting a random formula in
/// a nested frame and popping restores the outer verdict.
#[test]
fn push_pop_isolation() {
    prop::check(prop::DEFAULT_CASES, |gen| {
        let f = arb_formula(gen, 2);
        let g = arb_formula(gen, 2);
        let mut pool = TermPool::new();
        pool.var("x", 4);
        pool.var("y", 4);
        let tf = build_formula(&mut pool, &f);
        let tg = build_formula(&mut pool, &g);

        let mut solver = Solver::new();
        solver.push();
        solver.assert_term(&mut pool, tf);
        let before = solver.check(&mut pool);
        solver.push();
        solver.assert_term(&mut pool, tg);
        let _ = solver.check(&mut pool);
        solver.pop();
        let after = solver.check(&mut pool);
        prop_assert_eq!(before, after, "outer frame verdict must be stable");
        Ok(())
    });
}
