//! An incremental SMT solver for the quantifier-free bitvector fragment that
//! Meissa's constraint language (paper Fig. 3) generates.
//!
//! The paper uses Z3. No SMT solver crate is available in this offline
//! environment, so this crate implements the same decision pipeline Z3 uses
//! for `QF_BV`:
//!
//! 1. [`term`] — hash-consed terms over fixed-width bitvectors and booleans,
//!    with aggressive constant folding and local rewrites at construction.
//! 2. [`blast`] — Tseitin bit-blasting of terms into CNF over fresh SAT
//!    variables (ripple-carry adders, lexicographic comparators, gate
//!    caching so shared subterms are encoded once).
//! 3. [`sat`] — a CDCL SAT solver: two-watched-literal propagation, 1-UIP
//!    conflict learning, VSIDS decision heuristic, phase saving, Luby
//!    restarts, and solving under assumptions.
//! 4. [`solver`] — the incremental façade: `push` / `assert_term` / `check` /
//!    `model` / `pop`. Frames are implemented with activation literals (each
//!    frame's clauses are guarded by a fresh literal assumed during `check`
//!    and permanently disabled on `pop`), the standard incremental-SAT
//!    technique. This is the mechanism behind the paper's observation that
//!    early termination stays cheap because "the solver reuses intermediate
//!    results from previous invocations" (§3.2).
//!
//! # Example
//!
//! ```
//! use meissa_smt::{TermPool, Solver, CheckResult};
//! use meissa_num::Bv;
//!
//! let mut pool = TermPool::new();
//! let mut solver = Solver::new();
//! let x = pool.var("x", 8);
//! let seven = pool.bv_const(Bv::new(8, 7));
//! let sum = pool.add(x, seven);
//! let target = pool.bv_const(Bv::new(8, 3));
//! let c = pool.eq(sum, target);
//!
//! solver.push();
//! solver.assert_term(&mut pool, c);
//! assert_eq!(solver.check(&mut pool), CheckResult::Sat);
//! let model = solver.model(&pool);
//! assert_eq!(model.value_of("x").unwrap(), Bv::new(8, 252)); // 252 + 7 ≡ 3 (mod 256)
//! solver.pop();
//! ```

pub mod bdd;
pub mod blast;
pub mod sat;
pub mod solver;
pub mod term;

pub use sat::{ClauseExchange, PortableLit, SharedClause};
pub use solver::{CheckResult, Model, Solver, SolverStats};
pub use term::{TermId, TermNode, TermPool, VarId};
