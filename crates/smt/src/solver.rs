//! The incremental SMT façade: push / assert / check / model / pop.
//!
//! Frames use *activation literals*: every assertion in frame `i` is added
//! as the clause `¬act_i ∨ assertion`, and `check` solves under the
//! assumptions `{act_1, …, act_k}`. `pop` permanently falsifies the frame's
//! activation literal, disabling its clauses while keeping everything the
//! SAT engine learned about the rest — the incremental reuse the paper's
//! early-termination optimization depends on (§3.2).
//!
//! [`Solver::check_under`] extends the same machinery to *batched sibling
//! probes*: each assumption term is blasted once to a literal (cached in the
//! [`Blaster`], so sibling arms share the prefix's clauses and each other's
//! cones) and checked with one assumption-based SAT call per arm — no frame
//! push/pop, no per-probe guard clause, and every clause the engine learns
//! while refuting one arm stays available to its siblings.

use crate::blast::Blaster;
use crate::sat::{Lit, PortableLit, SatResult, SatSolver, SharedClause};
use crate::term::{EvalValue, TermId, TermPool, VarId};
use meissa_num::Bv;
use meissa_testkit::obs;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Live observability counters (`meissa_smt_*` in the Prometheus
/// exposition). Updated only when [`obs::active`], so the disabled path
/// costs one relaxed atomic load per solver interaction.
struct ObsCounters {
    checks: Arc<obs::Counter>,
    fast_path: Arc<obs::Counter>,
    sat_engine_calls: Arc<obs::Counter>,
    model_reuse: Arc<obs::Counter>,
    sat_propagations: Arc<obs::Counter>,
    sat_conflicts: Arc<obs::Counter>,
    sat_learned: Arc<obs::Gauge>,
}

fn obs_counters() -> &'static ObsCounters {
    static C: OnceLock<ObsCounters> = OnceLock::new();
    C.get_or_init(|| ObsCounters {
        checks: obs::counter("smt.checks"),
        fast_path: obs::counter("smt.fast_path"),
        sat_engine_calls: obs::counter("smt.sat_engine_calls"),
        model_reuse: obs::counter("smt.model_reuse"),
        sat_propagations: obs::counter("sat.propagations"),
        sat_conflicts: obs::counter("sat.conflicts"),
        sat_learned: obs::gauge("sat.learned_clauses"),
    })
}

/// Result of an SMT check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckResult {
    /// The asserted conjunction is satisfiable; a model is available.
    Sat,
    /// The asserted conjunction is unsatisfiable.
    Unsat,
}

/// Counters describing solver work. The "number of SMT calls" series in the
/// paper's Fig. 11b/12b is [`SolverStats::checks`].
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Total `check` invocations (every one counts, including those answered
    /// by the constant-folding fast path).
    pub checks: u64,
    /// Checks answered without invoking the SAT engine (a frame asserted the
    /// literal `false`, detected syntactically).
    pub fast_path: u64,
    /// Checks that reached the SAT engine.
    pub sat_engine_calls: u64,
    /// Batched probes answered Sat by evaluating the arm under the last
    /// model instead of calling the SAT engine (see [`Solver::check_under`]).
    pub model_reuse: u64,
    /// Sat answers.
    pub sat: u64,
    /// Unsat answers.
    pub unsat: u64,
    /// Current frame depth.
    pub depth: u64,
    /// Peak frame depth.
    pub max_depth: u64,
}

struct Frame {
    activation: Lit,
    /// True if some assertion in this frame folded to the constant `false`.
    poisoned: bool,
    /// Order-independent fold (wrapping sum of mixed term hashes) of every
    /// assertion that reached the clause database in this frame, plus the
    /// count. Together they give the frame's *content key*, which lends the
    /// activation literal portable identity: two solvers whose open frames
    /// guard the same assertion set agree on what `¬act ∨ …` means, so
    /// learned clauses mentioning the activation stay exportable.
    content: u64,
    content_len: u64,
}

/// Namespace tag for one asserted term inside a frame-content fold.
const ASSERT_TAG: u64 = 0x6173;
/// Namespace tag for frame-activation atoms in the portable-atom keyspace.
const FRAME_TAG: u64 = 0x6672;

fn frame_key(f: &Frame) -> u64 {
    crate::blast::portable_key(f.content, FRAME_TAG, f.content_len)
}

/// An incremental bitvector SMT solver.
pub struct Solver {
    sat: SatSolver,
    blaster: Option<Blaster>, // lazily created so `Solver::new` needs no pool
    frames: Vec<Frame>,
    /// Model cache from the last Sat answer.
    last_model: HashMap<VarId, Bv>,
    /// How many leading frames `last_model` is known to satisfy (every
    /// asserted term in `frames[..model_depth]` evaluates to true under the
    /// model, extended by zero for variables it does not mention). When
    /// `model_depth == frames.len()`, a batched probe whose arm also
    /// evaluates to true is Sat without touching the SAT engine.
    model_depth: usize,
    /// Statistics.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with an empty assertion stack.
    pub fn new() -> Self {
        Solver {
            sat: SatSolver::new(),
            blaster: None,
            frames: Vec::new(),
            last_model: HashMap::new(),
            model_depth: 0,
            stats: SolverStats::default(),
        }
    }

    fn blaster_mut(&mut self) -> (&mut Blaster, &mut SatSolver) {
        if self.blaster.is_none() {
            self.blaster = Some(Blaster::new(&mut self.sat));
        }
        (self.blaster.as_mut().unwrap(), &mut self.sat)
    }

    /// Opens a new assertion frame.
    pub fn push(&mut self) {
        // An empty frame is vacuously satisfied: a model certifying every
        // frame so far still certifies the stack after the push.
        let extend_model = self.model_depth == self.frames.len();
        let (_, sat) = self.blaster_mut();
        let act = Lit::new(sat.new_var(), true);
        self.frames.push(Frame {
            activation: act,
            poisoned: false,
            content: 0,
            content_len: 0,
        });
        if extend_model {
            self.model_depth = self.frames.len();
        }
        self.stats.depth = self.frames.len() as u64;
        self.stats.max_depth = self.stats.max_depth.max(self.stats.depth);
    }

    /// Discards the most recent frame and all its assertions.
    ///
    /// # Panics
    /// Panics if no frame is open.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        // Permanently disable this frame's guarded clauses.
        self.sat.add_clause(&[frame.activation.neg()]);
        self.model_depth = self.model_depth.min(self.frames.len());
        self.stats.depth = self.frames.len() as u64;
    }

    /// Current frame depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Asserts a boolean term in the current frame.
    ///
    /// # Panics
    /// Panics if no frame is open (assert into frame 0 is intentionally
    /// unsupported: Meissa's executor always brackets assertions).
    pub fn assert_term(&mut self, pool: &mut TermPool, t: TermId) {
        assert!(
            !self.frames.is_empty(),
            "assert_term without an open frame; call push() first"
        );
        if let Some(b) = pool.as_bool_const(t) {
            if !b {
                self.frames.last_mut().unwrap().poisoned = true;
                self.model_depth = self.model_depth.min(self.frames.len() - 1);
            }
            return;
        }
        // Model validity: the last model keeps certifying the full stack
        // only if it also satisfies the new assertion.
        if self.model_depth == self.frames.len() && !self.model_certifies(pool, t) {
            self.model_depth = self.frames.len() - 1;
        }
        let frame = self.frames.last_mut().unwrap();
        frame.content = frame
            .content
            .wrapping_add(crate::blast::portable_key(pool.term_hash(t), ASSERT_TAG, 0));
        frame.content_len += 1;
        let act = frame.activation;
        let (blaster, sat) = self.blaster_mut();
        let lit = blaster.bool_lit(pool, sat, t);
        sat.add_clause(&[act.neg(), lit]);
    }

    /// Does the last captured model (zero-extended over variables it does
    /// not assign) evaluate `t` to true? Evaluation is on the *term*, so it
    /// is sound regardless of what has been bit-blasted since the capture.
    fn model_certifies(&self, pool: &TermPool, t: TermId) -> bool {
        let model = &self.last_model;
        let env = move |v: VarId| {
            Some(
                model
                    .get(&v)
                    .copied()
                    .unwrap_or_else(|| Bv::zero(pool.var_width(v))),
            )
        };
        matches!(pool.eval(t, &env), Some(EvalValue::Bool(true)))
    }

    /// Checks satisfiability of the conjunction of all live assertions.
    pub fn check(&mut self, pool: &mut TermPool) -> CheckResult {
        if !obs::active() {
            return self.check_inner(pool);
        }
        let (before, sat_before) = (self.stats, self.sat.stats);
        let out = self.check_inner(pool);
        self.publish_obs(before, sat_before);
        out
    }

    /// Publishes the counter deltas of one solver interaction to the
    /// observability registry. Only called when obs is enabled.
    fn publish_obs(&self, before: SolverStats, sat_before: crate::sat::SatStats) {
        let c = obs_counters();
        c.checks.add(self.stats.checks - before.checks);
        c.fast_path.add(self.stats.fast_path - before.fast_path);
        c.sat_engine_calls.add(self.stats.sat_engine_calls - before.sat_engine_calls);
        c.model_reuse.add(self.stats.model_reuse - before.model_reuse);
        let sat = self.sat.stats;
        c.sat_propagations.add(sat.propagations - sat_before.propagations);
        c.sat_conflicts.add(sat.conflicts - sat_before.conflicts);
        c.sat_learned.set(sat.learned);
    }

    fn check_inner(&mut self, pool: &mut TermPool) -> CheckResult {
        self.stats.checks += 1;
        if self.frames.iter().any(|f| f.poisoned) {
            self.stats.fast_path += 1;
            self.stats.unsat += 1;
            return CheckResult::Unsat;
        }
        let assumptions: Vec<Lit> = self.frames.iter().map(|f| f.activation).collect();
        self.stats.sat_engine_calls += 1;
        match self.sat.solve(&assumptions) {
            SatResult::Sat => {
                self.stats.sat += 1;
                self.capture_model(pool);
                CheckResult::Sat
            }
            SatResult::Unsat => {
                self.stats.unsat += 1;
                CheckResult::Unsat
            }
        }
    }

    fn capture_model(&mut self, pool: &TermPool) {
        self.last_model.clear();
        if let Some(blaster) = &self.blaster {
            for v in pool.all_vars() {
                let w = pool.var_width(v);
                if let Some(bv) = blaster.read_var(&self.sat, v, w) {
                    self.last_model.insert(v, bv);
                }
            }
        }
        // A freshly captured model satisfies every open frame by
        // construction (the engine solved under all frame activations).
        self.model_depth = self.frames.len();
    }

    /// Checks the live assertion stack extended by each assumption term
    /// *independently* — one verdict per term, as if each were probed with
    /// its own `push / assert_term / check / pop` cycle, but in a single
    /// batched solver interaction:
    ///
    /// * each arm is blasted once to a literal (cached in the [`Blaster`],
    ///   so sibling arms share the prefix's clauses and each other's cones)
    ///   and solved under `{frame activations} ∪ {arm literal}` — no frame
    ///   churn, no per-probe guard clause, and no dead pop unit clauses;
    /// * clauses the engine learns refuting one arm stay active for its
    ///   siblings (a `pop` would have kept them too, but attached to a
    ///   now-falsified activation var the engine still has to track);
    /// * when the most recent model already satisfies every open frame, an
    ///   arm the model also satisfies is answered `Sat` by term evaluation
    ///   alone (`model_reuse` in the stats), skipping the engine entirely.
    ///
    /// Every arm counts one `checks`, exactly like an individual `check`,
    /// so batch-shape changes never move the Fig. 11b metric.
    pub fn check_under(&mut self, pool: &mut TermPool, assumptions: &[TermId]) -> Vec<CheckResult> {
        if !obs::active() {
            return self.check_under_inner(pool, assumptions);
        }
        let (before, sat_before) = (self.stats, self.sat.stats);
        let out = self.check_under_inner(pool, assumptions);
        self.publish_obs(before, sat_before);
        out
    }

    fn check_under_inner(
        &mut self,
        pool: &mut TermPool,
        assumptions: &[TermId],
    ) -> Vec<CheckResult> {
        let poisoned = self.frames.iter().any(|f| f.poisoned);
        let mut out = Vec::with_capacity(assumptions.len());
        for &t in assumptions {
            self.stats.checks += 1;
            if poisoned || pool.as_bool_const(t) == Some(false) {
                self.stats.fast_path += 1;
                self.stats.unsat += 1;
                out.push(CheckResult::Unsat);
                continue;
            }
            if self.model_depth == self.frames.len() && self.model_certifies(pool, t) {
                self.stats.model_reuse += 1;
                self.stats.sat += 1;
                out.push(CheckResult::Sat);
                continue;
            }
            let mut assume: Vec<Lit> = self.frames.iter().map(|f| f.activation).collect();
            if pool.as_bool_const(t) != Some(true) {
                let (blaster, sat) = self.blaster_mut();
                let lit = blaster.bool_lit(pool, sat, t);
                if lit == blaster.false_lit() {
                    // The blasted cone folded to constant false.
                    self.stats.fast_path += 1;
                    self.stats.unsat += 1;
                    out.push(CheckResult::Unsat);
                    continue;
                }
                if lit != blaster.true_lit() {
                    assume.push(lit);
                }
            }
            self.stats.sat_engine_calls += 1;
            match self.sat.solve(&assume) {
                SatResult::Sat => {
                    self.stats.sat += 1;
                    self.capture_model(pool);
                    out.push(CheckResult::Sat);
                }
                SatResult::Unsat => {
                    self.stats.unsat += 1;
                    out.push(CheckResult::Unsat);
                }
            }
        }
        out
    }

    /// The model from the most recent `Sat` answer.
    ///
    /// Variables that never appeared in any asserted constraint are
    /// unconstrained and default to zero.
    pub fn model(&self, pool: &TermPool) -> Model {
        let mut values = HashMap::new();
        for v in pool.all_vars() {
            let w = pool.var_width(v);
            let bv = self.last_model.get(&v).copied().unwrap_or(Bv::zero(w));
            values.insert(pool.var_name(v).to_string(), bv);
        }
        Model { values }
    }

    /// Underlying SAT statistics (propagations, conflicts, learned clauses).
    pub fn sat_stats(&self) -> crate::sat::SatStats {
        self.sat.stats
    }

    /// Exports this solver's learned clauses in solver-portable form for
    /// the clause exchange (see [`crate::sat::ClauseExchange`]).
    ///
    /// Only clauses of at most `max_lits` literals whose *every* variable
    /// has a portable identity ([`Blaster::portable_atoms`]) are exported.
    /// That filter is the soundness argument: activation literals and
    /// anonymous Tseitin gates are excluded, so a surviving clause is a
    /// consequence of gate definitions plus permanent units alone — a
    /// theory lemma over shared term content, valid in any solver that
    /// blasts the same (content-hashed) terms. Literals are sorted by key,
    /// making equal lemmas byte-equal for cheap dedup at the publish site.
    pub fn export_portable(&self, max_lits: usize) -> Vec<Vec<PortableLit>> {
        let Some(blaster) = &self.blaster else {
            return Vec::new();
        };
        // One SAT var can carry several portable identities (shared cones);
        // keep the smallest key so the choice is deterministic. Open frames'
        // activation vars are keyed by frame content: a learned clause is
        // monotone in the database, so keying with the frame's content *at
        // export time* (a superset of what the clause actually used) keeps
        // the exported implication valid for any matching importer frame.
        let mut map: HashMap<crate::sat::Var, (u64, bool)> = HashMap::new();
        let frames = self
            .frames
            .iter()
            .map(|f| (f.activation.var(), frame_key(f), f.activation.positive()));
        for (v, key, pol) in blaster.portable_atoms().chain(frames) {
            match map.get(&v) {
                Some(&(k, _)) if k <= key => {}
                _ => {
                    map.insert(v, (key, pol));
                }
            }
        }
        let units = self.sat.learned_unit_facts().iter().map(std::slice::from_ref);
        let mut out = Vec::new();
        for clause in units.chain(self.sat.learned_clauses()) {
            if clause.len() > max_lits {
                continue;
            }
            let mut plits = Vec::with_capacity(clause.len());
            let mut portable = true;
            for l in clause {
                match map.get(&l.var()) {
                    Some(&(key, pol)) => plits.push((key, l.positive() == pol)),
                    None => {
                        portable = false;
                        break;
                    }
                }
            }
            if portable {
                plits.sort_unstable();
                plits.dedup();
                out.push(plits);
            }
        }
        out
    }

    /// Translates portable clauses into this solver's own encoding and adds
    /// them to the clause database. Returns `(imported, deferred)`: clauses
    /// referencing an atom this solver has not blasted yet cannot be
    /// translated and are handed back for a later retry (the atom map only
    /// grows). Imported clauses are theory lemmas, so they never change a
    /// verdict — they only let the engine skip re-deriving a conflict.
    pub fn import_portable(&mut self, clauses: Vec<SharedClause>) -> (usize, Vec<SharedClause>) {
        if clauses.is_empty() {
            return (0, clauses);
        }
        let Some(blaster) = &self.blaster else {
            return (0, clauses);
        };
        let mut map: HashMap<u64, Lit> = HashMap::new();
        let frames = self
            .frames
            .iter()
            .map(|f| (f.activation.var(), frame_key(f), f.activation.positive()));
        for (v, key, pol) in blaster.portable_atoms().chain(frames) {
            map.entry(key).or_insert_with(|| Lit::new(v, pol));
        }
        let mut imported = 0usize;
        let mut deferred = Vec::new();
        for c in clauses {
            let lits: Option<Vec<Lit>> = c
                .lits
                .iter()
                .map(|&(key, val)| map.get(&key).map(|&l| if val { l } else { l.neg() }))
                .collect();
            match lits {
                Some(ls) => {
                    let ok = self.sat.add_clause(&ls);
                    debug_assert!(ok, "imported theory lemma contradicted the clause database");
                    imported += 1;
                }
                None => deferred.push(c),
            }
        }
        (imported, deferred)
    }
}

/// A satisfying assignment, keyed by variable name.
#[derive(Clone, Debug, Default)]
pub struct Model {
    values: HashMap<String, Bv>,
}

impl Model {
    /// The value assigned to a variable, if the variable exists.
    pub fn value_of(&self, name: &str) -> Option<Bv> {
        self.values.get(name).copied()
    }

    /// Iterates over all (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Bv)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the model is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Builds a model directly from (name, value) pairs (used by tests and
    /// by the concrete-replay path of the test driver).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Bv)>) -> Model {
        Model {
            values: pairs.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assert_check_pop_cycle() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.var("x", 8);
        let k1 = pool.bv_const(Bv::new(8, 10));
        let k2 = pool.bv_const(Bv::new(8, 20));

        s.push();
        let e1 = pool.eq(x, k1);
        s.assert_term(&mut pool, e1);
        assert_eq!(s.check(&mut pool), CheckResult::Sat);
        assert_eq!(s.model(&pool).value_of("x"), Some(Bv::new(8, 10)));

        // Nested frame contradicting the outer one.
        s.push();
        let e2 = pool.eq(x, k2);
        s.assert_term(&mut pool, e2);
        assert_eq!(s.check(&mut pool), CheckResult::Unsat);
        s.pop();

        // Outer frame is intact after the pop.
        assert_eq!(s.check(&mut pool), CheckResult::Sat);
        s.pop();
    }

    #[test]
    fn popped_constraints_do_not_leak() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.var("x", 8);
        let k = pool.bv_const(Bv::new(8, 1));

        s.push();
        let e = pool.eq(x, k);
        s.assert_term(&mut pool, e);
        assert_eq!(s.check(&mut pool), CheckResult::Sat);
        s.pop();

        s.push();
        let ne = pool.ne(x, k);
        s.assert_term(&mut pool, ne);
        assert_eq!(s.check(&mut pool), CheckResult::Sat);
        assert_ne!(s.model(&pool).value_of("x"), Some(Bv::new(8, 1)));
        s.pop();
    }

    #[test]
    fn fast_path_on_constant_false() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        s.push();
        let f = pool.bool_false();
        s.assert_term(&mut pool, f);
        assert_eq!(s.check(&mut pool), CheckResult::Unsat);
        assert_eq!(s.stats.fast_path, 1);
        assert_eq!(s.stats.sat_engine_calls, 0);
        s.pop();
        assert_eq!(s.check_empty_sat(&mut pool), CheckResult::Sat);
    }

    impl Solver {
        fn check_empty_sat(&mut self, pool: &mut TermPool) -> CheckResult {
            self.check(pool)
        }
    }

    #[test]
    fn deep_incremental_stack() {
        // Mimics DFS early termination: a deep push/pop walk with checks at
        // every level, like Alg. 1 exploring a branchy CFG.
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.var("x", 16);
        for round in 0..3 {
            let mut depth = 0;
            for i in 0..20u16 {
                s.push();
                depth += 1;
                // Constrain one nibble-slice per level; all consistent.
                let lo = (i % 4) * 4;
                let slice = pool.extract(x, lo, 4);
                let k = pool.bv_const(Bv::new(4, (i % 16) as u128));
                let e = pool.eq(slice, k);
                s.assert_term(&mut pool, e);
                let r = s.check(&mut pool);
                // Conflicting nibble constraints appear when i and i+4 map
                // to the same slice with different values.
                if i >= 4 {
                    assert_eq!(r, CheckResult::Unsat, "round {round} level {i}");
                    break;
                } else {
                    assert_eq!(r, CheckResult::Sat);
                }
            }
            for _ in 0..depth {
                s.pop();
            }
        }
        assert!(s.stats.checks >= 15);
    }

    #[test]
    fn model_defaults_unconstrained_vars_to_zero() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.var("x", 8);
        let _y = pool.var("unused", 32);
        let k = pool.bv_const(Bv::new(8, 3));
        s.push();
        let e = pool.eq(x, k);
        s.assert_term(&mut pool, e);
        assert_eq!(s.check(&mut pool), CheckResult::Sat);
        let m = s.model(&pool);
        assert_eq!(m.value_of("unused"), Some(Bv::zero(32)));
        assert_eq!(m.value_of("x"), Some(Bv::new(8, 3)));
        assert_eq!(m.value_of("missing"), None);
    }

    #[test]
    fn stats_track_checks() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.var("x", 8);
        let k = pool.bv_const(Bv::new(8, 7));
        s.push();
        let e = pool.eq(x, k);
        s.assert_term(&mut pool, e);
        for _ in 0..5 {
            s.check(&mut pool);
        }
        s.pop();
        assert_eq!(s.stats.checks, 5);
        assert_eq!(s.stats.sat, 5);
        assert_eq!(s.stats.max_depth, 1);
    }

    #[test]
    #[should_panic(expected = "without an open frame")]
    fn assert_without_push_panics() {
        let mut pool = TermPool::new();
        let mut s = Solver::new();
        let t = pool.bool_true();
        s.assert_term(&mut pool, t);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut s = Solver::new();
        s.pop();
    }

    #[test]
    fn portable_clauses_roundtrip_and_preserve_verdicts() {
        // Solver A probes sibling arms under a carry-chain bound, learning
        // conflict clauses (refuting `x^y != 255` under `x+y == 255` needs
        // real search, not just assumption propagation); B blasts the same
        // terms, imports A's portable lemmas, and must answer every probe
        // exactly like a fresh solver.
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let c255 = pool.bv_const(Bv::new(8, 255));
        let sum = pool.add(x, y);
        let bound = pool.eq(sum, c255);
        let xor = pool.bv_xor(x, y);
        let mut arms: Vec<TermId> = vec![pool.ne(xor, c255)];
        for k in 0..8u128 {
            let kk = pool.bv_const(Bv::new(8, 17 * k));
            arms.push(pool.eq(x, kk));
        }

        let mut a = Solver::new();
        a.push();
        a.assert_term(&mut pool, bound);
        let va = a.check_under(&mut pool, &arms);
        let exported = a.export_portable(8);
        assert!(
            !exported.is_empty(),
            "refuting the carry-chain arm must yield portable lemmas"
        );

        let mut b = Solver::new();
        b.push();
        b.assert_term(&mut pool, bound);
        let _ = b.check_under(&mut pool, &arms[1..4]);
        let shared: Vec<SharedClause> = exported
            .iter()
            .map(|lits| SharedClause {
                source: 0,
                lits: lits.clone(),
            })
            .collect();
        let (imported, _deferred) = b.import_portable(shared);
        assert!(imported > 0, "identically blasted terms must translate");
        let vb = b.check_under(&mut pool, &arms);

        let mut fresh = Solver::new();
        fresh.push();
        fresh.assert_term(&mut pool, bound);
        let vf = fresh.check_under(&mut pool, &arms);
        assert_eq!(vb, vf, "imported lemmas must never change a verdict");
        assert_eq!(va, vf);
    }
}
