//! A CDCL SAT solver.
//!
//! MiniSat-style architecture: two-watched-literal unit propagation, 1-UIP
//! conflict analysis with clause learning, VSIDS variable activity with an
//! indexed binary heap, phase saving, Luby-sequence restarts, and solving
//! under assumptions. Assumptions are what the SMT layer uses to implement
//! incrementality, in two roles: each push/pop frame's clauses are guarded
//! by an activation literal assumed during `check` and permanently
//! falsified on `pop`, and `Solver::check_under` probes every sibling
//! branch arm by assuming its (cached) blasted literal — one `solve` per
//! arm over the same clause set, with no frame churn and no falsification.
//!
//! Learned-clause deletion is intentionally omitted: Meissa's queries are
//! many small solves over one shared clause set, not single hard instances,
//! so the learned set stays modest and keeping it *is* the cross-query reuse
//! the paper leans on ("the solver reuses intermediate results from previous
//! invocations", §3.2).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

/// A literal: a variable with a sign. Encoded as `2*var + (negated as 1)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 * 2 + (!positive) as u32)
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// True if the literal is positive (un-negated).
    pub fn positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negation of this literal.
    #[allow(clippy::should_implement_trait)] // domain op, not std::ops::Neg
    pub fn neg(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists.
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.positive() { "" } else { "¬" }, self.var().0)
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
    fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

/// Result of a SAT query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found (read it with [`SatSolver::value`]).
    Sat,
    /// No satisfying assignment exists under the given assumptions.
    Unsat,
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Clone, Copy)]
struct Watch {
    clause: u32,
    /// A literal from the clause; if it is already true the clause is
    /// satisfied and the watch scan can skip loading the clause body.
    blocker: Lit,
}

/// An indexed max-heap over variable activity (the VSIDS order).
#[derive(Default)]
struct OrderHeap {
    heap: Vec<Var>,
    /// Position of each var in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

impl OrderHeap {
    fn ensure(&mut self, nvars: usize) {
        self.pos.resize(nvars, usize::MAX);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.0 as usize] != usize::MAX
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.0 as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top.0 as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.0 as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn update(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v.0 as usize];
        if p != usize::MAX {
            self.sift_up(p, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].0 as usize] > act[self.heap[parent].0 as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].0 as usize] > act[self.heap[best].0 as usize]
            {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].0 as usize] > act[self.heap[best].0 as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].0 as usize] = i;
        self.pos[self.heap[j].0 as usize] = j;
    }
}

/// Statistics counters for a [`SatSolver`].
#[derive(Clone, Copy, Default, Debug)]
pub struct SatStats {
    /// Number of `solve` invocations.
    pub solves: u64,
    /// Total conflicts encountered.
    pub conflicts: u64,
    /// Total decisions made.
    pub decisions: u64,
    /// Total literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently retained.
    pub learned: u64,
}

/// The CDCL SAT solver.
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<u32>, // clause index or u32::MAX
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: OrderHeap,
    polarity: Vec<bool>,
    seen: Vec<bool>,
    /// Indices into `clauses` of learned (conflict-derived) clauses.
    learned_idx: Vec<u32>,
    /// Conflict-derived unit facts, permanent at level 0.
    learned_units: Vec<Lit>,
    /// False once the clause set is unsatisfiable at level 0.
    ok: bool,
    /// Statistics.
    pub stats: SatStats,
}

const NO_REASON: u32 = u32::MAX;
const VAR_DECAY: f64 = 1.0 / 0.95;
const ACT_RESCALE: f64 = 1e100;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: OrderHeap::default(),
            polarity: Vec::new(),
            seen: Vec::new(),
            learned_idx: Vec::new(),
            learned_units: Vec::new(),
            ok: true,
            stats: SatStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.ensure(self.assigns.len());
        self.order.push(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Iterates the retained learned clauses (conflict-derived, non-unit).
    ///
    /// Literal order inside a clause is unspecified — unit propagation
    /// permutes the first two positions to maintain the watch invariant —
    /// but the literal *set* is exactly what conflict analysis derived, so
    /// each clause is a logical consequence of the clause database alone
    /// (assumptions enter solves as decisions and are never resolved away).
    pub fn learned_clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.learned_idx
            .iter()
            .map(move |&i| self.clauses[i as usize].lits.as_slice())
    }

    /// Conflict-derived unit facts (permanent level-0 consequences).
    pub fn learned_unit_facts(&self) -> &[Lit] {
        &self.learned_units
    }

    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().0 as usize];
        if l.positive() {
            v
        } else {
            v.negate()
        }
    }

    /// The model value of a variable after a `Sat` answer.
    pub fn value(&self, v: Var) -> bool {
        // Unassigned variables (possible when they appear in no active
        // clause) default to false.
        matches!(self.assigns[v.0 as usize], LBool::True)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    ///
    /// Adding a clause cancels any in-progress model: the solver backtracks
    /// to level 0 first (callers capture models before adding clauses).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if !self.ok {
            return false;
        }
        // Simplify: drop false lits, drop duplicates, detect tautology.
        let mut cl: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied forever
                LBool::False => continue,   // cannot help
                LBool::Undef => {
                    if cl.contains(&l.neg()) {
                        return true; // tautology
                    }
                    cl.push(l);
                }
            }
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(cl[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(cl);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        let (w0, w1) = (lits[0], lits[1]);
        self.clauses.push(Clause { lits });
        self.watches[w0.neg().index()].push(Watch {
            clause: idx,
            blocker: w1,
        });
        self.watches[w1.neg().index()].push(Watch {
            clause: idx,
            blocker: w0,
        });
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assigns[v] = LBool::from_bool(l.positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict: Option<u32> = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Make sure the false literal is lits[1].
                let false_lit = p.neg();
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.neg().index()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting.
                ws[i].blocker = first;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.enqueue(first, w.clause);
                    i += 1;
                }
            }
            // Put back the (possibly shrunk) watch list, preserving any
            // watchers appended to other lists during the scan.
            let appended = std::mem::replace(&mut self.watches[p.index()], ws);
            self.watches[p.index()].extend(appended);
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > ACT_RESCALE {
            for a in &mut self.activity {
                *a /= ACT_RESCALE;
            }
            self.var_inc /= ACT_RESCALE;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc *= VAR_DECAY;
    }

    /// 1-UIP conflict analysis. Returns (learned clause, backtrack level).
    /// The asserting literal is placed first in the learned clause.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = &self.clauses[conflict as usize];
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..clause.lits.len() {
                let q = clause.lits[k];
                let v = q.var().0 as usize;
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    if self.levels[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Bump all vars in the conflict clause.
            let vars: Vec<Var> = self.clauses[conflict as usize]
                .lits
                .iter()
                .map(|l| l.var())
                .collect();
            for v in vars {
                self.bump_var(v);
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().0 as usize] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            let v = lit.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            debug_assert_ne!(self.reasons[v], NO_REASON);
            conflict = self.reasons[v];
            p = Some(lit);
        }
        learned[0] = p.unwrap().neg();

        // Backtrack level: second-highest level in the learned clause.
        let bt_level = if learned.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.levels[learned[i].var().0 as usize]
                    > self.levels[learned[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            self.levels[learned[1].var().0 as usize]
        };

        for l in &learned {
            self.seen[l.var().0 as usize] = false;
        }
        (learned, bt_level)
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.0 as usize] = l.positive();
            self.assigns[v.0 as usize] = LBool::Undef;
            self.reasons[v.0 as usize] = NO_REASON;
            self.order.push(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.0 as usize] == LBool::Undef {
                return Some(Lit::new(v, self.polarity[v.0 as usize]));
            }
        }
        None
    }

    /// Luby restart sequence (0-indexed): 1, 1, 2, 1, 1, 2, 4, …
    fn luby(i: u64) -> u64 {
        let mut x = i + 1;
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < x {
                k += 1;
            }
            if (1u64 << k) - 1 == x {
                return 1u64 << (k - 1);
            }
            x -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves under the given assumptions.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.stats.solves += 1;
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = 100 * Self::luby(restart_count);
        let mut conflicts_this_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // A conflict below or at the assumption prefix means the
                // assumptions themselves are inconsistent with the clauses.
                let (learned, bt) = self.analyze(conflict);
                // Never backtrack into the middle of the assumption prefix
                // without re-deciding assumptions: backtracking to `bt` is
                // safe because the decision loop re-applies assumptions.
                self.backtrack(bt);
                let asserting = learned[0];
                if learned.len() == 1 {
                    self.learned_units.push(asserting);
                    self.enqueue(asserting, NO_REASON);
                } else {
                    let idx = self.attach_clause(learned);
                    self.learned_idx.push(idx);
                    self.stats.learned += 1;
                    self.enqueue(asserting, idx);
                }
                self.decay_activities();
                if conflicts_this_restart >= conflicts_until_restart {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_until_restart = 100 * Self::luby(restart_count);
                    conflicts_this_restart = 0;
                    self.backtrack(0);
                }
            } else {
                // Apply pending assumptions as decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty decision level
                            // so indices keep aligned with assumptions.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Assumption conflicts with current knowledge.
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }
}

/// A solver-portable literal: a stable 64-bit content key (an input
/// variable's bit or a blasted boolean term, hashed pool-independently)
/// together with the boolean value the literal asserts for it. Portable
/// literals carry *semantic* identity — "term H evaluates to b" — so a
/// clause over them is meaningful to any solver that blasts the same
/// terms, regardless of how its private `Var` numbering came out.
pub type PortableLit = (u64, bool);

/// A learned clause published to the exchange, tagged with the worker that
/// derived it so importers can skip their own exports.
#[derive(Clone, Debug)]
pub struct SharedClause {
    /// Worker id of the publisher.
    pub source: usize,
    /// Disjunction of portable literals.
    pub lits: Vec<PortableLit>,
}

/// A lock-free, fixed-capacity, publish-once clause pool shared between
/// worker solvers.
///
/// Writers claim a slot with a single `fetch_add` and publish through a
/// `OnceLock`; readers walk the contiguous prefix of initialised slots with
/// a private cursor. There are no locks, no blocking, and no allocation
/// after construction (beyond the clauses themselves), so publishing at a
/// retire boundary never stalls another worker. Once the pool is full,
/// further publishes are dropped — the exchange is an accelerator, never a
/// correctness dependency.
pub struct ClauseExchange {
    slots: Vec<OnceLock<SharedClause>>,
    /// Next slot to claim; may run past `slots.len()` once full.
    head: AtomicUsize,
}

impl ClauseExchange {
    /// Creates an exchange holding at most `capacity` clauses.
    pub fn new(capacity: usize) -> Self {
        ClauseExchange {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Publishes a clause. Returns `false` (dropping the clause) when the
    /// pool is full.
    pub fn publish(&self, source: usize, lits: Vec<PortableLit>) -> bool {
        if self.head.load(Ordering::Relaxed) >= self.slots.len() {
            return false;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            return false;
        }
        let _ = self.slots[i].set(SharedClause { source, lits });
        true
    }

    /// Number of slots claimed so far (an upper bound on readable clauses;
    /// a claimed slot may be mid-publish for a moment).
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire).min(self.slots.len())
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads clauses published since `cursor`, skipping those `reader`
    /// itself published, and advances the cursor over the contiguous
    /// initialised prefix (a slot still mid-publish stops the scan so no
    /// clause is ever skipped).
    pub fn read_new(&self, reader: usize, cursor: &mut usize) -> Vec<SharedClause> {
        let end = self.len();
        let mut out = Vec::new();
        while *cursor < end {
            match self.slots[*cursor].get() {
                Some(c) => {
                    if c.source != reader {
                        out.push(c.clone());
                    }
                    *cursor += 1;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut SatSolver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    fn pos(v: Var) -> Lit {
        Lit::new(v, true)
    }

    fn neg(v: Var) -> Lit {
        Lit::new(v, false)
    }

    #[test]
    fn lit_encoding() {
        let v = Var(3);
        let l = Lit::new(v, true);
        assert_eq!(l.var(), v);
        assert!(l.positive());
        assert!(!l.neg().positive());
        assert_eq!(l.neg().neg(), l);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[pos(v[0]), pos(v[1])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.value(v[0]) || s.value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[pos(v[0])]);
        assert!(!s.add_clause(&[neg(v[0])]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[pos(v[0])]);
        s.add_clause(&[neg(v[0]), pos(v[1])]);
        s.add_clause(&[neg(v[1]), pos(v[2])]);
        s.add_clause(&[neg(v[2]), pos(v[3])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.value(v[3]));
    }

    #[test]
    fn xor_chain_requires_search() {
        // Encode x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1: unsatisfiable.
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut SatSolver, a: Var, b: Var| {
            s.add_clause(&[pos(a), pos(b)]);
            s.add_clause(&[neg(a), neg(b)]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xor1(&mut s, v[0], v[2]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[neg(v[0]), pos(v[1])]);
        assert_eq!(s.solve(&[pos(v[0])]), SatResult::Sat);
        assert!(s.value(v[1]));
        s.add_clause(&[neg(v[0]), neg(v[1])]);
        assert_eq!(s.solve(&[pos(v[0])]), SatResult::Unsat);
        // Without the assumption the set stays satisfiable.
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(!s.value(v[0]));
    }

    #[test]
    fn learned_clauses_persist_across_assumption_solves() {
        // The property batched arm probing leans on: clauses learned while
        // refuting one assumption stay in the database and pay off on the
        // next solve. PHP(3,2) guarded by g: solving under `g` is Unsat and
        // learns; re-solving under `g` must replay those learned clauses
        // instead of re-deriving them, i.e. strictly fewer new conflicts.
        let mut s = SatSolver::new();
        let g = s.new_var();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[neg(g), pos(row[0]), pos(row[1])]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[neg(g), neg(p[i][h]), neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(&[pos(g)]), SatResult::Unsat);
        let first = s.stats.conflicts;
        let learned = s.stats.learned;
        assert!(learned > 0, "refutation must learn clauses");
        assert_eq!(s.solve(&[pos(g)]), SatResult::Unsat);
        let second = s.stats.conflicts - first;
        assert!(
            second < first,
            "retained clauses must shortcut the re-solve ({second} vs {first} conflicts)"
        );
        assert!(s.stats.learned >= learned, "learned set is never dropped");
        // The guard stays assumable the other way: nothing was falsified.
        assert_eq!(s.solve(&[neg(g)]), SatResult::Sat);
    }

    #[test]
    fn conflicting_assumptions() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 1);
        assert_eq!(s.solve(&[pos(v[0]), neg(v[0])]), SatResult::Unsat);
        assert_eq!(s.solve(&[pos(v[0])]), SatResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes. Classic small hard instance.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        // Each pigeon in some hole.
        for row in &p {
            s.add_clause(&[pos(row[0]), pos(row[1])]);
        }
        // No two pigeons share a hole.
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[neg(p[i][h]), neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 3]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[pos(row[0]), pos(row[1]), pos(row[2])]);
        }
        for h in 0..3 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[neg(p[i][h]), neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Sat);
        // Verify it really is a matching.
        for h in 0..3 {
            let count = (0..3).filter(|&i| s.value(p[i][h])).count();
            assert!(count <= 1);
        }
        for row in &p {
            assert!(row.iter().any(|&v| s.value(v)));
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[pos(v[0]), pos(v[0]), neg(v[1])]));
        assert!(s.add_clause(&[pos(v[1]), neg(v[1])])); // tautology: ignored
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn solver_is_reusable_across_queries() {
        let mut s = SatSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[pos(v[0]), pos(v[1]), pos(v[2])]);
        for _ in 0..10 {
            assert_eq!(s.solve(&[neg(v[0]), neg(v[1])]), SatResult::Sat);
            assert!(s.value(v[2]));
            assert_eq!(s.solve(&[neg(v[2]), neg(v[1])]), SatResult::Sat);
            assert!(s.value(v[0]));
        }
        assert_eq!(s.stats.solves, 20);
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(SatSolver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn random_3sat_smoke() {
        // Deterministic pseudo-random 3-SAT instances near the phase
        // transition; checks models returned on SAT answers.
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 30;
            let m = 120;
            let mut s = SatSolver::new();
            let vars = lits(&mut s, n);
            let mut clauses = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rng() % n as u64) as usize];
                    let sign = rng() % 2 == 0;
                    c.push(Lit::new(v, sign));
                }
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            if s.solve(&[]) == SatResult::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.value(l.var()) == l.positive()),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    #[test]
    fn learned_clause_accessors_track_stats() {
        // PHP(3,2) guarded: refuting it learns clauses; the accessor view
        // must match the stats counter and every clause must be a
        // consequence (spot-check: re-adding them changes no verdict).
        let mut s = SatSolver::new();
        let g = s.new_var();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[neg(g), pos(row[0]), pos(row[1])]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[neg(g), neg(p[i][h]), neg(p[j][h])]);
                }
            }
        }
        assert_eq!(s.solve(&[pos(g)]), SatResult::Unsat);
        let learned: Vec<Vec<Lit>> = s.learned_clauses().map(|c| c.to_vec()).collect();
        assert_eq!(learned.len() as u64, s.stats.learned);
        assert!(!learned.is_empty() || !s.learned_unit_facts().is_empty());
        assert_eq!(s.solve(&[neg(g)]), SatResult::Sat);
        for c in &learned {
            s.add_clause(c);
        }
        assert_eq!(s.solve(&[neg(g)]), SatResult::Sat);
        assert_eq!(s.solve(&[pos(g)]), SatResult::Unsat);
    }

    #[test]
    fn exchange_publish_read_skips_own() {
        let ex = ClauseExchange::new(4);
        assert!(ex.is_empty());
        assert!(ex.publish(0, vec![(10, true)]));
        assert!(ex.publish(1, vec![(11, false)]));
        assert!(ex.publish(0, vec![(12, true), (13, false)]));
        let mut cur = 0usize;
        let got = ex.read_new(0, &mut cur);
        assert_eq!(got.len(), 1, "reader 0 skips its own two clauses");
        assert_eq!(got[0].source, 1);
        assert_eq!(got[0].lits, vec![(11, false)]);
        assert_eq!(cur, 3);
        // Nothing new: cursor holds, read is empty.
        assert!(ex.read_new(0, &mut cur).is_empty());
        // A different reader starting fresh sees the other side.
        let mut cur1 = 0usize;
        let got1 = ex.read_new(1, &mut cur1);
        assert_eq!(got1.len(), 2);
        assert!(got1.iter().all(|c| c.source == 0));
    }

    #[test]
    fn exchange_full_drops_and_stays_consistent() {
        let ex = ClauseExchange::new(2);
        assert!(ex.publish(0, vec![(1, true)]));
        assert!(ex.publish(0, vec![(2, true)]));
        assert!(!ex.publish(0, vec![(3, true)]), "pool full: dropped");
        assert_eq!(ex.len(), 2);
        let mut cur = 0usize;
        assert_eq!(ex.read_new(9, &mut cur).len(), 2);
    }

    #[test]
    fn exchange_concurrent_publish_read() {
        use std::sync::Arc;
        let ex = Arc::new(ClauseExchange::new(1024));
        std::thread::scope(|s| {
            for wid in 0..4usize {
                let ex = Arc::clone(&ex);
                s.spawn(move || {
                    for i in 0..128u64 {
                        ex.publish(wid, vec![(wid as u64 * 1000 + i, i % 2 == 0)]);
                    }
                });
            }
            let ex2 = Arc::clone(&ex);
            s.spawn(move || {
                let mut cur = 0usize;
                let mut seen = 0usize;
                while seen < 3 * 128 {
                    seen += ex2.read_new(3, &mut cur).len();
                    std::hint::spin_loop();
                }
            });
        });
        assert_eq!(ex.len(), 512);
        let mut cur = 0usize;
        let all = ex.read_new(usize::MAX, &mut cur);
        assert_eq!(all.len(), 512);
    }
}
