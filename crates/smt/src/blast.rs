//! Tseitin bit-blasting of bitvector terms into CNF.
//!
//! Every bitvector term becomes a vector of SAT literals (LSB first), every
//! boolean term a single literal. Gate clauses are *definitions* of fresh
//! variables, so they are added unguarded at level 0 and remain valid across
//! incremental frames; only the top-level asserted literals are guarded by
//! the solver's activation literals. The blaster caches the encoding of every
//! term, so shared subterms — ubiquitous in symbolic execution, where one
//! packet field appears in hundreds of path constraints — are encoded once.

use crate::sat::{Lit, SatSolver};
use crate::term::{BvBinOp, CmpOp, TermId, TermNode, TermPool, VarId};
use meissa_num::Bv;
use std::collections::HashMap;

/// The bit-blaster: caches per-term encodings and variable bit vectors.
pub struct Blaster {
    /// SAT literal that is constrained to be true.
    true_lit: Lit,
    /// Cache: bitvector term → its bits (LSB first).
    bits: HashMap<TermId, Vec<Lit>>,
    /// Cache: boolean term → its literal.
    bools: HashMap<TermId, Lit>,
    /// Bits allocated for each solver variable (for model extraction).
    var_bits: HashMap<VarId, Vec<Lit>>,
    /// Structural content key of every SAT variable this blaster created:
    /// input-variable bits are keyed by the variable's (name-based) term
    /// hash and bit index, gate outputs by their op tag and operand keys.
    /// Blasting the same terms builds the same gate graph in any solver, so
    /// these keys are solver-portable identities — the alphabet of the
    /// learned-clause exchange (see [`Blaster::portable_atoms`]).
    keys: HashMap<crate::sat::Var, u64>,
}

impl Blaster {
    /// Creates a blaster, allocating the constant-true literal in `sat`.
    pub fn new(sat: &mut SatSolver) -> Self {
        let t = Lit::new(sat.new_var(), true);
        sat.add_clause(&[t]);
        let mut keys = HashMap::new();
        keys.insert(t.var(), TRUE_KEY);
        Blaster {
            true_lit: t,
            bits: HashMap::new(),
            bools: HashMap::new(),
            var_bits: HashMap::new(),
            keys,
        }
    }

    /// The literal fixed to true.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The literal fixed to false.
    pub fn false_lit(&self) -> Lit {
        self.true_lit.neg()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        if l == self.true_lit {
            Some(true)
        } else if l == self.false_lit() {
            Some(false)
        } else {
            None
        }
    }

    /// The bits allocated for a solver variable, if it was ever blasted.
    pub fn var_bits(&self, v: VarId) -> Option<&[Lit]> {
        self.var_bits.get(&v).map(|b| b.as_slice())
    }

    /// Reads a variable's value out of the SAT model (after a Sat answer).
    /// Unblasted variables are unconstrained; returns `None` for them.
    pub fn read_var(&self, sat: &SatSolver, v: VarId, width: u16) -> Option<Bv> {
        let bits = self.var_bits.get(&v)?;
        let mut val = 0u128;
        for (i, l) in bits.iter().enumerate() {
            let bit = sat.value(l.var()) == l.positive();
            if bit {
                val |= 1u128 << i;
            }
        }
        Some(Bv::new(width, val))
    }

    // ----- gates ---------------------------------------------------------

    /// The portable key of a literal: its variable's content key, salted
    /// when negated.
    fn lit_key(&self, l: Lit) -> u64 {
        let base = self.keys[&l.var()];
        if l.positive() {
            base
        } else {
            base ^ NEG_SALT
        }
    }

    /// Allocates a fresh gate variable keyed by the gate's op tag and its
    /// operand keys, so the same gate built in another solver over the same
    /// terms gets the same portable identity.
    fn fresh_keyed(&mut self, sat: &mut SatSolver, tag: u64, operands: &[Lit]) -> Lit {
        let mut k = tag;
        for &l in operands {
            k = key_mix(k, self.lit_key(l));
        }
        let c = Lit::new(sat.new_var(), true);
        self.keys.insert(c.var(), k);
        c
    }

    /// `c ⇔ a ∧ b`
    fn and_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.false_lit(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == b.neg() {
            return self.false_lit();
        }
        let c = self.fresh_keyed(sat, AND_TAG, &[a, b]);
        sat.add_clause(&[c.neg(), a]);
        sat.add_clause(&[c.neg(), b]);
        sat.add_clause(&[c, a.neg(), b.neg()]);
        c
    }

    /// `c ⇔ a ∨ b`
    fn or_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        let na = a.neg();
        let nb = b.neg();
        self.and_gate(sat, na, nb).neg()
    }

    /// `c ⇔ a ⊕ b`
    fn xor_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return b.neg(),
            (_, Some(true)) => return a.neg(),
            _ => {}
        }
        if a == b {
            return self.false_lit();
        }
        if a == b.neg() {
            return self.true_lit;
        }
        let c = self.fresh_keyed(sat, XOR_TAG, &[a, b]);
        sat.add_clause(&[c.neg(), a, b]);
        sat.add_clause(&[c.neg(), a.neg(), b.neg()]);
        sat.add_clause(&[c, a.neg(), b]);
        sat.add_clause(&[c, a, b.neg()]);
        c
    }

    /// `c ⇔ majority(a, b, d)` — the carry function of a full adder.
    fn maj_gate(&mut self, sat: &mut SatSolver, a: Lit, b: Lit, d: Lit) -> Lit {
        // Fold constants through the simpler gates.
        if let Some(v) = self.is_const(a) {
            return if v {
                self.or_gate(sat, b, d)
            } else {
                self.and_gate(sat, b, d)
            };
        }
        if let Some(v) = self.is_const(b) {
            return if v {
                self.or_gate(sat, a, d)
            } else {
                self.and_gate(sat, a, d)
            };
        }
        if let Some(v) = self.is_const(d) {
            return if v {
                self.or_gate(sat, a, b)
            } else {
                self.and_gate(sat, a, b)
            };
        }
        let c = self.fresh_keyed(sat, MAJ_TAG, &[a, b, d]);
        sat.add_clause(&[c.neg(), a, b]);
        sat.add_clause(&[c.neg(), a, d]);
        sat.add_clause(&[c.neg(), b, d]);
        sat.add_clause(&[c, a.neg(), b.neg()]);
        sat.add_clause(&[c, a.neg(), d.neg()]);
        sat.add_clause(&[c, b.neg(), d.neg()]);
        c
    }

    /// `c ⇔ if s { a } else { b }`
    fn mux_gate(&mut self, sat: &mut SatSolver, s: Lit, a: Lit, b: Lit) -> Lit {
        if let Some(v) = self.is_const(s) {
            return if v { a } else { b };
        }
        if a == b {
            return a;
        }
        // c = (s ∧ a) ∨ (¬s ∧ b)
        let sa = self.and_gate(sat, s, a);
        let nsb = self.and_gate(sat, s.neg(), b);
        self.or_gate(sat, sa, nsb)
    }

    /// `c ⇔ ∧ lits`
    fn and_many_gate(&mut self, sat: &mut SatSolver, lits: &[Lit]) -> Lit {
        let mut pending = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.is_const(l) {
                Some(false) => return self.false_lit(),
                Some(true) => continue,
                None => pending.push(l),
            }
        }
        match pending.len() {
            0 => self.true_lit,
            1 => pending[0],
            _ => {
                let c = self.fresh_keyed(sat, ANDN_TAG, &pending);
                let mut big = Vec::with_capacity(pending.len() + 1);
                big.push(c);
                for &l in &pending {
                    sat.add_clause(&[c.neg(), l]);
                    big.push(l.neg());
                }
                sat.add_clause(&big);
                c
            }
        }
    }

    // ----- bitvector encodings -------------------------------------------

    /// Encodes a bitvector term into literals (LSB first).
    pub fn bv_bits(&mut self, pool: &TermPool, sat: &mut SatSolver, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&t) {
            return bits.clone();
        }
        let bits = match pool.node(t).clone() {
            TermNode::BvConst(v) => (0..v.width()).map(|i| self.const_lit(v.bit(i))).collect(),
            TermNode::BvVar(vid) => {
                if let Some(b) = self.var_bits.get(&vid) {
                    b.clone()
                } else {
                    let w = pool.var_width(vid);
                    let h = pool.term_hash(t);
                    let mut b = Vec::with_capacity(w as usize);
                    for i in 0..w {
                        let l = Lit::new(sat.new_var(), true);
                        self.keys.insert(l.var(), portable_key(h, BIT_TAG, u64::from(i)));
                        b.push(l);
                    }
                    self.var_bits.insert(vid, b.clone());
                    b
                }
            }
            TermNode::BvBin(op, a, b) => {
                let xa = self.bv_bits(pool, sat, a);
                let xb = self.bv_bits(pool, sat, b);
                match op {
                    BvBinOp::And => xa
                        .iter()
                        .zip(&xb)
                        .map(|(&p, &q)| self.and_gate(sat, p, q))
                        .collect(),
                    BvBinOp::Or => xa
                        .iter()
                        .zip(&xb)
                        .map(|(&p, &q)| self.or_gate(sat, p, q))
                        .collect(),
                    BvBinOp::Xor => xa
                        .iter()
                        .zip(&xb)
                        .map(|(&p, &q)| self.xor_gate(sat, p, q))
                        .collect(),
                    BvBinOp::Add => self.adder(sat, &xa, &xb, self.false_lit()),
                    BvBinOp::Sub => {
                        // a - b = a + ~b + 1
                        let nb: Vec<Lit> = xb.iter().map(|l| l.neg()).collect();
                        self.adder(sat, &xa, &nb, self.true_lit)
                    }
                }
            }
            TermNode::BvNot(a) => self
                .bv_bits(pool, sat, a)
                .iter()
                .map(|l| l.neg())
                .collect(),
            TermNode::BvShl(a, n) => {
                let xa = self.bv_bits(pool, sat, a);
                let w = xa.len();
                let mut out = vec![self.false_lit(); w];
                for i in (n as usize)..w {
                    out[i] = xa[i - n as usize];
                }
                out
            }
            TermNode::BvShr(a, n) => {
                let xa = self.bv_bits(pool, sat, a);
                let w = xa.len();
                let mut out = vec![self.false_lit(); w];
                for i in 0..w.saturating_sub(n as usize) {
                    out[i] = xa[i + n as usize];
                }
                out
            }
            TermNode::BvExtract(a, lo, len) => {
                let xa = self.bv_bits(pool, sat, a);
                xa[lo as usize..(lo + len) as usize].to_vec()
            }
            TermNode::BvConcat(hi, lo) => {
                let xlo = self.bv_bits(pool, sat, lo);
                let xhi = self.bv_bits(pool, sat, hi);
                let mut out = xlo;
                out.extend(xhi);
                out
            }
            TermNode::BvIte(c, a, b) => {
                let lc = self.bool_lit(pool, sat, c);
                let xa = self.bv_bits(pool, sat, a);
                let xb = self.bv_bits(pool, sat, b);
                xa.iter()
                    .zip(&xb)
                    .map(|(&p, &q)| self.mux_gate(sat, lc, p, q))
                    .collect()
            }
            n => panic!("bv_bits on non-bitvector node {n:?}"),
        };
        self.bits.insert(t, bits.clone());
        bits
    }

    fn adder(&mut self, sat: &mut SatSolver, a: &[Lit], b: &[Lit], cin: Lit) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = cin;
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.xor_gate(sat, a[i], b[i]);
            let sum = self.xor_gate(sat, axb, carry);
            out.push(sum);
            if i + 1 < a.len() {
                carry = self.maj_gate(sat, a[i], b[i], carry);
            }
        }
        out
    }

    /// Encodes a boolean term into a single literal.
    ///
    /// The literal is cached per term: repeat calls return the same `Lit`
    /// and add no variables or clauses. `Solver::check_under` depends on
    /// this — a branch arm's literal is blasted once, then reused as a
    /// solve assumption however many times the arm is probed, and sibling
    /// arms share every sub-cone they have in common.
    pub fn bool_lit(&mut self, pool: &TermPool, sat: &mut SatSolver, t: TermId) -> Lit {
        if let Some(&l) = self.bools.get(&t) {
            return l;
        }
        let l = match pool.node(t).clone() {
            TermNode::BoolConst(b) => self.const_lit(b),
            TermNode::BoolAnd(a, b) => {
                let la = self.bool_lit(pool, sat, a);
                let lb = self.bool_lit(pool, sat, b);
                self.and_gate(sat, la, lb)
            }
            TermNode::BoolOr(a, b) => {
                let la = self.bool_lit(pool, sat, a);
                let lb = self.bool_lit(pool, sat, b);
                self.or_gate(sat, la, lb)
            }
            TermNode::BoolNot(a) => self.bool_lit(pool, sat, a).neg(),
            TermNode::Cmp(op, a, b) => {
                let xa = self.bv_bits(pool, sat, a);
                let xb = self.bv_bits(pool, sat, b);
                match op {
                    CmpOp::Eq => {
                        let xnors: Vec<Lit> = xa
                            .iter()
                            .zip(&xb)
                            .map(|(&p, &q)| self.xor_gate(sat, p, q).neg())
                            .collect();
                        self.and_many_gate(sat, &xnors)
                    }
                    CmpOp::Ult => {
                        // LSB→MSB ripple: lt' = (¬a ∧ b) ∨ ((a ⇔ b) ∧ lt)
                        let mut lt = self.false_lit();
                        for i in 0..xa.len() {
                            let nab = self.and_gate(sat, xa[i].neg(), xb[i]);
                            let eq = self.xor_gate(sat, xa[i], xb[i]).neg();
                            let keep = self.and_gate(sat, eq, lt);
                            lt = self.or_gate(sat, nab, keep);
                        }
                        lt
                    }
                }
            }
            n => panic!("bool_lit on non-boolean node {n:?}"),
        };
        self.bools.insert(t, l);
        l
    }

    /// Number of distinct vars the SAT instance uses for a rough size metric.
    pub fn cache_size(&self) -> usize {
        self.bits.len() + self.bools.len()
    }

    /// Enumerates every SAT variable this blaster created, with its
    /// solver-portable content key: input-variable bits are keyed by the
    /// variable's name-based term hash and bit index, Tseitin gate outputs
    /// structurally by op tag and operand keys. The reported polarity is
    /// always `true` (keys identify the positive variable; negation is the
    /// caller's `NEG` salt). Two solvers that blast the same (content-
    /// hashed) terms build the same gate graph and therefore agree on every
    /// key, which is what makes learned clauses over these atoms portable:
    /// a clause whose variables all appear here is a consequence of gate
    /// *definitions* and permanent units alone, hence valid in any solver
    /// blasting the same terms.
    pub fn portable_atoms(&self) -> impl Iterator<Item = (crate::sat::Var, u64, bool)> + '_ {
        self.keys.iter().map(|(&v, &k)| (v, k, true))
    }
}

/// Namespace tag for input-variable bit atoms in [`portable_key`].
pub const BIT_TAG: u64 = 0x6269;
/// Key of the constant-true literal's variable.
const TRUE_KEY: u64 = 0x7472_7565;
/// Salt applied to a variable key when the literal is negated.
const NEG_SALT: u64 = 0x6e65_675f_6e65_675f;
/// Structural gate tags.
const AND_TAG: u64 = 0x616e_64;
const XOR_TAG: u64 = 0x786f_72;
const MAJ_TAG: u64 = 0x6d61_6a;
const ANDN_TAG: u64 = 0x616e_646e;

/// One splitmix64 round; fixed constants, no per-process seeding — stable
/// across runs, pools, and solvers.
fn key_mix(mut h: u64, v: u64) -> u64 {
    h = h.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(v);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// Mixes a content hash, a namespace tag, and an index into the 64-bit
/// portable-atom key used by the clause exchange.
pub fn portable_key(content: u64, tag: u64, idx: u64) -> u64 {
    key_mix(key_mix(content, tag), idx)
}

/// Convenience re-export used by the solver façade.
pub use crate::sat::Lit as SatLit;
pub use crate::sat::Var as SatVar;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    /// Asserts `t` (a boolean term) and solves; returns the model reader.
    fn solve_term(pool: &mut TermPool, t: TermId) -> Option<(SatSolver, Blaster)> {
        let mut sat = SatSolver::new();
        let mut bl = Blaster::new(&mut sat);
        let l = bl.bool_lit(pool, &mut sat, t);
        sat.add_clause(&[l]);
        match sat.solve(&[]) {
            SatResult::Sat => Some((sat, bl)),
            SatResult::Unsat => None,
        }
    }

    fn val(pool: &TermPool, sat: &SatSolver, bl: &Blaster, name: &str, w: u16) -> Bv {
        let v = pool.find_var(name).unwrap();
        bl.read_var(sat, v, w).unwrap_or(Bv::zero(w))
    }

    #[test]
    fn bool_lit_is_cached_and_stable() {
        // Assumption-batching contract: re-blasting a term is free and
        // returns the identical literal, so `check_under` can assume it
        // on every probe without growing the SAT instance.
        let mut p = TermPool::new();
        let mut sat = SatSolver::new();
        let mut bl = Blaster::new(&mut sat);
        let x = p.var("x", 8);
        let k = p.bv_const(Bv::new(8, 42));
        let t = p.eq(x, k);
        let first = bl.bool_lit(&p, &mut sat, t);
        let (vars, clauses, cache) = (sat.num_vars(), sat.num_clauses(), bl.cache_size());
        for _ in 0..3 {
            assert_eq!(bl.bool_lit(&p, &mut sat, t), first);
        }
        assert_eq!(sat.num_vars(), vars);
        assert_eq!(sat.num_clauses(), clauses);
        assert_eq!(bl.cache_size(), cache);
        // A sibling arm over the same variable reuses x's bit cone: new
        // gate clauses, but no second copy of the variable's bits.
        let k2 = p.bv_const(Bv::new(8, 7));
        let t2 = p.eq(x, k2);
        let second = bl.bool_lit(&p, &mut sat, t2);
        assert_ne!(second, first);
        let xv = p.find_var("x").unwrap();
        assert_eq!(bl.var_bits(xv).unwrap().len(), 8);
    }

    #[test]
    fn equality_forces_value() {
        let mut p = TermPool::new();
        let x = p.var("x", 16);
        let k = p.bv_const(Bv::new(16, 0xbeef));
        let t = p.eq(x, k);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 16), Bv::new(16, 0xbeef));
    }

    #[test]
    fn addition_wraps_in_models() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let one = p.bv_const(Bv::new(8, 1));
        let sum = p.add(x, one);
        let zero = p.bv_const(Bv::zero(8));
        let t = p.eq(sum, zero);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 8), Bv::new(8, 255));
    }

    #[test]
    fn subtraction_encoding() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let diff = p.sub(x, y);
        let k = p.bv_const(Bv::new(8, 7));
        let e1 = p.eq(diff, k);
        let k2 = p.bv_const(Bv::new(8, 3));
        let e2 = p.eq(y, k2);
        let t = p.and(e1, e2);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 8), Bv::new(8, 10));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let a = p.bv_const(Bv::new(8, 80));
        let b = p.bv_const(Bv::new(8, 443));
        let e1 = p.eq(x, a);
        let e2 = p.eq(x, b);
        let t = p.and(e1, e2);
        assert!(solve_term(&mut p, t).is_none());
    }

    #[test]
    fn ult_semantics() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let lo = p.bv_const(Bv::new(8, 250));
        let t = p.ugt(x, lo);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert!(val(&p, &sat, &bl, "x", 8).val() > 250);
    }

    #[test]
    fn ult_edge_unsat() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let max = p.bv_const(Bv::new(8, 255));
        let t = p.ugt(x, max);
        assert!(solve_term(&mut p, t).is_none(), "nothing exceeds 255 at width 8");
    }

    #[test]
    fn bitwise_masking() {
        // x & 0xF0 == 0x50 has solutions; check the model honors the mask.
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let mask = p.bv_const(Bv::new(8, 0xf0));
        let masked = p.bv_and(x, mask);
        let k = p.bv_const(Bv::new(8, 0x50));
        let t = p.eq(masked, k);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 8).val() & 0xf0, 0x50);
    }

    #[test]
    fn ite_encoding() {
        let mut p = TermPool::new();
        let c = p.var("c", 8);
        let zero = p.bv_const(Bv::zero(8));
        let cond = p.ne(c, zero);
        let a = p.bv_const(Bv::new(8, 11));
        let b = p.bv_const(Bv::new(8, 22));
        let sel = p.ite(cond, a, b);
        let k = p.bv_const(Bv::new(8, 11));
        let e = p.eq(sel, k);
        let (sat, bl) = solve_term(&mut p, e).expect("sat");
        assert_ne!(val(&p, &sat, &bl, "c", 8).val(), 0);
    }

    #[test]
    fn concat_extract_roundtrip() {
        let mut p = TermPool::new();
        let hi = p.var("hi", 8);
        let lo = p.var("lo", 8);
        let cat = p.concat(hi, lo);
        let k = p.bv_const(Bv::new(16, 0xab_cd));
        let t = p.eq(cat, k);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "hi", 8), Bv::new(8, 0xab));
        assert_eq!(val(&p, &sat, &bl, "lo", 8), Bv::new(8, 0xcd));
    }

    #[test]
    fn shifts() {
        let mut p = TermPool::new();
        let x = p.var("x", 8);
        let sh = p.shl(x, 4);
        let k = p.bv_const(Bv::new(8, 0xa0));
        let t = p.eq(sh, k);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 8).val() & 0x0f, 0x0a);
    }

    #[test]
    fn wide_128bit_equality() {
        let mut p = TermPool::new();
        let x = p.var("x", 128);
        let k = p.bv_const(Bv::new(128, u128::MAX - 12345));
        let t = p.eq(x, k);
        let (sat, bl) = solve_term(&mut p, t).expect("sat");
        assert_eq!(val(&p, &sat, &bl, "x", 128), Bv::new(128, u128::MAX - 12345));
    }
}
