//! Hash-consed terms over fixed-width bitvectors and booleans.
//!
//! Terms are interned in a [`TermPool`]: structurally equal terms share one
//! [`TermId`], so the bit-blaster encodes each shared subterm exactly once
//! and equality of ids is equality of terms. Smart constructors perform
//! constant folding and cheap local rewrites — this is what lets the
//! symbolic executor detect trivially-unsatisfiable branch prefixes without
//! touching the SAT engine at all.

use meissa_num::Bv;
use std::collections::HashMap;
use std::fmt;

/// An interned term handle. Cheap to copy; meaningful only with its pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Dense index of the term within its pool (for side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A solver variable handle (a named bitvector input).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub(crate) u32);

/// Binary bitvector operators with bitvector result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BvBinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// Binary bitvector comparators with boolean result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Unsigned less-than.
    Ult,
}

/// The term node structure. `TermId` operands refer back into the pool.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermNode {
    /// A bitvector constant.
    BvConst(Bv),
    /// A named input variable.
    BvVar(VarId),
    /// A binary bitvector operation (both operands same width).
    BvBin(BvBinOp, TermId, TermId),
    /// Bitwise NOT.
    BvNot(TermId),
    /// Logical shift left by a constant.
    BvShl(TermId, u16),
    /// Logical shift right by a constant.
    BvShr(TermId, u16),
    /// Bit extraction `[lo, lo+len)`.
    BvExtract(TermId, u16, u16),
    /// Concatenation (first operand is the high bits).
    BvConcat(TermId, TermId),
    /// `if cond { then } else { els }` over bitvectors.
    BvIte(TermId, TermId, TermId),
    /// A comparison producing a boolean.
    Cmp(CmpOp, TermId, TermId),
    /// A boolean constant.
    BoolConst(bool),
    /// Boolean conjunction.
    BoolAnd(TermId, TermId),
    /// Boolean disjunction.
    BoolOr(TermId, TermId),
    /// Boolean negation.
    BoolNot(TermId),
}

/// Sort of a term: boolean or bitvector of a width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Bitvector sort with width in bits.
    Bv(u16),
}

#[derive(Clone)]
struct VarInfo {
    name: String,
    width: u16,
}

/// The interning pool for terms and variables.
///
/// `Clone` is cheap relative to re-interning and lets a parallel-task donor
/// snapshot a prefix pool once and hand each sibling subtree its own copy.
#[derive(Clone, Default)]
pub struct TermPool {
    nodes: Vec<TermNode>,
    sorts: Vec<Sort>,
    intern: HashMap<TermNode, TermId>,
    vars: Vec<VarInfo>,
    var_by_name: HashMap<String, VarId>,
    /// Pool-independent content hash per term (variables hash by *name*,
    /// children by their content hashes), computed once at intern time.
    /// This is what the commutative constructors order operands by, so a
    /// term's stored shape — and everything derived from it (rendering,
    /// bit-blasting, models) — does not depend on the pool's interning
    /// history. Two pools that interned the same structure in different
    /// orders still store operand-identical terms, which is what makes
    /// parallel-worker output byte-identical to a sequential run's.
    hashes: Vec<u64>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks at a term's node.
    pub fn node(&self, t: TermId) -> &TermNode {
        &self.nodes[t.0 as usize]
    }

    /// A term's sort.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.0 as usize]
    }

    /// A term's bitvector width.
    ///
    /// # Panics
    /// Panics if the term is boolean.
    pub fn width(&self, t: TermId) -> u16 {
        match self.sort(t) {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("width() on boolean term"),
        }
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize].name
    }

    /// The declared width of a variable.
    pub fn var_width(&self, v: VarId) -> u16 {
        self.vars[v.0 as usize].width
    }

    /// All declared variables.
    pub fn all_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_by_name.get(name).copied()
    }

    fn mk(&mut self, node: TermNode, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        let h = self.node_hash(&node);
        self.nodes.push(node.clone());
        self.sorts.push(sort);
        self.hashes.push(h);
        self.intern.insert(node, id);
        id
    }

    /// A term's pool-independent content hash (see the `hashes` field).
    pub fn term_hash(&self, t: TermId) -> u64 {
        self.hashes[t.0 as usize]
    }

    fn node_hash(&self, node: &TermNode) -> u64 {
        // splitmix64-style mixing; fixed constants, no per-process seeding,
        // so the hash is stable across runs and across pools.
        fn mix(mut h: u64, v: u64) -> u64 {
            h = h.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(v);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
            h ^ (h >> 31)
        }
        let child = |t: &TermId| self.hashes[t.0 as usize];
        match node {
            TermNode::BvConst(v) => mix(mix(1, u64::from(v.width())), (v.val() >> 64) as u64)
                .wrapping_add(mix(2, v.val() as u64)),
            TermNode::BvVar(v) => {
                let info = &self.vars[v.0 as usize];
                let mut h = mix(3, u64::from(info.width));
                for b in info.name.as_bytes() {
                    h = mix(h, u64::from(*b));
                }
                h
            }
            TermNode::BoolConst(b) => mix(4, u64::from(*b)),
            TermNode::BvBin(op, a, b) => mix(mix(mix(5, *op as u64), child(a)), child(b)),
            TermNode::BvNot(a) => mix(6, child(a)),
            TermNode::BvShl(a, n) => mix(mix(7, child(a)), u64::from(*n)),
            TermNode::BvShr(a, n) => mix(mix(8, child(a)), u64::from(*n)),
            TermNode::BvExtract(a, lo, len) => {
                mix(mix(mix(9, child(a)), u64::from(*lo)), u64::from(*len))
            }
            TermNode::BvConcat(a, b) => mix(mix(10, child(a)), child(b)),
            TermNode::BvIte(c, a, b) => mix(mix(mix(11, child(c)), child(a)), child(b)),
            TermNode::Cmp(op, a, b) => mix(mix(mix(12, *op as u64), child(a)), child(b)),
            TermNode::BoolAnd(a, b) => mix(mix(13, child(a)), child(b)),
            TermNode::BoolOr(a, b) => mix(mix(14, child(a)), child(b)),
            TermNode::BoolNot(a) => mix(15, child(a)),
        }
    }

    /// Orders a commutative pair by content hash (ties broken by the full
    /// canonical rendering — hash collisions between distinct terms are
    /// possible, and the order must still be pool-independent).
    fn canon_pair(&self, a: TermId, b: TermId) -> (TermId, TermId) {
        let (ha, hb) = (self.term_hash(a), self.term_hash(b));
        match ha.cmp(&hb) {
            std::cmp::Ordering::Less => (a, b),
            std::cmp::Ordering::Greater => (b, a),
            std::cmp::Ordering::Equal => {
                if self.canonical_key(a) <= self.canonical_key(b) {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        }
    }

    /// Declares (or retrieves) a named variable term of the given width.
    ///
    /// # Panics
    /// Panics if the name was previously declared with a different width.
    pub fn var(&mut self, name: &str, width: u16) -> TermId {
        let vid = if let Some(&v) = self.var_by_name.get(name) {
            assert_eq!(
                self.vars[v.0 as usize].width, width,
                "variable {name} redeclared with different width"
            );
            v
        } else {
            let v = VarId(self.vars.len() as u32);
            self.vars.push(VarInfo {
                name: name.to_string(),
                width,
            });
            self.var_by_name.insert(name.to_string(), v);
            v
        };
        self.mk(TermNode::BvVar(vid), Sort::Bv(width))
    }

    /// A bitvector constant term.
    pub fn bv_const(&mut self, v: Bv) -> TermId {
        let w = v.width();
        self.mk(TermNode::BvConst(v), Sort::Bv(w))
    }

    /// The boolean constant `true`.
    pub fn bool_true(&mut self) -> TermId {
        self.mk(TermNode::BoolConst(true), Sort::Bool)
    }

    /// The boolean constant `false`.
    pub fn bool_false(&mut self) -> TermId {
        self.mk(TermNode::BoolConst(false), Sort::Bool)
    }

    /// A boolean constant of the given value.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.mk(TermNode::BoolConst(b), Sort::Bool)
    }

    /// If the term is a constant bitvector, its value.
    pub fn as_const(&self, t: TermId) -> Option<Bv> {
        match self.node(t) {
            TermNode::BvConst(v) => Some(*v),
            _ => None,
        }
    }

    /// If the term is a constant boolean, its value.
    pub fn as_bool_const(&self, t: TermId) -> Option<bool> {
        match self.node(t) {
            TermNode::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    fn bin(&mut self, op: BvBinOp, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "width mismatch in {op:?}");
        // Constant folding.
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let r = match op {
                BvBinOp::Add => x.add(&y),
                BvBinOp::Sub => x.sub(&y),
                BvBinOp::And => x.and(&y),
                BvBinOp::Or => x.or(&y),
                BvBinOp::Xor => x.xor(&y),
            };
            return self.bv_const(r);
        }
        // Identity rewrites.
        match op {
            BvBinOp::Add => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
            }
            BvBinOp::Sub => {
                if self.is_zero_const(b) {
                    return a;
                }
                if a == b {
                    return self.bv_const(Bv::zero(w));
                }
            }
            BvBinOp::And => {
                if self.is_zero_const(a) || self.is_zero_const(b) {
                    return self.bv_const(Bv::zero(w));
                }
                if self.is_ones_const(a) {
                    return b;
                }
                if self.is_ones_const(b) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Or => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
                if self.is_ones_const(a) || self.is_ones_const(b) {
                    return self.bv_const(Bv::ones(w));
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Xor => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
                if a == b {
                    return self.bv_const(Bv::zero(w));
                }
            }
        }
        self.mk(TermNode::BvBin(op, a, b), Sort::Bv(w))
    }

    fn is_zero_const(&self, t: TermId) -> bool {
        matches!(self.node(t), TermNode::BvConst(v) if v.is_zero())
    }

    fn is_ones_const(&self, t: TermId) -> bool {
        matches!(self.node(t), TermNode::BvConst(v) if *v == Bv::ones(v.width()))
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Sub, a, b)
    }

    /// Bitwise AND.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Xor, a, b)
    }

    /// Bitwise NOT.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.not());
        }
        if let TermNode::BvNot(inner) = *self.node(a) {
            return inner;
        }
        let w = self.width(a);
        self.mk(TermNode::BvNot(a), Sort::Bv(w))
    }

    /// Logical shift left by a constant.
    pub fn shl(&mut self, a: TermId, amount: u16) -> TermId {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.shl(amount as u32));
        }
        let w = self.width(a);
        if amount >= w {
            return self.bv_const(Bv::zero(w));
        }
        self.mk(TermNode::BvShl(a, amount), Sort::Bv(w))
    }

    /// Logical shift right by a constant.
    pub fn shr(&mut self, a: TermId, amount: u16) -> TermId {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.shr(amount as u32));
        }
        let w = self.width(a);
        if amount >= w {
            return self.bv_const(Bv::zero(w));
        }
        self.mk(TermNode::BvShr(a, amount), Sort::Bv(w))
    }

    /// Bit extraction `[lo, lo+len)`.
    pub fn extract(&mut self, a: TermId, lo: u16, len: u16) -> TermId {
        let w = self.width(a);
        assert!(lo + len <= w, "extract out of range");
        if lo == 0 && len == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.extract(lo, len));
        }
        self.mk(TermNode::BvExtract(a, lo, len), Sort::Bv(len))
    }

    /// Concatenation (`hi` supplies the high bits).
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        assert!(w <= Bv::MAX_WIDTH, "concat width exceeds 128");
        if let (Some(a), Some(b)) = (self.as_const(hi), self.as_const(lo)) {
            return self.bv_const(a.concat(&b));
        }
        self.mk(TermNode::BvConcat(hi, lo), Sort::Bv(w))
    }

    /// Zero-extends or truncates `a` to `width`.
    pub fn resize(&mut self, a: TermId, width: u16) -> TermId {
        let w = self.width(a);
        if width == w {
            a
        } else if width < w {
            self.extract(a, 0, width)
        } else {
            let zero = self.bv_const(Bv::zero(width - w));
            self.concat(zero, a)
        }
    }

    /// Bitvector if-then-else.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert_eq!(self.sort(cond), Sort::Bool, "ite condition must be boolean");
        let w = self.width(then);
        assert_eq!(w, self.width(els), "ite arm width mismatch");
        if let Some(b) = self.as_bool_const(cond) {
            return if b { then } else { els };
        }
        if then == els {
            return then;
        }
        self.mk(TermNode::BvIte(cond, then, els), Sort::Bv(w))
    }

    /// Equality comparison.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.width(a), self.width(b), "width mismatch in eq");
        if a == b {
            return self.bool_true();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x == y);
        }
        // Canonical operand order so `eq(a, b)` and `eq(b, a)` intern equal
        // — by content hash, so the order is pool-independent.
        let (a, b) = self.canon_pair(a, b);
        self.mk(TermNode::Cmp(CmpOp::Eq, a, b), Sort::Bool)
    }

    /// Disequality (sugar for `not(eq)`).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.width(a), self.width(b), "width mismatch in ult");
        if a == b {
            return self.bool_false();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x.ult(&y));
        }
        if self.is_zero_const(b) {
            return self.bool_false(); // nothing is < 0
        }
        self.mk(TermNode::Cmp(CmpOp::Ult, a, b), Sort::Bool)
    }

    /// Unsigned greater-than (sugar).
    pub fn ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ult(b, a)
    }

    /// Unsigned less-or-equal (sugar for `not(b < a)`).
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not(gt)
    }

    /// Unsigned greater-or-equal (sugar).
    pub fn uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.ule(b, a)
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.bool_false(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        // x ∧ ¬x = false
        if self.is_negation_of(a, b) {
            return self.bool_false();
        }
        let (a, b) = self.canon_pair(a, b);
        self.mk(TermNode::BoolAnd(a, b), Sort::Bool)
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.bool_true(),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_negation_of(a, b) {
            return self.bool_true();
        }
        let (a, b) = self.canon_pair(a, b);
        self.mk(TermNode::BoolOr(a, b), Sort::Bool)
    }

    /// Boolean negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        if let Some(b) = self.as_bool_const(a) {
            return self.bool_const(!b);
        }
        if let TermNode::BoolNot(inner) = *self.node(a) {
            return inner;
        }
        self.mk(TermNode::BoolNot(a), Sort::Bool)
    }

    fn is_negation_of(&self, a: TermId, b: TermId) -> bool {
        matches!(self.node(a), TermNode::BoolNot(x) if *x == b)
            || matches!(self.node(b), TermNode::BoolNot(x) if *x == a)
    }

    /// Conjunction over a slice (true for an empty slice).
    pub fn and_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_true();
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Disjunction over a slice (false for an empty slice).
    pub fn or_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_false();
        for &t in terms {
            acc = self.or(acc, t);
        }
        acc
    }

    /// Imports a term from another pool into this one, returning the
    /// equivalent term here. Variables are matched **by name** (and width);
    /// structure is rebuilt through the smart constructors (operand order
    /// of commutative nodes is content-hash canonical in every pool, so
    /// the rebuilt term has the same shape it had in `src`) — importing a
    /// term whose structure already exists here returns the existing id. `cache` maps source ids to destination ids and may be
    /// reused across calls as long as both pools only grow (pools are
    /// append-only, so a per-(src, dst) cache never goes stale).
    ///
    /// This is the translation step at a parallel-worker boundary: the
    /// main thread interns a path prefix into a worker's pool, and the
    /// worker's discovered constraints translate back into the main pool.
    pub fn import(
        &mut self,
        src: &TermPool,
        t: TermId,
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        self.import_from(src, t, 0, cache)
    }

    /// [`TermPool::import`] for a `src` pool that was *forked* from this one
    /// (cloned when this pool held `shared` terms, with both pools only
    /// appended to since): the first `shared` ids are identical in both
    /// pools, so they translate to themselves and only fork-local terms are
    /// rebuilt. With `shared == 0` this is exactly `import`.
    ///
    /// This is what makes forked worker sessions cheap: a worker clones the
    /// main pool once, explores (prefix term ids stay valid verbatim), and
    /// only the terms the exploration *created* pay translation cost on the
    /// way back.
    pub fn import_from(
        &mut self,
        src: &TermPool,
        t: TermId,
        shared: u32,
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if t.0 < shared {
            return t;
        }
        if let Some(&d) = cache.get(&t) {
            return d;
        }
        // Explicit post-order worklist: constraint conjunctions and parser
        // concat chains can nest deeply enough to threaten the stack.
        let mut order: Vec<TermId> = Vec::new();
        let mut seen: std::collections::HashSet<TermId> = std::collections::HashSet::new();
        let mut visit: Vec<(TermId, bool)> = vec![(t, false)];
        while let Some((n, expanded)) = visit.pop() {
            if cache.contains_key(&n) {
                continue;
            }
            if n.0 < shared {
                cache.insert(n, n);
                continue;
            }
            if expanded {
                order.push(n);
                continue;
            }
            if !seen.insert(n) {
                continue;
            }
            visit.push((n, true));
            match *src.node(n) {
                TermNode::BvConst(_) | TermNode::BvVar(_) | TermNode::BoolConst(_) => {}
                TermNode::BvBin(_, a, b) | TermNode::BvConcat(a, b) => {
                    visit.push((a, false));
                    visit.push((b, false));
                }
                TermNode::Cmp(_, a, b) | TermNode::BoolAnd(a, b) | TermNode::BoolOr(a, b) => {
                    // Operand order needs no care here: the commutative
                    // constructors re-canonicalize by content hash, which is
                    // pool-independent.
                    visit.push((a, false));
                    visit.push((b, false));
                }
                TermNode::BvNot(a)
                | TermNode::BvShl(a, _)
                | TermNode::BvShr(a, _)
                | TermNode::BvExtract(a, _, _)
                | TermNode::BoolNot(a) => visit.push((a, false)),
                TermNode::BvIte(c, a, b) => {
                    visit.push((c, false));
                    visit.push((a, false));
                    visit.push((b, false));
                }
            }
        }
        for n in order {
            if cache.contains_key(&n) {
                continue;
            }
            let d = match *src.node(n) {
                TermNode::BvConst(v) => self.bv_const(v),
                TermNode::BvVar(v) => self.var(src.var_name(v), src.var_width(v)),
                TermNode::BoolConst(b) => self.bool_const(b),
                TermNode::BvBin(op, a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.bin(op, a, b)
                }
                TermNode::BvNot(a) => {
                    let a = cache[&a];
                    self.bv_not(a)
                }
                TermNode::BvShl(a, k) => {
                    let a = cache[&a];
                    self.shl(a, k)
                }
                TermNode::BvShr(a, k) => {
                    let a = cache[&a];
                    self.shr(a, k)
                }
                TermNode::BvExtract(a, lo, len) => {
                    let a = cache[&a];
                    self.extract(a, lo, len)
                }
                TermNode::BvConcat(a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.concat(a, b)
                }
                TermNode::BvIte(c, a, b) => {
                    let (c, a, b) = (cache[&c], cache[&a], cache[&b]);
                    self.ite(c, a, b)
                }
                TermNode::Cmp(CmpOp::Eq, a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.eq(a, b)
                }
                TermNode::Cmp(CmpOp::Ult, a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.ult(a, b)
                }
                TermNode::BoolAnd(a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.and(a, b)
                }
                TermNode::BoolOr(a, b) => {
                    let (a, b) = (cache[&a], cache[&b]);
                    self.or(a, b)
                }
                TermNode::BoolNot(a) => {
                    let a = cache[&a];
                    self.not(a)
                }
            };
            cache.insert(n, d);
        }
        cache[&t]
    }

    /// A pool-independent canonical rendering of a term, suitable as a
    /// content key across pools. Variables render as `name:width`, constants
    /// carry their width, and the operands of the canonically-ordered
    /// commutative nodes (`eq`, `and`, `or` sort by pool-local [`TermId`])
    /// are re-sorted **lexicographically by rendering**, so two pools that
    /// interned the same structure in different orders produce the same
    /// string. Non-canonicalized operators (`+`, `^`, …) keep construction
    /// order, which is already determined by the source expression.
    pub fn canonical_key(&self, t: TermId) -> String {
        let mut s = String::new();
        self.fmt_canonical(t, &mut s);
        s
    }

    fn fmt_canonical(&self, t: TermId, out: &mut String) {
        use fmt::Write;
        match self.node(t) {
            TermNode::BvConst(v) => {
                let _ = write!(out, "#{v}w{}", v.width());
            }
            TermNode::BvVar(v) => {
                let _ = write!(out, "{}:{}", self.var_name(*v), self.var_width(*v));
            }
            TermNode::BvBin(op, a, b) => {
                let _ = write!(out, "({op:?} ");
                self.fmt_canonical(*a, out);
                out.push(' ');
                self.fmt_canonical(*b, out);
                out.push(')');
            }
            TermNode::BvNot(a) => {
                out.push_str("(BvNot ");
                self.fmt_canonical(*a, out);
                out.push(')');
            }
            TermNode::BvShl(a, n) => {
                let _ = write!(out, "(Shl{n} ");
                self.fmt_canonical(*a, out);
                out.push(')');
            }
            TermNode::BvShr(a, n) => {
                let _ = write!(out, "(Shr{n} ");
                self.fmt_canonical(*a, out);
                out.push(')');
            }
            TermNode::BvExtract(a, lo, len) => {
                let _ = write!(out, "(Ext{lo}+{len} ");
                self.fmt_canonical(*a, out);
                out.push(')');
            }
            TermNode::BvConcat(a, b) => {
                out.push_str("(Concat ");
                self.fmt_canonical(*a, out);
                out.push(' ');
                self.fmt_canonical(*b, out);
                out.push(')');
            }
            TermNode::BvIte(c, a, b) => {
                out.push_str("(Ite ");
                self.fmt_canonical(*c, out);
                out.push(' ');
                self.fmt_canonical(*a, out);
                out.push(' ');
                self.fmt_canonical(*b, out);
                out.push(')');
            }
            TermNode::Cmp(CmpOp::Ult, a, b) => {
                out.push_str("(Ult ");
                self.fmt_canonical(*a, out);
                out.push(' ');
                self.fmt_canonical(*b, out);
                out.push(')');
            }
            // Operand order of these three is pool-local (sorted by TermId
            // at construction): re-sort by rendering so the key is stable.
            TermNode::Cmp(CmpOp::Eq, a, b) => self.fmt_sorted("Eq", *a, *b, out),
            TermNode::BoolAnd(a, b) => self.fmt_sorted("And", *a, *b, out),
            TermNode::BoolOr(a, b) => self.fmt_sorted("Or", *a, *b, out),
            TermNode::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            TermNode::BoolNot(a) => {
                out.push_str("(Not ");
                self.fmt_canonical(*a, out);
                out.push(')');
            }
        }
    }

    fn fmt_sorted(&self, tag: &str, a: TermId, b: TermId, out: &mut String) {
        let mut ra = String::new();
        self.fmt_canonical(a, &mut ra);
        let mut rb = String::new();
        self.fmt_canonical(b, &mut rb);
        if ra > rb {
            std::mem::swap(&mut ra, &mut rb);
        }
        out.push('(');
        out.push_str(tag);
        out.push(' ');
        out.push_str(&ra);
        out.push(' ');
        out.push_str(&rb);
        out.push(')');
    }

    /// Evaluates a term under a full assignment of variables to values.
    /// Used by tests and by the template instantiation hash post-filter.
    ///
    /// Returns `None` if a variable required by the term has no assignment.
    pub fn eval(&self, t: TermId, env: &dyn Fn(VarId) -> Option<Bv>) -> Option<EvalValue> {
        match self.node(t) {
            TermNode::BvConst(v) => Some(EvalValue::Bv(*v)),
            TermNode::BvVar(v) => env(*v).map(EvalValue::Bv),
            TermNode::BvBin(op, a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bv(match op {
                    BvBinOp::Add => x.add(&y),
                    BvBinOp::Sub => x.sub(&y),
                    BvBinOp::And => x.and(&y),
                    BvBinOp::Or => x.or(&y),
                    BvBinOp::Xor => x.xor(&y),
                }))
            }
            TermNode::BvNot(a) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().not())),
            TermNode::BvShl(a, n) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().shl(*n as u32))),
            TermNode::BvShr(a, n) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().shr(*n as u32))),
            TermNode::BvExtract(a, lo, len) => {
                Some(EvalValue::Bv(self.eval(*a, env)?.bv().extract(*lo, *len)))
            }
            TermNode::BvConcat(a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bv(x.concat(&y)))
            }
            TermNode::BvIte(c, a, b) => {
                if self.eval(*c, env)?.bool() {
                    self.eval(*a, env)
                } else {
                    self.eval(*b, env)
                }
            }
            TermNode::Cmp(op, a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bool(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ult => x.ult(&y),
                }))
            }
            TermNode::BoolConst(b) => Some(EvalValue::Bool(*b)),
            TermNode::BoolAnd(a, b) => Some(EvalValue::Bool(
                self.eval(*a, env)?.bool() && self.eval(*b, env)?.bool(),
            )),
            TermNode::BoolOr(a, b) => Some(EvalValue::Bool(
                self.eval(*a, env)?.bool() || self.eval(*b, env)?.bool(),
            )),
            TermNode::BoolNot(a) => Some(EvalValue::Bool(!self.eval(*a, env)?.bool())),
        }
    }

    /// Pretty-prints a term for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        let mut s = String::new();
        self.fmt_term(t, &mut s);
        s
    }

    fn fmt_term(&self, t: TermId, out: &mut String) {
        use fmt::Write;
        match self.node(t) {
            TermNode::BvConst(v) => {
                let _ = write!(out, "{v}");
            }
            TermNode::BvVar(v) => out.push_str(self.var_name(*v)),
            TermNode::BvBin(op, a, b) => {
                let sym = match op {
                    BvBinOp::Add => "+",
                    BvBinOp::Sub => "-",
                    BvBinOp::And => "&",
                    BvBinOp::Or => "|",
                    BvBinOp::Xor => "^",
                };
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " {sym} ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BvNot(a) => {
                out.push('~');
                self.fmt_term(*a, out);
            }
            TermNode::BvShl(a, n) => {
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " << {n})");
            }
            TermNode::BvShr(a, n) => {
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " >> {n})");
            }
            TermNode::BvExtract(a, lo, len) => {
                self.fmt_term(*a, out);
                let _ = write!(out, "[{}:{}]", lo + len - 1, lo);
            }
            TermNode::BvConcat(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" ++ ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BvIte(c, a, b) => {
                out.push_str("ite(");
                self.fmt_term(*c, out);
                out.push_str(", ");
                self.fmt_term(*a, out);
                out.push_str(", ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ult => "<",
                };
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " {sym} ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            TermNode::BoolAnd(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" && ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolOr(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" || ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolNot(a) => {
                out.push('!');
                self.fmt_term(*a, out);
            }
        }
    }
}

/// Result of concrete term evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalValue {
    /// A bitvector result.
    Bv(Bv),
    /// A boolean result.
    Bool(bool),
}

impl EvalValue {
    /// Unwraps the bitvector value.
    pub fn bv(self) -> Bv {
        match self {
            EvalValue::Bv(v) => v,
            EvalValue::Bool(_) => panic!("expected bitvector, got bool"),
        }
    }

    /// Unwraps the boolean value.
    pub fn bool(self) -> bool {
        match self {
            EvalValue::Bool(b) => b,
            EvalValue::Bv(_) => panic!("expected bool, got bitvector"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TermPool {
        TermPool::new()
    }

    #[test]
    fn interning_shares_structure() {
        let mut p = pool();
        let x = p.var("x", 8);
        let c1 = p.bv_const(Bv::new(8, 5));
        let c2 = p.bv_const(Bv::new(8, 5));
        assert_eq!(c1, c2);
        let a1 = p.add(x, c1);
        let a2 = p.add(x, c2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn constant_folding_arith() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 250));
        let b = p.bv_const(Bv::new(8, 10));
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(Bv::new(8, 4)));
    }

    #[test]
    fn identity_rewrites() {
        let mut p = pool();
        let x = p.var("x", 16);
        let zero = p.bv_const(Bv::zero(16));
        let ones = p.bv_const(Bv::ones(16));
        let a1 = p.add(x, zero);
        assert_eq!(a1, x);
        let a2 = p.bv_or(x, zero);
        assert_eq!(a2, x);
        let a3 = p.bv_and(x, ones);
        assert_eq!(a3, x);
        let and0 = p.bv_and(x, zero);
        assert_eq!(p.as_const(and0), Some(Bv::zero(16)));
        let subxx = p.sub(x, x);
        assert_eq!(p.as_const(subxx), Some(Bv::zero(16)));
        let xorxx = p.bv_xor(x, x);
        assert_eq!(p.as_const(xorxx), Some(Bv::zero(16)));
    }

    #[test]
    fn bool_simplification() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let e = p.eq(x, y);
        let t = p.bool_true();
        let f = p.bool_false();
        let r1 = p.and(e, t);
        assert_eq!(r1, e);
        let r2 = p.and(e, f);
        assert_eq!(r2, f);
        let r3 = p.or(e, f);
        assert_eq!(r3, e);
        let r4 = p.or(e, t);
        assert_eq!(r4, t);
        let ne = p.not(e);
        let r5 = p.and(e, ne);
        assert_eq!(r5, f);
        let r6 = p.or(e, ne);
        assert_eq!(r6, t);
        let r7 = p.not(ne);
        assert_eq!(r7, e);
    }

    #[test]
    fn eq_is_canonicalized() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let e1 = p.eq(x, y);
        let e2 = p.eq(y, x);
        assert_eq!(e1, e2);
    }

    #[test]
    fn eq_on_same_term_is_true() {
        let mut p = pool();
        let x = p.var("x", 8);
        let k = p.bv_const(Bv::new(8, 1));
        let e = p.add(x, k);
        let e2 = p.add(x, k);
        let same = p.eq(e, e2);
        assert_eq!(p.as_bool_const(same), Some(true));
    }

    #[test]
    fn ult_folds() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 3));
        let b = p.bv_const(Bv::new(8, 9));
        let lt = p.ult(a, b);
        assert_eq!(p.as_bool_const(lt), Some(true));
        let gt = p.ult(b, a);
        assert_eq!(p.as_bool_const(gt), Some(false));
        let x = p.var("x", 8);
        let zero = p.bv_const(Bv::zero(8));
        let ltz = p.ult(x, zero);
        assert_eq!(p.as_bool_const(ltz), Some(false));
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 0xab));
        let wide = p.resize(a, 16);
        assert_eq!(p.as_const(wide), Some(Bv::new(16, 0xab)));
        let narrow = p.resize(a, 4);
        assert_eq!(p.as_const(narrow), Some(Bv::new(4, 0xb)));
    }

    #[test]
    fn ite_folds_on_const_condition() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let t = p.bool_true();
        let f = p.bool_false();
        let i1 = p.ite(t, x, y);
        assert_eq!(i1, x);
        let i2 = p.ite(f, x, y);
        assert_eq!(i2, y);
        let c = p.eq(x, y);
        let i3 = p.ite(c, x, x);
        assert_eq!(i3, x);
    }

    #[test]
    fn eval_matches_construction() {
        let mut p = pool();
        let x = p.var("x", 8);
        let k = p.bv_const(Bv::new(8, 100));
        let sum = p.add(x, k);
        let cond = p.ugt(sum, k);
        let env = |v: VarId| {
            if p.var_name(v) == "x" {
                Some(Bv::new(8, 1))
            } else {
                None
            }
        };
        assert_eq!(p.eval(sum, &env), Some(EvalValue::Bv(Bv::new(8, 101))));
        assert_eq!(p.eval(cond, &env), Some(EvalValue::Bool(true)));
    }

    #[test]
    fn display_is_readable() {
        let mut p = pool();
        let x = p.var("dstIP", 32);
        let k = p.bv_const(Bv::new(32, 0x0a000001));
        let e = p.eq(x, k);
        let s = p.display(e);
        assert!(s.contains("dstIP"), "{s}");
        assert!(s.contains("=="), "{s}");
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn var_width_conflict_panics() {
        let mut p = pool();
        p.var("x", 8);
        p.var("x", 16);
    }

    #[test]
    fn import_rebuilds_structure_across_pools() {
        let mut main = pool();
        let x = main.var("x", 8);
        let y = main.var("y", 8);
        let k = main.bv_const(Bv::new(8, 3));
        let sum = main.add(x, k);
        let e = main.eq(sum, y);
        let lt = main.ult(x, y);
        let top = main.or(e, lt);

        // Worker pool with different id numbering.
        let mut worker = pool();
        worker.var("unrelated", 4);
        let mut cache = HashMap::new();
        let w = worker.import(&main, top, &mut cache);
        // Worker-local operand order of `or` may differ (TermId-sorted),
        // but the pool-independent canonical key must agree.
        assert_eq!(worker.canonical_key(w), main.canonical_key(top));
        // Variables matched by name, not id.
        assert_eq!(worker.var_width(worker.find_var("x").unwrap()), 8);
    }

    #[test]
    fn import_roundtrip_is_identity() {
        // main → worker → main lands on the original TermId: interning is
        // structural and the smart constructors re-canonicalize on the way
        // back. This is what makes parallel output byte-identical.
        let mut main = pool();
        let x = main.var("x", 16);
        let y = main.var("y", 16);
        let k = main.bv_const(Bv::new(16, 0xff));
        let m = main.bv_and(x, k);
        let e1 = main.eq(m, y);
        let e2 = main.ult(y, k);
        let top = main.and(e1, e2);

        let mut worker = pool();
        // Skew the worker's numbering so ids cannot accidentally line up.
        worker.var("z9", 16);
        worker.var("z8", 16);
        let mut fwd = HashMap::new();
        let w = worker.import(&main, top, &mut fwd);
        let mut back = HashMap::new();
        let r = main.import(&worker, w, &mut back);
        assert_eq!(r, top);
    }

    #[test]
    fn import_existing_structure_returns_existing_id() {
        let mut a = pool();
        let x = a.var("x", 8);
        let k = a.bv_const(Bv::new(8, 1));
        let s = a.add(x, k);

        let mut b = pool();
        let bx = b.var("x", 8);
        let bk = b.bv_const(Bv::new(8, 1));
        let bs = b.add(bx, bk);
        let mut cache = HashMap::new();
        assert_eq!(b.import(&a, s, &mut cache), bs);
    }

    #[test]
    fn import_shares_subterms_in_cache() {
        // A deep chain with heavy sharing must not blow up: 40 doublings of
        // a shared subterm is ~2^40 paths if sharing is lost.
        let mut a = pool();
        let mut t = a.var("x", 32);
        for _ in 0..40 {
            t = a.add(t, t); // folds x+x? no: add(t,t) has no a==b rewrite
        }
        let mut b = pool();
        let mut cache = HashMap::new();
        let r = b.import(&a, t, &mut cache);
        assert_eq!(b.width(r), 32);
        assert!(cache.len() <= 42, "sharing preserved, cache={}", cache.len());
    }

    #[test]
    fn canonical_key_is_pool_independent() {
        // Build the same equation with opposite interning orders, so the
        // canonically-sorted (by TermId) operand order differs between
        // pools; the canonical key must not.
        let mut p1 = pool();
        let a1 = p1.var("a", 8);
        let b1 = p1.var("b", 8);
        let e1 = p1.eq(a1, b1);

        let mut p2 = pool();
        let b2 = p2.var("b", 8);
        let a2 = p2.var("a", 8);
        let e2 = p2.eq(a2, b2);

        assert_eq!(p1.canonical_key(e1), p2.canonical_key(e2));

        let f1 = p1.ult(a1, b1);
        let c1 = p1.and(e1, f1);
        let f2 = p2.ult(a2, b2);
        let c2 = p2.and(e2, f2);
        assert_eq!(p1.canonical_key(c1), p2.canonical_key(c2));
    }

    #[test]
    fn stored_shape_is_pool_independent() {
        // Commutative operands are ordered by content hash, not TermId, so
        // the *stored* node — and hence the pretty rendering a parallel
        // merge ends up displaying — is identical no matter the interning
        // order or argument order. (canonical_key would hide a flip here;
        // display follows stored order and would not.)
        let mut p1 = pool();
        let x1 = p1.var("x", 16);
        let k1 = p1.bv_const(Bv::new(16, 0x0800));
        let e1 = p1.eq(x1, k1);

        let mut p2 = pool();
        let k2 = p2.bv_const(Bv::new(16, 0x0800));
        let x2 = p2.var("x", 16);
        let e2 = p2.eq(k2, x2);

        assert_eq!(p1.display(e1), p2.display(e2));

        let y1 = p1.var("y", 16);
        let f1 = p1.eq(y1, k1);
        let c1 = p1.and(e1, f1);
        let y2 = p2.var("y", 16);
        let f2 = p2.eq(y2, k2);
        let c2 = p2.and(f2, e2);
        assert_eq!(p1.display(c1), p2.display(c2));
    }
}
