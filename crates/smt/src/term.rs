//! Hash-consed terms over fixed-width bitvectors and booleans.
//!
//! Terms are interned in a [`TermPool`]: structurally equal terms share one
//! [`TermId`], so the bit-blaster encodes each shared subterm exactly once
//! and equality of ids is equality of terms. Smart constructors perform
//! constant folding and cheap local rewrites — this is what lets the
//! symbolic executor detect trivially-unsatisfiable branch prefixes without
//! touching the SAT engine at all.

use meissa_num::Bv;
use std::collections::HashMap;
use std::fmt;

/// An interned term handle. Cheap to copy; meaningful only with its pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Dense index of the term within its pool (for side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A solver variable handle (a named bitvector input).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub(crate) u32);

/// Binary bitvector operators with bitvector result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BvBinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// Binary bitvector comparators with boolean result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Unsigned less-than.
    Ult,
}

/// The term node structure. `TermId` operands refer back into the pool.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermNode {
    /// A bitvector constant.
    BvConst(Bv),
    /// A named input variable.
    BvVar(VarId),
    /// A binary bitvector operation (both operands same width).
    BvBin(BvBinOp, TermId, TermId),
    /// Bitwise NOT.
    BvNot(TermId),
    /// Logical shift left by a constant.
    BvShl(TermId, u16),
    /// Logical shift right by a constant.
    BvShr(TermId, u16),
    /// Bit extraction `[lo, lo+len)`.
    BvExtract(TermId, u16, u16),
    /// Concatenation (first operand is the high bits).
    BvConcat(TermId, TermId),
    /// `if cond { then } else { els }` over bitvectors.
    BvIte(TermId, TermId, TermId),
    /// A comparison producing a boolean.
    Cmp(CmpOp, TermId, TermId),
    /// A boolean constant.
    BoolConst(bool),
    /// Boolean conjunction.
    BoolAnd(TermId, TermId),
    /// Boolean disjunction.
    BoolOr(TermId, TermId),
    /// Boolean negation.
    BoolNot(TermId),
}

/// Sort of a term: boolean or bitvector of a width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Bitvector sort with width in bits.
    Bv(u16),
}

struct VarInfo {
    name: String,
    width: u16,
}

/// The interning pool for terms and variables.
#[derive(Default)]
pub struct TermPool {
    nodes: Vec<TermNode>,
    sorts: Vec<Sort>,
    intern: HashMap<TermNode, TermId>,
    vars: Vec<VarInfo>,
    var_by_name: HashMap<String, VarId>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks at a term's node.
    pub fn node(&self, t: TermId) -> &TermNode {
        &self.nodes[t.0 as usize]
    }

    /// A term's sort.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.0 as usize]
    }

    /// A term's bitvector width.
    ///
    /// # Panics
    /// Panics if the term is boolean.
    pub fn width(&self, t: TermId) -> u16 {
        match self.sort(t) {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("width() on boolean term"),
        }
    }

    /// The name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize].name
    }

    /// The declared width of a variable.
    pub fn var_width(&self, v: VarId) -> u16 {
        self.vars[v.0 as usize].width
    }

    /// All declared variables.
    pub fn all_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_by_name.get(name).copied()
    }

    fn mk(&mut self, node: TermNode, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.sorts.push(sort);
        self.intern.insert(node, id);
        id
    }

    /// Declares (or retrieves) a named variable term of the given width.
    ///
    /// # Panics
    /// Panics if the name was previously declared with a different width.
    pub fn var(&mut self, name: &str, width: u16) -> TermId {
        let vid = if let Some(&v) = self.var_by_name.get(name) {
            assert_eq!(
                self.vars[v.0 as usize].width, width,
                "variable {name} redeclared with different width"
            );
            v
        } else {
            let v = VarId(self.vars.len() as u32);
            self.vars.push(VarInfo {
                name: name.to_string(),
                width,
            });
            self.var_by_name.insert(name.to_string(), v);
            v
        };
        self.mk(TermNode::BvVar(vid), Sort::Bv(width))
    }

    /// A bitvector constant term.
    pub fn bv_const(&mut self, v: Bv) -> TermId {
        let w = v.width();
        self.mk(TermNode::BvConst(v), Sort::Bv(w))
    }

    /// The boolean constant `true`.
    pub fn bool_true(&mut self) -> TermId {
        self.mk(TermNode::BoolConst(true), Sort::Bool)
    }

    /// The boolean constant `false`.
    pub fn bool_false(&mut self) -> TermId {
        self.mk(TermNode::BoolConst(false), Sort::Bool)
    }

    /// A boolean constant of the given value.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.mk(TermNode::BoolConst(b), Sort::Bool)
    }

    /// If the term is a constant bitvector, its value.
    pub fn as_const(&self, t: TermId) -> Option<Bv> {
        match self.node(t) {
            TermNode::BvConst(v) => Some(*v),
            _ => None,
        }
    }

    /// If the term is a constant boolean, its value.
    pub fn as_bool_const(&self, t: TermId) -> Option<bool> {
        match self.node(t) {
            TermNode::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    fn bin(&mut self, op: BvBinOp, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        assert_eq!(w, self.width(b), "width mismatch in {op:?}");
        // Constant folding.
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let r = match op {
                BvBinOp::Add => x.add(&y),
                BvBinOp::Sub => x.sub(&y),
                BvBinOp::And => x.and(&y),
                BvBinOp::Or => x.or(&y),
                BvBinOp::Xor => x.xor(&y),
            };
            return self.bv_const(r);
        }
        // Identity rewrites.
        match op {
            BvBinOp::Add => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
            }
            BvBinOp::Sub => {
                if self.is_zero_const(b) {
                    return a;
                }
                if a == b {
                    return self.bv_const(Bv::zero(w));
                }
            }
            BvBinOp::And => {
                if self.is_zero_const(a) || self.is_zero_const(b) {
                    return self.bv_const(Bv::zero(w));
                }
                if self.is_ones_const(a) {
                    return b;
                }
                if self.is_ones_const(b) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Or => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
                if self.is_ones_const(a) || self.is_ones_const(b) {
                    return self.bv_const(Bv::ones(w));
                }
                if a == b {
                    return a;
                }
            }
            BvBinOp::Xor => {
                if self.is_zero_const(a) {
                    return b;
                }
                if self.is_zero_const(b) {
                    return a;
                }
                if a == b {
                    return self.bv_const(Bv::zero(w));
                }
            }
        }
        self.mk(TermNode::BvBin(op, a, b), Sort::Bv(w))
    }

    fn is_zero_const(&self, t: TermId) -> bool {
        matches!(self.node(t), TermNode::BvConst(v) if v.is_zero())
    }

    fn is_ones_const(&self, t: TermId) -> bool {
        matches!(self.node(t), TermNode::BvConst(v) if *v == Bv::ones(v.width()))
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Sub, a, b)
    }

    /// Bitwise AND.
    pub fn bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BvBinOp::Xor, a, b)
    }

    /// Bitwise NOT.
    pub fn bv_not(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.not());
        }
        if let TermNode::BvNot(inner) = *self.node(a) {
            return inner;
        }
        let w = self.width(a);
        self.mk(TermNode::BvNot(a), Sort::Bv(w))
    }

    /// Logical shift left by a constant.
    pub fn shl(&mut self, a: TermId, amount: u16) -> TermId {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.shl(amount as u32));
        }
        let w = self.width(a);
        if amount >= w {
            return self.bv_const(Bv::zero(w));
        }
        self.mk(TermNode::BvShl(a, amount), Sort::Bv(w))
    }

    /// Logical shift right by a constant.
    pub fn shr(&mut self, a: TermId, amount: u16) -> TermId {
        if amount == 0 {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.shr(amount as u32));
        }
        let w = self.width(a);
        if amount >= w {
            return self.bv_const(Bv::zero(w));
        }
        self.mk(TermNode::BvShr(a, amount), Sort::Bv(w))
    }

    /// Bit extraction `[lo, lo+len)`.
    pub fn extract(&mut self, a: TermId, lo: u16, len: u16) -> TermId {
        let w = self.width(a);
        assert!(lo + len <= w, "extract out of range");
        if lo == 0 && len == w {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.bv_const(v.extract(lo, len));
        }
        self.mk(TermNode::BvExtract(a, lo, len), Sort::Bv(len))
    }

    /// Concatenation (`hi` supplies the high bits).
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        assert!(w <= Bv::MAX_WIDTH, "concat width exceeds 128");
        if let (Some(a), Some(b)) = (self.as_const(hi), self.as_const(lo)) {
            return self.bv_const(a.concat(&b));
        }
        self.mk(TermNode::BvConcat(hi, lo), Sort::Bv(w))
    }

    /// Zero-extends or truncates `a` to `width`.
    pub fn resize(&mut self, a: TermId, width: u16) -> TermId {
        let w = self.width(a);
        if width == w {
            a
        } else if width < w {
            self.extract(a, 0, width)
        } else {
            let zero = self.bv_const(Bv::zero(width - w));
            self.concat(zero, a)
        }
    }

    /// Bitvector if-then-else.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert_eq!(self.sort(cond), Sort::Bool, "ite condition must be boolean");
        let w = self.width(then);
        assert_eq!(w, self.width(els), "ite arm width mismatch");
        if let Some(b) = self.as_bool_const(cond) {
            return if b { then } else { els };
        }
        if then == els {
            return then;
        }
        self.mk(TermNode::BvIte(cond, then, els), Sort::Bv(w))
    }

    /// Equality comparison.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.width(a), self.width(b), "width mismatch in eq");
        if a == b {
            return self.bool_true();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x == y);
        }
        // Canonical operand order so `eq(a, b)` and `eq(b, a)` intern equal.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermNode::Cmp(CmpOp::Eq, a, b), Sort::Bool)
    }

    /// Disequality (sugar for `not(eq)`).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.width(a), self.width(b), "width mismatch in ult");
        if a == b {
            return self.bool_false();
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x.ult(&y));
        }
        if self.is_zero_const(b) {
            return self.bool_false(); // nothing is < 0
        }
        self.mk(TermNode::Cmp(CmpOp::Ult, a, b), Sort::Bool)
    }

    /// Unsigned greater-than (sugar).
    pub fn ugt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ult(b, a)
    }

    /// Unsigned less-or-equal (sugar for `not(b < a)`).
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not(gt)
    }

    /// Unsigned greater-or-equal (sugar).
    pub fn uge(&mut self, a: TermId, b: TermId) -> TermId {
        self.ule(b, a)
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.bool_false(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        // x ∧ ¬x = false
        if self.is_negation_of(a, b) {
            return self.bool_false();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermNode::BoolAnd(a, b), Sort::Bool)
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_bool_const(a), self.as_bool_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.bool_true(),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_negation_of(a, b) {
            return self.bool_true();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermNode::BoolOr(a, b), Sort::Bool)
    }

    /// Boolean negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        if let Some(b) = self.as_bool_const(a) {
            return self.bool_const(!b);
        }
        if let TermNode::BoolNot(inner) = *self.node(a) {
            return inner;
        }
        self.mk(TermNode::BoolNot(a), Sort::Bool)
    }

    fn is_negation_of(&self, a: TermId, b: TermId) -> bool {
        matches!(self.node(a), TermNode::BoolNot(x) if *x == b)
            || matches!(self.node(b), TermNode::BoolNot(x) if *x == a)
    }

    /// Conjunction over a slice (true for an empty slice).
    pub fn and_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_true();
        for &t in terms {
            acc = self.and(acc, t);
        }
        acc
    }

    /// Disjunction over a slice (false for an empty slice).
    pub fn or_many(&mut self, terms: &[TermId]) -> TermId {
        let mut acc = self.bool_false();
        for &t in terms {
            acc = self.or(acc, t);
        }
        acc
    }

    /// Evaluates a term under a full assignment of variables to values.
    /// Used by tests and by the template instantiation hash post-filter.
    ///
    /// Returns `None` if a variable required by the term has no assignment.
    pub fn eval(&self, t: TermId, env: &dyn Fn(VarId) -> Option<Bv>) -> Option<EvalValue> {
        match self.node(t) {
            TermNode::BvConst(v) => Some(EvalValue::Bv(*v)),
            TermNode::BvVar(v) => env(*v).map(EvalValue::Bv),
            TermNode::BvBin(op, a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bv(match op {
                    BvBinOp::Add => x.add(&y),
                    BvBinOp::Sub => x.sub(&y),
                    BvBinOp::And => x.and(&y),
                    BvBinOp::Or => x.or(&y),
                    BvBinOp::Xor => x.xor(&y),
                }))
            }
            TermNode::BvNot(a) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().not())),
            TermNode::BvShl(a, n) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().shl(*n as u32))),
            TermNode::BvShr(a, n) => Some(EvalValue::Bv(self.eval(*a, env)?.bv().shr(*n as u32))),
            TermNode::BvExtract(a, lo, len) => {
                Some(EvalValue::Bv(self.eval(*a, env)?.bv().extract(*lo, *len)))
            }
            TermNode::BvConcat(a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bv(x.concat(&y)))
            }
            TermNode::BvIte(c, a, b) => {
                if self.eval(*c, env)?.bool() {
                    self.eval(*a, env)
                } else {
                    self.eval(*b, env)
                }
            }
            TermNode::Cmp(op, a, b) => {
                let x = self.eval(*a, env)?.bv();
                let y = self.eval(*b, env)?.bv();
                Some(EvalValue::Bool(match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ult => x.ult(&y),
                }))
            }
            TermNode::BoolConst(b) => Some(EvalValue::Bool(*b)),
            TermNode::BoolAnd(a, b) => Some(EvalValue::Bool(
                self.eval(*a, env)?.bool() && self.eval(*b, env)?.bool(),
            )),
            TermNode::BoolOr(a, b) => Some(EvalValue::Bool(
                self.eval(*a, env)?.bool() || self.eval(*b, env)?.bool(),
            )),
            TermNode::BoolNot(a) => Some(EvalValue::Bool(!self.eval(*a, env)?.bool())),
        }
    }

    /// Pretty-prints a term for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        let mut s = String::new();
        self.fmt_term(t, &mut s);
        s
    }

    fn fmt_term(&self, t: TermId, out: &mut String) {
        use fmt::Write;
        match self.node(t) {
            TermNode::BvConst(v) => {
                let _ = write!(out, "{v}");
            }
            TermNode::BvVar(v) => out.push_str(self.var_name(*v)),
            TermNode::BvBin(op, a, b) => {
                let sym = match op {
                    BvBinOp::Add => "+",
                    BvBinOp::Sub => "-",
                    BvBinOp::And => "&",
                    BvBinOp::Or => "|",
                    BvBinOp::Xor => "^",
                };
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " {sym} ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BvNot(a) => {
                out.push('~');
                self.fmt_term(*a, out);
            }
            TermNode::BvShl(a, n) => {
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " << {n})");
            }
            TermNode::BvShr(a, n) => {
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " >> {n})");
            }
            TermNode::BvExtract(a, lo, len) => {
                self.fmt_term(*a, out);
                let _ = write!(out, "[{}:{}]", lo + len - 1, lo);
            }
            TermNode::BvConcat(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" ++ ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BvIte(c, a, b) => {
                out.push_str("ite(");
                self.fmt_term(*c, out);
                out.push_str(", ");
                self.fmt_term(*a, out);
                out.push_str(", ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ult => "<",
                };
                out.push('(');
                self.fmt_term(*a, out);
                let _ = write!(out, " {sym} ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolConst(b) => {
                let _ = write!(out, "{b}");
            }
            TermNode::BoolAnd(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" && ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolOr(a, b) => {
                out.push('(');
                self.fmt_term(*a, out);
                out.push_str(" || ");
                self.fmt_term(*b, out);
                out.push(')');
            }
            TermNode::BoolNot(a) => {
                out.push('!');
                self.fmt_term(*a, out);
            }
        }
    }
}

/// Result of concrete term evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalValue {
    /// A bitvector result.
    Bv(Bv),
    /// A boolean result.
    Bool(bool),
}

impl EvalValue {
    /// Unwraps the bitvector value.
    pub fn bv(self) -> Bv {
        match self {
            EvalValue::Bv(v) => v,
            EvalValue::Bool(_) => panic!("expected bitvector, got bool"),
        }
    }

    /// Unwraps the boolean value.
    pub fn bool(self) -> bool {
        match self {
            EvalValue::Bool(b) => b,
            EvalValue::Bv(_) => panic!("expected bool, got bitvector"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TermPool {
        TermPool::new()
    }

    #[test]
    fn interning_shares_structure() {
        let mut p = pool();
        let x = p.var("x", 8);
        let c1 = p.bv_const(Bv::new(8, 5));
        let c2 = p.bv_const(Bv::new(8, 5));
        assert_eq!(c1, c2);
        let a1 = p.add(x, c1);
        let a2 = p.add(x, c2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn constant_folding_arith() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 250));
        let b = p.bv_const(Bv::new(8, 10));
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(Bv::new(8, 4)));
    }

    #[test]
    fn identity_rewrites() {
        let mut p = pool();
        let x = p.var("x", 16);
        let zero = p.bv_const(Bv::zero(16));
        let ones = p.bv_const(Bv::ones(16));
        let a1 = p.add(x, zero);
        assert_eq!(a1, x);
        let a2 = p.bv_or(x, zero);
        assert_eq!(a2, x);
        let a3 = p.bv_and(x, ones);
        assert_eq!(a3, x);
        let and0 = p.bv_and(x, zero);
        assert_eq!(p.as_const(and0), Some(Bv::zero(16)));
        let subxx = p.sub(x, x);
        assert_eq!(p.as_const(subxx), Some(Bv::zero(16)));
        let xorxx = p.bv_xor(x, x);
        assert_eq!(p.as_const(xorxx), Some(Bv::zero(16)));
    }

    #[test]
    fn bool_simplification() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let e = p.eq(x, y);
        let t = p.bool_true();
        let f = p.bool_false();
        let r1 = p.and(e, t);
        assert_eq!(r1, e);
        let r2 = p.and(e, f);
        assert_eq!(r2, f);
        let r3 = p.or(e, f);
        assert_eq!(r3, e);
        let r4 = p.or(e, t);
        assert_eq!(r4, t);
        let ne = p.not(e);
        let r5 = p.and(e, ne);
        assert_eq!(r5, f);
        let r6 = p.or(e, ne);
        assert_eq!(r6, t);
        let r7 = p.not(ne);
        assert_eq!(r7, e);
    }

    #[test]
    fn eq_is_canonicalized() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let e1 = p.eq(x, y);
        let e2 = p.eq(y, x);
        assert_eq!(e1, e2);
    }

    #[test]
    fn eq_on_same_term_is_true() {
        let mut p = pool();
        let x = p.var("x", 8);
        let k = p.bv_const(Bv::new(8, 1));
        let e = p.add(x, k);
        let e2 = p.add(x, k);
        let same = p.eq(e, e2);
        assert_eq!(p.as_bool_const(same), Some(true));
    }

    #[test]
    fn ult_folds() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 3));
        let b = p.bv_const(Bv::new(8, 9));
        let lt = p.ult(a, b);
        assert_eq!(p.as_bool_const(lt), Some(true));
        let gt = p.ult(b, a);
        assert_eq!(p.as_bool_const(gt), Some(false));
        let x = p.var("x", 8);
        let zero = p.bv_const(Bv::zero(8));
        let ltz = p.ult(x, zero);
        assert_eq!(p.as_bool_const(ltz), Some(false));
    }

    #[test]
    fn resize_extends_and_truncates() {
        let mut p = pool();
        let a = p.bv_const(Bv::new(8, 0xab));
        let wide = p.resize(a, 16);
        assert_eq!(p.as_const(wide), Some(Bv::new(16, 0xab)));
        let narrow = p.resize(a, 4);
        assert_eq!(p.as_const(narrow), Some(Bv::new(4, 0xb)));
    }

    #[test]
    fn ite_folds_on_const_condition() {
        let mut p = pool();
        let x = p.var("x", 8);
        let y = p.var("y", 8);
        let t = p.bool_true();
        let f = p.bool_false();
        let i1 = p.ite(t, x, y);
        assert_eq!(i1, x);
        let i2 = p.ite(f, x, y);
        assert_eq!(i2, y);
        let c = p.eq(x, y);
        let i3 = p.ite(c, x, x);
        assert_eq!(i3, x);
    }

    #[test]
    fn eval_matches_construction() {
        let mut p = pool();
        let x = p.var("x", 8);
        let k = p.bv_const(Bv::new(8, 100));
        let sum = p.add(x, k);
        let cond = p.ugt(sum, k);
        let env = |v: VarId| {
            if p.var_name(v) == "x" {
                Some(Bv::new(8, 1))
            } else {
                None
            }
        };
        assert_eq!(p.eval(sum, &env), Some(EvalValue::Bv(Bv::new(8, 101))));
        assert_eq!(p.eval(cond, &env), Some(EvalValue::Bool(true)));
    }

    #[test]
    fn display_is_readable() {
        let mut p = pool();
        let x = p.var("dstIP", 32);
        let k = p.bv_const(Bv::new(32, 0x0a000001));
        let e = p.eq(x, k);
        let s = p.display(e);
        assert!(s.contains("dstIP"), "{s}");
        assert!(s.contains("=="), "{s}");
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn var_width_conflict_panics() {
        let mut p = pool();
        p.var("x", 8);
        p.var("x", 16);
    }
}
