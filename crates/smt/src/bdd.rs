//! A hermetic ROBDD engine for match-field-only predicates.
//!
//! Data plane table matches are boolean functions over header-field bits —
//! `field == const`, range guards, and boolean combinations thereof. For
//! that class a reduced ordered BDD answers satisfiability *exactly* and
//! without bit-blasting: the function is `false` iff its root node is the
//! `false` terminal. [`BddEngine`] classifies a term ([`BddEngine::accepts`])
//! and, when it is in class, compiles it to a node ([`BddEngine::build`])
//! over a node table shared across probes.
//!
//! Structure is the textbook trio:
//!
//! * a **node table with hash-consing** — `(level, lo, hi)` triples are
//!   interned, so structurally equal subfunctions share one node and
//!   equality of functions is pointer equality of roots;
//! * **ite/apply with an operation cache** — `ite(f, g, h)` memoizes on the
//!   argument triple, bounding apply cost by the product of node counts
//!   rather than the formula size;
//! * a **variable order derived from the field layout**: bit `j` of solver
//!   variable `v` (a header field interned in layout order) sits at level
//!   `v·128 + (width−1−j)` — fields in layout order, MSB-first within a
//!   field, which keeps the cube for `field == const` a linear chain and
//!   keeps related fields adjacent.

use crate::term::{CmpOp, TermId, TermNode, TermPool, VarId};
use meissa_num::Bv;
use std::collections::HashMap;

/// A node handle into one [`Bdd`]'s table. `0` and `1` are the terminals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

/// The `false` terminal.
pub const FALSE: NodeId = NodeId(0);
/// The `true` terminal.
pub const TRUE: NodeId = NodeId(1);

/// Terminals carry this pseudo-level so "topmost variable" comparisons
/// (smallest level wins) never select them.
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    level: u32,
    lo: NodeId,
    hi: NodeId,
}

/// The raw reduced ordered BDD: node table, unique table, operation cache.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), NodeId>,
    ite_cache: HashMap<(u32, u32, u32), NodeId>,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    pub fn new() -> Self {
        let terminal = |_| Node {
            level: TERMINAL_LEVEL,
            lo: FALSE,
            hi: FALSE,
        };
        Bdd {
            nodes: (0..2u32).map(terminal).collect(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// Decision nodes allocated so far (terminals excluded).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64 - 2
    }

    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].level
    }

    /// Interning constructor: collapses redundant tests (`lo == hi`) and
    /// returns the existing node for a seen `(level, lo, hi)` triple, so
    /// the table stays reduced and canonical by construction.
    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(level < self.level(lo) && level < self.level(hi));
        *self.unique.entry((level, lo.0, hi.0)).or_insert_with(|| {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node { level, lo, hi });
            id
        })
    }

    /// A single positive or negated variable test.
    pub fn literal(&mut self, level: u32, positive: bool) -> NodeId {
        if positive {
            self.mk(level, FALSE, TRUE)
        } else {
            self.mk(level, TRUE, FALSE)
        }
    }

    fn cofactor(&self, n: NodeId, level: u32) -> (NodeId, NodeId) {
        let node = self.nodes[n.0 as usize];
        if node.level == level {
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    /// If-then-else: the one apply operator every boolean connective
    /// reduces to. Memoized on the argument triple.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        let key = (f.0, g.0, h.0);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactor(f, top);
        let (g0, g1) = self.cofactor(g, top);
        let (h0, h1) = self.cofactor(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, FALSE)
    }

    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, TRUE, g)
    }

    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, FALSE, TRUE)
    }

    /// Is the represented function unsatisfiable? Exact by canonicity: a
    /// reduced ordered BDD is `false` iff its root is the `false` terminal.
    pub fn is_false(&self, n: NodeId) -> bool {
        n == FALSE
    }

    /// Evaluates the function under a total assignment of levels to truth
    /// values (test support and cross-checks).
    pub fn eval(&self, mut n: NodeId, assign: &dyn Fn(u32) -> bool) -> bool {
        loop {
            if n == TRUE {
                return true;
            }
            if n == FALSE {
                return false;
            }
            let node = self.nodes[n.0 as usize];
            n = if assign(node.level) { node.hi } else { node.lo };
        }
    }
}

/// A contiguous slice of one solver variable's bits: the whole variable, or
/// a `BvExtract` of it. Bit `j` of the slice is bit `lo + j` of the
/// variable (`j = 0` is the LSB).
#[derive(Clone, Copy)]
struct FieldSlice {
    var: VarId,
    var_width: u16,
    lo: u16,
    len: u16,
}

impl FieldSlice {
    /// BDD level of slice bit `j`: fields in `VarId` (layout) order,
    /// MSB-first within the field, so equality cubes are linear chains.
    fn level(&self, j: u16) -> u32 {
        debug_assert!(j < self.len);
        let var_bit = self.lo + j;
        self.var.0 * 128 + (self.var_width - 1 - var_bit) as u32
    }
}

/// The BDD predicate engine: classification, term compilation, and the
/// shared node table. One engine serves one [`TermPool`] lineage (a session
/// pool or a worker fork of it) — both memo tables key on `TermId`s, which
/// are stable within a lineage.
pub struct BddEngine {
    bdd: Bdd,
    /// `TermId → node` across probes: path prefixes recur constraint by
    /// constraint, so most of a probe's set compiles to cached roots and
    /// only the newest guard does real work.
    build_memo: HashMap<TermId, NodeId>,
    /// `TermId → in-class?` classification memo.
    class_memo: HashMap<TermId, bool>,
}

impl Default for BddEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BddEngine {
    pub fn new() -> Self {
        BddEngine {
            bdd: Bdd::new(),
            build_memo: HashMap::new(),
            class_memo: HashMap::new(),
        }
    }

    /// Decision nodes allocated in the shared table.
    pub fn node_count(&self) -> u64 {
        self.bdd.node_count()
    }

    /// Is `t` a match-field-only predicate — boolean structure over
    /// `field ⋈ const` comparisons (`⋈ ∈ {==, <}`, either operand order,
    /// whole fields or bit slices)? Only such terms compile to BDDs;
    /// everything else (arithmetic, concatenations, field-to-field
    /// relations, hash stand-ins) stays with the SMT solver.
    pub fn accepts(&mut self, pool: &TermPool, t: TermId) -> bool {
        if let Some(&ok) = self.class_memo.get(&t) {
            return ok;
        }
        let ok = match *pool.node(t) {
            TermNode::BoolConst(_) => true,
            TermNode::BoolNot(a) => self.accepts(pool, a),
            TermNode::BoolAnd(a, b) | TermNode::BoolOr(a, b) => {
                self.accepts(pool, a) && self.accepts(pool, b)
            }
            TermNode::Cmp(_, a, b) => match_pair(pool, a, b).is_some(),
            _ => false,
        };
        self.class_memo.insert(t, ok);
        ok
    }

    /// Compiles an accepted term to a node. Call only after
    /// [`BddEngine::accepts`]; out-of-class terms panic.
    pub fn build(&mut self, pool: &TermPool, t: TermId) -> NodeId {
        if let Some(&n) = self.build_memo.get(&t) {
            return n;
        }
        let n = match *pool.node(t) {
            TermNode::BoolConst(b) => {
                if b {
                    TRUE
                } else {
                    FALSE
                }
            }
            TermNode::BoolNot(a) => {
                let na = self.build(pool, a);
                self.bdd.not(na)
            }
            TermNode::BoolAnd(a, b) => {
                let na = self.build(pool, a);
                let nb = self.build(pool, b);
                self.bdd.and(na, nb)
            }
            TermNode::BoolOr(a, b) => {
                let na = self.build(pool, a);
                let nb = self.build(pool, b);
                self.bdd.or(na, nb)
            }
            TermNode::Cmp(op, a, b) => {
                let (slice, c, const_on_left) =
                    match_pair(pool, a, b).expect("build requires an accepted term");
                match (op, const_on_left) {
                    (CmpOp::Eq, _) => self.eq_const(slice, c),
                    // slice < const
                    (CmpOp::Ult, false) => self.ult_const(slice, c),
                    // const < slice
                    (CmpOp::Ult, true) => self.ugt_const(slice, c),
                }
            }
            _ => panic!("build requires an accepted term"),
        };
        self.build_memo.insert(t, n);
        n
    }

    /// Satisfiability of a conjunction of accepted terms; short-circuits on
    /// the `false` terminal.
    pub fn conj_sat(&mut self, pool: &TermPool, sets: &[&[TermId]]) -> bool {
        let mut acc = TRUE;
        for &c in sets.iter().copied().flatten() {
            let n = self.build(pool, c);
            acc = self.bdd.and(acc, n);
            if acc == FALSE {
                return false;
            }
        }
        true
    }

    /// Batched sibling arms: the shared context is conjoined once, each arm
    /// extends it independently — the BDD analogue of
    /// [`crate::Solver::check_under`]'s assumption batch.
    pub fn conj_sat_arms(&mut self, pool: &TermPool, ctx: &[&[TermId]], arms: &[TermId]) -> Vec<bool> {
        let mut base = TRUE;
        for &c in ctx.iter().copied().flatten() {
            let n = self.build(pool, c);
            base = self.bdd.and(base, n);
            if base == FALSE {
                break;
            }
        }
        arms.iter()
            .map(|&arm| {
                if base == FALSE {
                    return false;
                }
                let n = self.build(pool, arm);
                self.bdd.and(base, n) != FALSE
            })
            .collect()
    }

    /// `slice == c`: a linear cube — one node per bit, chained from the
    /// deepest level (slice LSB) up, so no apply recursion is needed.
    fn eq_const(&mut self, slice: FieldSlice, c: Bv) -> NodeId {
        let mut acc = TRUE;
        for j in 0..slice.len {
            let level = slice.level(j);
            acc = if c.bit(j) {
                self.bdd.mk(level, FALSE, acc)
            } else {
                self.bdd.mk(level, acc, FALSE)
            };
        }
        acc
    }

    /// `slice < c`: the comparator chain. Processing LSB→MSB maintains
    /// `acc = "low bits decide less-than"`; at each bit,
    /// `less = (bit < c_bit) ∨ (bit == c_bit ∧ acc)`.
    fn ult_const(&mut self, slice: FieldSlice, c: Bv) -> NodeId {
        let mut acc = FALSE;
        for j in 0..slice.len {
            let level = slice.level(j);
            acc = if c.bit(j) {
                self.bdd.mk(level, TRUE, acc)
            } else {
                self.bdd.mk(level, acc, FALSE)
            };
        }
        acc
    }

    /// `slice > c`, i.e. `c < slice`: the mirrored comparator chain.
    fn ugt_const(&mut self, slice: FieldSlice, c: Bv) -> NodeId {
        let mut acc = FALSE;
        for j in 0..slice.len {
            let level = slice.level(j);
            acc = if c.bit(j) {
                self.bdd.mk(level, FALSE, acc)
            } else {
                self.bdd.mk(level, acc, TRUE)
            };
        }
        acc
    }
}

/// Splits a comparison's operands into `(field slice, constant,
/// const-on-left?)` when exactly that shape is present.
fn match_pair(pool: &TermPool, a: TermId, b: TermId) -> Option<(FieldSlice, Bv, bool)> {
    if let (Some(s), Some(c)) = (slice_of(pool, a), pool.as_const(b)) {
        return Some((s, c, false));
    }
    if let (Some(c), Some(s)) = (pool.as_const(a), slice_of(pool, b)) {
        return Some((s, c, true));
    }
    None
}

/// A term denoting raw field bits: a variable, or an extract of one.
fn slice_of(pool: &TermPool, t: TermId) -> Option<FieldSlice> {
    match *pool.node(t) {
        TermNode::BvVar(v) => Some(FieldSlice {
            var: v,
            var_width: pool.var_width(v),
            lo: 0,
            len: pool.var_width(v),
        }),
        TermNode::BvExtract(a, lo, len) => match *pool.node(a) {
            TermNode::BvVar(v) => Some(FieldSlice {
                var: v,
                var_width: pool.var_width(v),
                lo,
                len,
            }),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckResult, Solver};

    #[test]
    fn hash_consing_dedups_nodes() {
        let mut b = Bdd::new();
        let x = b.literal(3, true);
        let y = b.literal(3, true);
        assert_eq!(x, y);
        assert_eq!(b.node_count(), 1);
        let z = b.literal(3, false);
        assert_ne!(x, z);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn redundant_test_collapses() {
        let mut b = Bdd::new();
        let x = b.literal(1, true);
        // ite(x, y, y) must be y without allocating a node for x's level.
        let y = b.literal(2, true);
        assert_eq!(b.ite(x, y, y), y);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut b = Bdd::new();
        let f = b.literal(0, true);
        let g = b.literal(1, true);
        let h = b.literal(2, true);
        let r = b.ite(f, g, h);
        for bits in 0..8u32 {
            let assign = |level: u32| bits & (1 << level) != 0;
            let want = if assign(0) { assign(1) } else { assign(2) };
            assert_eq!(b.eval(r, &assign), want, "bits {bits:03b}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut b = Bdd::new();
        let x = b.literal(0, true);
        let y = b.literal(1, true);
        let and = b.and(x, y);
        let or = b.or(x, y);
        let nx = b.not(x);
        for bits in 0..4u32 {
            let assign = |level: u32| bits & (1 << level) != 0;
            assert_eq!(b.eval(and, &assign), assign(0) && assign(1));
            assert_eq!(b.eval(or, &assign), assign(0) || assign(1));
            assert_eq!(b.eval(nx, &assign), !assign(0));
        }
    }

    #[test]
    fn contradiction_is_the_false_terminal() {
        let mut b = Bdd::new();
        let x = b.literal(0, true);
        let nx = b.not(x);
        assert_eq!(b.and(x, nx), FALSE);
        assert_eq!(b.or(x, nx), TRUE);
    }

    #[test]
    fn op_cache_reuses_results() {
        let mut b = Bdd::new();
        let x = b.literal(0, true);
        let y = b.literal(1, true);
        let first = b.and(x, y);
        let nodes = b.node_count();
        let second = b.and(x, y);
        assert_eq!(first, second);
        assert_eq!(b.node_count(), nodes, "cached apply allocates nothing");
    }

    /// Exhaustively checks a compiled comparison against direct evaluation
    /// over every value of a small variable.
    fn check_cmp_exhaustive(op: CmpOp, width: u16, konst: u128, const_left: bool) {
        let mut pool = TermPool::new();
        let x = pool.var("x", width);
        let k = pool.bv_const(Bv::new(width, konst));
        let t = match (op, const_left) {
            (CmpOp::Eq, false) => pool.eq(x, k),
            (CmpOp::Eq, true) => pool.eq(k, x),
            (CmpOp::Ult, false) => pool.ult(x, k),
            (CmpOp::Ult, true) => pool.ult(k, x),
        };
        let mut e = BddEngine::new();
        // Constant folding may already have answered (e.g. `x < 0`).
        if let Some(b) = pool.as_bool_const(t) {
            let any = (0..1u128 << width).any(|v| cmp_val(op, const_left, v, konst));
            let all = (0..1u128 << width).all(|v| cmp_val(op, const_left, v, konst));
            assert!(if b { all } else { !any });
            return;
        }
        assert!(e.accepts(&pool, t));
        let n = e.build(&pool, t);
        let v = pool.find_var("x").unwrap();
        for val in 0..1u128 << width {
            let assign = |level: u32| {
                let msb_off = level - v.0 * 128;
                let bit = (width as u32 - 1 - msb_off) as u16;
                val & (1 << bit) != 0
            };
            assert_eq!(
                e.bdd.eval(n, &assign),
                cmp_val(op, const_left, val, konst),
                "{op:?} const_left={const_left} width={width} k={konst} v={val}"
            );
        }
    }

    fn cmp_val(op: CmpOp, const_left: bool, v: u128, k: u128) -> bool {
        match (op, const_left) {
            (CmpOp::Eq, _) => v == k,
            (CmpOp::Ult, false) => v < k,
            (CmpOp::Ult, true) => k < v,
        }
    }

    #[test]
    fn comparisons_match_semantics_exhaustively() {
        for width in [1u16, 3, 5] {
            let max = (1u128 << width) - 1;
            for k in [0u128, 1, max / 2, max] {
                for const_left in [false, true] {
                    check_cmp_exhaustive(CmpOp::Eq, width, k, const_left);
                    check_cmp_exhaustive(CmpOp::Ult, width, k, const_left);
                }
            }
        }
    }

    #[test]
    fn extract_slices_map_to_variable_bits() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let mid = pool.extract(x, 2, 4); // bits 2..6
        let k = pool.bv_const(Bv::new(4, 0b1010));
        let t = pool.eq(mid, k);
        let mut e = BddEngine::new();
        assert!(e.accepts(&pool, t));
        let n = e.build(&pool, t);
        let v = pool.find_var("x").unwrap();
        for val in 0..256u128 {
            let assign = |level: u32| {
                let msb_off = level - v.0 * 128;
                let bit = (8u32 - 1 - msb_off) as u16;
                val & (1 << bit) != 0
            };
            assert_eq!(e.bdd.eval(n, &assign), (val >> 2) & 0xf == 0b1010);
        }
    }

    #[test]
    fn rejects_out_of_class_terms() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let k = pool.bv_const(Bv::new(8, 3));
        let mut e = BddEngine::new();
        let var_to_var = pool.eq(x, y);
        assert!(!e.accepts(&pool, var_to_var), "field-to-field is SMT work");
        let sum = pool.add(x, k);
        let arith = pool.eq(sum, k);
        assert!(!e.accepts(&pool, arith), "arithmetic is SMT work");
        let in_class = pool.eq(x, k);
        let mixed = pool.and(in_class, arith);
        assert!(!e.accepts(&pool, mixed), "one bad conjunct taints the set");
        assert!(e.accepts(&pool, in_class));
    }

    /// The engine-level contract the router relies on: on match-field-only
    /// constraint sets the BDD verdict equals the SMT solver's.
    #[test]
    fn agrees_with_smt_solver_on_match_sets() {
        let mut pool = TermPool::new();
        let dst = pool.var("dstIP", 8);
        let port = pool.var("port", 4);
        let mut terms = Vec::new();
        for k in [1u128, 2, 7] {
            let c = pool.bv_const(Bv::new(8, k));
            terms.push(pool.eq(dst, c));
            let e = pool.eq(dst, c);
            terms.push(pool.not(e));
            terms.push(pool.ult(dst, c));
        }
        for k in [0u128, 3] {
            let c = pool.bv_const(Bv::new(4, k));
            terms.push(pool.eq(port, c));
        }
        // A few conjunctions/disjunctions of the atoms above.
        let (a, b, c, d) = (terms[0], terms[1], terms[3], terms[9]);
        terms.push(pool.and(a, d));
        terms.push(pool.or(a, c));
        let ab = pool.and(a, b);
        terms.push(ab);
        let mut e = BddEngine::new();
        // Pairwise conjunction probes, mirroring prefix+arm shapes.
        for i in 0..terms.len() {
            for j in i..terms.len() {
                let set = [terms[i], terms[j]];
                if !set.iter().all(|&t| e.accepts(&pool, t)) {
                    continue;
                }
                let bdd_sat = e.conj_sat(&pool, &[&set]);
                let mut solver = Solver::new();
                solver.push();
                for &t in &set {
                    solver.assert_term(&mut pool, t);
                }
                let smt_sat = solver.check(&mut pool) == CheckResult::Sat;
                assert_eq!(bdd_sat, smt_sat, "set {i},{j} diverged");
            }
        }
    }

    #[test]
    fn batched_arms_match_individual_probes() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let k1 = pool.bv_const(Bv::new(8, 1));
        let k2 = pool.bv_const(Bv::new(8, 2));
        let ctx = [pool.eq(x, k1)];
        let arm_same = pool.eq(x, k1);
        let arm_clash = pool.eq(x, k2);
        let arm_range = pool.ult(x, k2);
        let arms = [arm_same, arm_clash, arm_range];
        let mut e = BddEngine::new();
        let batch = e.conj_sat_arms(&pool, &[&ctx], &arms);
        let single: Vec<bool> = arms
            .iter()
            .map(|&a| e.conj_sat(&pool, &[&ctx, &[a]]))
            .collect();
        assert_eq!(batch, single);
        assert_eq!(batch, vec![true, false, true]);
    }
}
