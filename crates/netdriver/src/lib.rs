//! `meissa-netdriver`: the wire-level test driver (§4 over real sockets).
//!
//! The in-process driver (`meissa-driver`) injects packets by function
//! call; this crate drives the same test plan over TCP, the way Meissa's
//! deployment runs it against a physical switch via an on-switch agent:
//!
//! - [`agent`] — the switch-agent daemon (also the `meissa-agent` binary):
//!   hosts a `SwitchTarget` behind a length-framed JSON protocol
//!   (`Hello`/`LoadProgram`/`InstallRules`/`Inject`/`Output`/`Stats`/
//!   `Shutdown`), answering each injected packet with its output, logical
//!   egress port, and final-state snapshot.
//! - [`client`] — [`WireDriver`]: the pipelined sender/receiver/checker.
//!   Streams cases over N connections, each split into a batching inject
//!   stage and a collect stage coordinated by channels and atomics, with
//!   per-case deadlines, bounded retries with backoff, duplicate/reorder
//!   tolerance keyed on the packet-ID stamp, and a drain phase that
//!   classifies missing outputs as drops. Verdicts come from the shared
//!   `driver::Checker`, so wire and in-process reports agree case for
//!   case. [`WireDriver::soak`] replays the plan for wall-clock time,
//!   optionally fuzzing packets with seeded mutations.
//! - [`fault`] — seeded transport faults (drop/duplicate/delay/truncate)
//!   injected at the framing layer, so the client's robustness machinery
//!   is itself under test.
//! - [`proto`] — the frame payload codec: two framings, negotiated via
//!   `Hello`. Control messages are always JSON; the hot-path data
//!   messages (`Inject`/`Output` and the sequence pair) use a compact
//!   fixed-width binary layout when both ends speak protocol v2 and
//!   [`Framing::Bin`] is requested (`MEISSA_WIRE_FRAMING=bin`).
//!
//! Everything is `std::net`/`std::thread` only: the workspace stays
//! hermetic.

pub mod agent;
pub mod client;
pub mod fault;
pub mod proto;

pub use agent::{Agent, AgentHandle};
pub use client::{
    fetch_metrics, fetch_stats, hello, install_rules, load_program, shutdown, SoakConfig,
    WireDriver,
};
pub use fault::TransportFaults;
pub use proto::{Framing, Request, Response, BIN_SINCE_VERSION, PROTO_VERSION};
