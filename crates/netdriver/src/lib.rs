//! `meissa-netdriver`: the wire-level test driver (§4 over real sockets).
//!
//! The in-process driver (`meissa-driver`) injects packets by function
//! call; this crate drives the same test plan over TCP, the way Meissa's
//! deployment runs it against a physical switch via an on-switch agent:
//!
//! - [`agent`] — the switch-agent daemon (also the `meissa-agent` binary):
//!   hosts a `SwitchTarget` behind a length-framed JSON protocol
//!   (`Hello`/`LoadProgram`/`InstallRules`/`Inject`/`Output`/`Stats`/
//!   `Shutdown`), answering each injected packet with its output, logical
//!   egress port, and final-state snapshot.
//! - [`client`] — [`WireDriver`]: the concurrent sender/receiver/checker.
//!   Streams cases over N connections with per-case deadlines, bounded
//!   retries with backoff, duplicate/reorder tolerance keyed on the
//!   packet-ID stamp, and a drain phase that classifies missing outputs as
//!   drops. Verdicts come from the shared `driver::Checker`, so wire and
//!   in-process reports agree case for case.
//! - [`fault`] — seeded transport faults (drop/duplicate/delay/truncate)
//!   injected at the framing layer, so the client's robustness machinery
//!   is itself under test.
//! - [`proto`] — the frame payload codec.
//!
//! Everything is `std::net`/`std::thread` only: the workspace stays
//! hermetic.

pub mod agent;
pub mod client;
pub mod fault;
pub mod proto;

pub use agent::{Agent, AgentHandle};
pub use client::{
    fetch_metrics, fetch_stats, hello, install_rules, load_program, shutdown, WireDriver,
};
pub use fault::TransportFaults;
pub use proto::{Request, Response, PROTO_VERSION};
