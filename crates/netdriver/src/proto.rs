//! The agent wire protocol: JSON messages in length-prefixed frames
//! (`meissa_testkit::wire`).
//!
//! Every message is a JSON object whose `"t"` field names the message
//! type. Requests flow client → agent; each `Inject` is answered by one
//! `Output` on the same connection (the agent maps the injected packet's
//! logical egress port back onto the response, so one TCP connection
//! multiplexes all egress ports), and control requests are answered by
//! `Hello`/`Ok`/`Err`/`Stats`. The transport fault layer perturbs `Output`
//! frames only — control responses stay reliable, like a management channel
//! beside a lossy data plane.

use meissa_dataplane::Fault;
use meissa_num::Bv;
use meissa_testkit::json::{tagged, untag, FromJson, Json, JsonError, ToJson};

/// Protocol version, exchanged in `Hello`.
pub const PROTO_VERSION: u64 = 1;

/// Client → agent messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake; the agent answers with [`Response::Hello`].
    Hello {
        /// Client protocol version.
        version: u64,
    },
    /// Compile `source` + `rules` agent-side and host the result with the
    /// given injected backend fault.
    LoadProgram {
        /// Program source text.
        source: String,
        /// Rule-set text.
        rules: String,
        /// Backend fault to inject (`Fault::None` for a faithful target).
        fault: Fault,
    },
    /// Recompile the hosted program with a new rule set.
    InstallRules {
        /// Rule-set text.
        rules: String,
    },
    /// Inject one packet; answered by [`Response::Output`] carrying `id`.
    Inject {
        /// The packet-ID stamp (§4) — echoed in the response.
        id: u64,
        /// Raw packet bytes.
        bytes: Vec<u8>,
    },
    /// Inject an ordered packet sequence against a fresh register file
    /// seeded from `init`; the agent executes it atomically (in-order, no
    /// interleaving with other injects) and answers with one
    /// [`Response::SeqOutput`]. Because every attempt restarts from the
    /// same seeded register file, a retry after a lost response is
    /// idempotent.
    InjectSeq {
        /// Sequence id — echoed in the response.
        id: u64,
        /// Ordered `(packet-ID stamp, bytes)` pairs.
        packets: Vec<(u64, Vec<u8>)>,
        /// Initial register cells as `(field name, width, value)` triples;
        /// unlisted cells start at zero.
        init: Vec<(String, u16, u128)>,
    },
    /// Ask for cumulative traffic counters.
    Stats,
    /// Ask for a live metrics snapshot in Prometheus text exposition
    /// format (agent traffic counters plus every `testkit::obs` metric
    /// registered in the agent process); answered by
    /// [`Response::Metrics`]. Scrapable mid-run — the counters are plain
    /// atomics, so a management-channel request never blocks the data
    /// path.
    Metrics,
    /// Stop the agent's accept loop.
    Shutdown,
}

/// Agent → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// Agent protocol version.
        version: u64,
        /// Whether a program is currently hosted.
        loaded: bool,
        /// The hosted target's fault label (`"none"` when faithful or when
        /// nothing is loaded) — becomes the report's `target_label`.
        label: String,
    },
    /// Success without payload.
    Ok,
    /// Failure; the connection stays usable.
    Err {
        /// What went wrong.
        msg: String,
    },
    /// The switch's observable behaviour for one injected packet.
    Output {
        /// Echo of the inject's packet-ID stamp.
        id: u64,
        /// Emitted packet bytes, or `None` for a drop.
        packet: Option<Vec<u8>>,
        /// Logical egress port, when forwarded.
        port: Option<Bv>,
        /// Final-state snapshot as `(field name, width, value)` triples —
        /// the hardware-model register dump the checker validates intents
        /// against.
        state: Vec<(String, u16, u128)>,
    },
    /// The switch's observable behaviour for one injected sequence: a
    /// per-packet `(id, packet, port, state)` record in injection order.
    SeqOutput {
        /// Echo of the sequence id.
        id: u64,
        /// One `(packet-ID stamp, emitted bytes, egress port, final-state
        /// snapshot)` record per injected packet, in order.
        outputs: Vec<(u64, Option<Vec<u8>>, Option<Bv>, Vec<(String, u16, u128)>)>,
    },
    /// Prometheus text exposition of the agent's live counters.
    Metrics {
        /// `# TYPE` lines plus samples, one metric per stanza.
        text: String,
    },
    /// Cumulative traffic counters.
    Stats {
        /// Packets injected.
        injected: u64,
        /// Packets forwarded.
        forwarded: u64,
        /// Packets dropped.
        dropped: u64,
        /// Forwarded-packet tally per logical egress port value.
        per_port: Vec<(u128, u64)>,
    },
}

/// Encodes a [`Fault`] as JSON, tagged with its [`Fault::name`] string.
pub fn fault_to_json(fault: &Fault) -> Json {
    match fault {
        Fault::None | Fault::ChecksumNotUpdated | Fault::PriorityInverted => {
            Json::Str(fault.name().into())
        }
        Fault::SetValidDropped { header } => tagged(
            fault.name(),
            Json::Obj(vec![("header".into(), header.to_json())]),
        ),
        Fault::FieldOverlap { a, b } => tagged(
            fault.name(),
            Json::Obj(vec![("a".into(), a.to_json()), ("b".into(), b.to_json())]),
        ),
        Fault::WrongArithComparison { width } => tagged(
            fault.name(),
            Json::Obj(vec![("width".into(), (*width as u64).to_json())]),
        ),
        Fault::WrongAssignment { intended, actual } => tagged(
            fault.name(),
            Json::Obj(vec![
                ("intended".into(), intended.to_json()),
                ("actual".into(), actual.to_json()),
            ]),
        ),
        Fault::WrongConstant { field, xor_mask } => tagged(
            fault.name(),
            Json::Obj(vec![
                ("field".into(), field.to_json()),
                ("xor_mask".into(), Json::UInt(*xor_mask)),
            ]),
        ),
    }
}

/// Decodes a [`Fault`] from its tagged JSON encoding.
pub fn fault_from_json(v: &Json) -> Result<Fault, JsonError> {
    let (tag, payload) = untag(v)?;
    Ok(match tag {
        "none" => Fault::None,
        "checksum-not-updated" => Fault::ChecksumNotUpdated,
        "priority-inverted" => Fault::PriorityInverted,
        "setValid-dropped" => Fault::SetValidDropped {
            header: String::from_json(payload.field("header")?)?,
        },
        "field-overlap" => Fault::FieldOverlap {
            a: String::from_json(payload.field("a")?)?,
            b: String::from_json(payload.field("b")?)?,
        },
        "wrong-arith-comparison" => Fault::WrongArithComparison {
            width: u16::from_json(payload.field("width")?)?,
        },
        "wrong-assignment" => Fault::WrongAssignment {
            intended: String::from_json(payload.field("intended")?)?,
            actual: String::from_json(payload.field("actual")?)?,
        },
        "wrong-constant" => Fault::WrongConstant {
            field: String::from_json(payload.field("field")?)?,
            xor_mask: payload.field("xor_mask")?.as_u128()?,
        },
        other => return Err(JsonError::new(format!("unknown fault tag `{other}`"))),
    })
}

/// Lowercase-hex encoding for packet bytes.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, JsonError> {
    if s.len() % 2 != 0 {
        return Err(JsonError::new("hex string has odd length"));
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| JsonError::new("invalid hex digit"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| JsonError::new("invalid hex digit"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

fn obj(t: &str, mut rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("t".to_string(), Json::Str(t.into()))];
    pairs.append(&mut rest);
    Json::Obj(pairs)
}

/// Encodes a `(name, width, value)` final-state snapshot as an array of
/// triples — shared by `Output` and `SeqOutput`.
fn state_to_json(state: &[(String, u16, u128)]) -> Json {
    Json::Arr(
        state
            .iter()
            .map(|(name, w, val)| {
                Json::Arr(vec![name.to_json(), Json::UInt(*w as u128), Json::UInt(*val)])
            })
            .collect(),
    )
}

fn state_from_json(v: &Json) -> Result<Vec<(String, u16, u128)>, JsonError> {
    let mut triples = Vec::new();
    for item in v.as_arr()? {
        let row = item.as_arr()?;
        if row.len() != 3 {
            return Err(JsonError::new("state row must be a triple"));
        }
        triples.push((
            String::from_json(&row[0])?,
            u16::from_json(&row[1])?,
            row[2].as_u128()?,
        ));
    }
    Ok(triples)
}

/// Encodes an optional packet as hex bytes or `null` — shared by `Output`
/// and `SeqOutput`.
fn packet_to_json(packet: &Option<Vec<u8>>) -> Json {
    match packet {
        Some(bytes) => Json::Str(hex_encode(bytes)),
        None => Json::Null,
    }
}

fn packet_from_json(v: &Json) -> Result<Option<Vec<u8>>, JsonError> {
    match v {
        Json::Null => Ok(None),
        Json::Str(s) => Ok(Some(hex_decode(s)?)),
        _ => Err(JsonError::new("packet: expected hex string or null")),
    }
}

fn port_to_json(port: &Option<Bv>) -> Json {
    match port {
        Some(bv) => bv.to_json(),
        None => Json::Null,
    }
}

fn port_from_json(v: &Json) -> Result<Option<Bv>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(Bv::from_json(other)?)),
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Hello { version } => obj("hello", vec![("v".into(), version.to_json())]),
            Request::LoadProgram {
                source,
                rules,
                fault,
            } => obj(
                "load_program",
                vec![
                    ("source".into(), source.to_json()),
                    ("rules".into(), rules.to_json()),
                    ("fault".into(), fault_to_json(fault)),
                ],
            ),
            Request::InstallRules { rules } => {
                obj("install_rules", vec![("rules".into(), rules.to_json())])
            }
            Request::Inject { id, bytes } => obj(
                "inject",
                vec![
                    ("id".into(), id.to_json()),
                    ("bytes".into(), Json::Str(hex_encode(bytes))),
                ],
            ),
            Request::InjectSeq { id, packets, init } => obj(
                "inject_seq",
                vec![
                    ("id".into(), id.to_json()),
                    (
                        "packets".into(),
                        Json::Arr(
                            packets
                                .iter()
                                .map(|(pid, bytes)| {
                                    Json::Obj(vec![
                                        ("id".into(), pid.to_json()),
                                        ("bytes".into(), Json::Str(hex_encode(bytes))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("init".into(), state_to_json(init)),
                ],
            ),
            Request::Stats => obj("stats", vec![]),
            Request::Metrics => obj("metrics", vec![]),
            Request::Shutdown => obj("shutdown", vec![]),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let t = v.field("t")?.as_str()?;
        Ok(match t {
            "hello" => Request::Hello {
                version: u64::from_json(v.field("v")?)?,
            },
            "load_program" => Request::LoadProgram {
                source: String::from_json(v.field("source")?)?,
                rules: String::from_json(v.field("rules")?)?,
                fault: fault_from_json(v.field("fault")?)?,
            },
            "install_rules" => Request::InstallRules {
                rules: String::from_json(v.field("rules")?)?,
            },
            "inject" => Request::Inject {
                id: u64::from_json(v.field("id")?)?,
                bytes: hex_decode(v.field("bytes")?.as_str()?)?,
            },
            "inject_seq" => Request::InjectSeq {
                id: u64::from_json(v.field("id")?)?,
                packets: {
                    let mut packets = Vec::new();
                    for item in v.field("packets")?.as_arr()? {
                        packets.push((
                            u64::from_json(item.field("id")?)?,
                            hex_decode(item.field("bytes")?.as_str()?)?,
                        ));
                    }
                    packets
                },
                init: state_from_json(v.field("init")?)?,
            },
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(JsonError::new(format!("unknown request `{other}`"))),
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Hello {
                version,
                loaded,
                label,
            } => obj(
                "hello",
                vec![
                    ("v".into(), version.to_json()),
                    ("loaded".into(), loaded.to_json()),
                    ("label".into(), label.to_json()),
                ],
            ),
            Response::Ok => obj("ok", vec![]),
            Response::Err { msg } => obj("err", vec![("msg".into(), msg.to_json())]),
            Response::Metrics { text } => obj("metrics", vec![("text".into(), text.to_json())]),
            Response::Output {
                id,
                packet,
                port,
                state,
            } => obj(
                "output",
                vec![
                    ("id".into(), id.to_json()),
                    ("packet".into(), packet_to_json(packet)),
                    ("port".into(), port_to_json(port)),
                    ("state".into(), state_to_json(state)),
                ],
            ),
            Response::SeqOutput { id, outputs } => obj(
                "seq_output",
                vec![
                    ("id".into(), id.to_json()),
                    (
                        "outputs".into(),
                        Json::Arr(
                            outputs
                                .iter()
                                .map(|(pid, packet, port, state)| {
                                    Json::Obj(vec![
                                        ("id".into(), pid.to_json()),
                                        ("packet".into(), packet_to_json(packet)),
                                        ("port".into(), port_to_json(port)),
                                        ("state".into(), state_to_json(state)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
            Response::Stats {
                injected,
                forwarded,
                dropped,
                per_port,
            } => obj(
                "stats",
                vec![
                    ("injected".into(), injected.to_json()),
                    ("forwarded".into(), forwarded.to_json()),
                    ("dropped".into(), dropped.to_json()),
                    (
                        "per_port".into(),
                        Json::Arr(
                            per_port
                                .iter()
                                .map(|(port, n)| {
                                    Json::Arr(vec![Json::UInt(*port), Json::UInt(*n as u128)])
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let t = v.field("t")?.as_str()?;
        Ok(match t {
            "hello" => Response::Hello {
                version: u64::from_json(v.field("v")?)?,
                loaded: v.field("loaded")?.as_bool()?,
                label: String::from_json(v.field("label")?)?,
            },
            "ok" => Response::Ok,
            "err" => Response::Err {
                msg: String::from_json(v.field("msg")?)?,
            },
            "metrics" => Response::Metrics {
                text: String::from_json(v.field("text")?)?,
            },
            "output" => Response::Output {
                id: u64::from_json(v.field("id")?)?,
                packet: packet_from_json(v.field("packet")?)?,
                port: port_from_json(v.field("port")?)?,
                state: state_from_json(v.field("state")?)?,
            },
            "seq_output" => Response::SeqOutput {
                id: u64::from_json(v.field("id")?)?,
                outputs: {
                    let mut outputs = Vec::new();
                    for item in v.field("outputs")?.as_arr()? {
                        outputs.push((
                            u64::from_json(item.field("id")?)?,
                            packet_from_json(item.field("packet")?)?,
                            port_from_json(item.field("port")?)?,
                            state_from_json(item.field("state")?)?,
                        ));
                    }
                    outputs
                },
            },
            "stats" => Response::Stats {
                injected: u64::from_json(v.field("injected")?)?,
                forwarded: u64::from_json(v.field("forwarded")?)?,
                dropped: u64::from_json(v.field("dropped")?)?,
                per_port: {
                    let mut pairs = Vec::new();
                    for item in v.field("per_port")?.as_arr()? {
                        let row = item.as_arr()?;
                        if row.len() != 2 {
                            return Err(JsonError::new("Stats.per_port row must be a pair"));
                        }
                        pairs.push((row[0].as_u128()?, u64::from_json(&row[1])?));
                    }
                    pairs
                },
            },
            other => return Err(JsonError::new(format!("unknown response `{other}`"))),
        })
    }
}

/// Encodes a message into frame payload bytes.
pub fn encode<T: ToJson>(msg: &T) -> Vec<u8> {
    msg.to_json().to_text().into_bytes()
}

/// Decodes frame payload bytes into a message. Fails on non-UTF-8, bad
/// JSON (e.g. a transport-truncated frame), or an unknown message type.
pub fn decode<T: FromJson>(payload: &[u8]) -> Result<T, JsonError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JsonError::new("frame payload is not UTF-8"))?;
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        assert_eq!(decode::<Request>(&encode(&r)).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(decode::<Response>(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello { version: 1 });
        roundtrip_req(Request::LoadProgram {
            source: "header h { x: 8; }".into(),
            rules: "".into(),
            fault: Fault::WrongArithComparison { width: 16 },
        });
        roundtrip_req(Request::InstallRules { rules: "r".into() });
        roundtrip_req(Request::Inject {
            id: 42,
            bytes: vec![0x00, 0xff, 0x10],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn sequence_messages_roundtrip() {
        roundtrip_req(Request::InjectSeq {
            id: 3,
            packets: vec![(10, vec![0xde, 0xad]), (11, vec![0xbe, 0xef, 0x01])],
            init: vec![("REG:seen-POS:0".into(), 1, 1)],
        });
        roundtrip_req(Request::InjectSeq {
            id: 4,
            packets: vec![],
            init: vec![],
        });
        roundtrip_resp(Response::SeqOutput {
            id: 3,
            outputs: vec![
                (
                    10,
                    Some(vec![1, 2]),
                    Some(Bv::new(9, 3)),
                    vec![("REG:seen-POS:0".into(), 1, 1)],
                ),
                (11, None, None, vec![]),
            ],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Hello {
            version: 1,
            loaded: true,
            label: "none".into(),
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Err { msg: "boom".into() });
        roundtrip_resp(Response::Output {
            id: 7,
            packet: Some(vec![1, 2, 3]),
            port: Some(Bv::new(9, 3)),
            state: vec![("meta.drop".into(), 1, 0), ("hdr.ipv4.ttl".into(), 8, 64)],
        });
        roundtrip_resp(Response::Output {
            id: 8,
            packet: None,
            port: None,
            state: vec![],
        });
        roundtrip_resp(Response::Metrics {
            text: "# TYPE meissa_agent_injected_total counter\nmeissa_agent_injected_total 3\n".into(),
        });
        roundtrip_resp(Response::Stats {
            injected: 10,
            forwarded: 7,
            dropped: 3,
            per_port: vec![(3, 5), (4, 2)],
        });
    }

    #[test]
    fn every_fault_variant_roundtrips() {
        let all = [
            Fault::None,
            Fault::SetValidDropped {
                header: "vxlan".into(),
            },
            Fault::FieldOverlap {
                a: "hdr.tcp.seqno".into(),
                b: "hdr.tcp.ackno".into(),
            },
            Fault::WrongArithComparison { width: 8 },
            Fault::WrongAssignment {
                intended: "a".into(),
                actual: "b".into(),
            },
            Fault::ChecksumNotUpdated,
            Fault::WrongConstant {
                field: "f".into(),
                xor_mask: 0xff00,
            },
            Fault::PriorityInverted,
        ];
        for fault in all {
            let back = fault_from_json(&fault_to_json(&fault)).unwrap();
            assert_eq!(back, fault);
        }
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
    }
}
