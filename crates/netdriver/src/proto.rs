//! The agent wire protocol: messages in length-prefixed frames
//! (`meissa_testkit::wire`), in one of two framings.
//!
//! Control messages (`Hello`/`LoadProgram`/`InstallRules`/`Stats`/
//! `Metrics`/`Shutdown` and their answers) are always JSON objects whose
//! `"t"` field names the message type — they are rare, and staying textual
//! keeps them debuggable with `tcpdump`. The **data-plane** messages —
//! `Inject`/`Output`/`InjectSeq`/`SeqOutput`, the per-case hot path — also
//! have a compact fixed-width binary encoding ([`Framing::Bin`]) whose
//! first byte is an opcode in `0x01..=0x04`. A JSON frame always starts
//! with `{` (0x7b), so the two framings coexist on one connection and each
//! frame is self-describing: the agent decodes whatever arrives and
//! answers in the framing the request used. The client opts into binary
//! per run (`MEISSA_WIRE_FRAMING=bin`) only after `Hello` reports an agent
//! version that understands it, so old JSON-only agents still interop.
//!
//! Requests flow client → agent; each `Inject` is answered by one `Output`
//! on the same connection (the agent maps the injected packet's logical
//! egress port back onto the response, so one TCP connection multiplexes
//! all egress ports). The transport fault layer perturbs `Output` frames
//! only — control responses stay reliable, like a management channel
//! beside a lossy data plane.

use meissa_dataplane::Fault;
use meissa_num::Bv;
use meissa_testkit::json::{tagged, untag, FromJson, Json, JsonError, ToJson};
use meissa_testkit::wire::{BinReader, BinWriter};

/// Protocol version, exchanged in `Hello`. Version 2 adds the binary
/// data-plane framing; a version-1 peer is JSON-only.
pub const PROTO_VERSION: u64 = 2;

/// The first protocol version that understands [`Framing::Bin`].
pub const BIN_SINCE_VERSION: u64 = 2;

/// Which encoding the data-plane messages use on the wire. Control
/// messages are JSON in either mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Framing {
    /// Textual JSON frames (the v1 wire format). Default.
    #[default]
    Json,
    /// Fixed-width binary frames for `Inject`/`Output`/`InjectSeq`/
    /// `SeqOutput`; roughly 5× smaller and an order of magnitude cheaper
    /// to encode/decode than the JSON equivalents.
    Bin,
}

impl Framing {
    /// The run-wide default: `MEISSA_WIRE_FRAMING=bin` opts into binary,
    /// anything else (or unset) stays JSON.
    pub fn from_env() -> Framing {
        match std::env::var("MEISSA_WIRE_FRAMING") {
            Ok(v) if v.eq_ignore_ascii_case("bin") => Framing::Bin,
            _ => Framing::Json,
        }
    }

    /// Short label for bench rows and log lines.
    pub fn label(self) -> &'static str {
        match self {
            Framing::Json => "json",
            Framing::Bin => "bin",
        }
    }
}

/// Binary opcodes. A JSON frame's first byte is `{` (0x7b), far from this
/// range, so sniffing the first byte classifies every frame.
const OP_INJECT: u8 = 0x01;
const OP_OUTPUT: u8 = 0x02;
const OP_INJECT_SEQ: u8 = 0x03;
const OP_SEQ_OUTPUT: u8 = 0x04;

/// True when a frame payload is binary-framed (leading opcode byte).
pub fn is_binary(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(&(OP_INJECT..=OP_SEQ_OUTPUT)))
}

/// Client → agent messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake; the agent answers with [`Response::Hello`].
    Hello {
        /// Client protocol version.
        version: u64,
    },
    /// Compile `source` + `rules` agent-side and host the result with the
    /// given injected backend fault.
    LoadProgram {
        /// Program source text.
        source: String,
        /// Rule-set text.
        rules: String,
        /// Backend fault to inject (`Fault::None` for a faithful target).
        fault: Fault,
    },
    /// Recompile the hosted program with a new rule set.
    InstallRules {
        /// Rule-set text.
        rules: String,
    },
    /// Inject one packet; answered by [`Response::Output`] carrying `id`.
    Inject {
        /// The packet-ID stamp (§4) — echoed in the response.
        id: u64,
        /// Raw packet bytes.
        bytes: Vec<u8>,
    },
    /// Inject an ordered packet sequence against a fresh register file
    /// seeded from `init`; the agent executes it atomically (in-order, no
    /// interleaving with other injects) and answers with one
    /// [`Response::SeqOutput`]. Because every attempt restarts from the
    /// same seeded register file, a retry after a lost response is
    /// idempotent.
    InjectSeq {
        /// Sequence id — echoed in the response.
        id: u64,
        /// Ordered `(packet-ID stamp, bytes)` pairs.
        packets: Vec<(u64, Vec<u8>)>,
        /// Initial register cells as `(field name, width, value)` triples;
        /// unlisted cells start at zero.
        init: Vec<(String, u16, u128)>,
    },
    /// Ask for cumulative traffic counters.
    Stats,
    /// Ask for a live metrics snapshot in Prometheus text exposition
    /// format (agent traffic counters plus every `testkit::obs` metric
    /// registered in the agent process); answered by
    /// [`Response::Metrics`]. Scrapable mid-run — the counters are plain
    /// atomics, so a management-channel request never blocks the data
    /// path.
    Metrics,
    /// Stop the agent's accept loop.
    Shutdown,
}

/// Agent → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake answer.
    Hello {
        /// Agent protocol version.
        version: u64,
        /// Whether a program is currently hosted.
        loaded: bool,
        /// The hosted target's fault label (`"none"` when faithful or when
        /// nothing is loaded) — becomes the report's `target_label`.
        label: String,
    },
    /// Success without payload.
    Ok,
    /// Failure; the connection stays usable.
    Err {
        /// What went wrong.
        msg: String,
    },
    /// The switch's observable behaviour for one injected packet.
    Output {
        /// Echo of the inject's packet-ID stamp.
        id: u64,
        /// Emitted packet bytes, or `None` for a drop.
        packet: Option<Vec<u8>>,
        /// Logical egress port, when forwarded.
        port: Option<Bv>,
        /// Final-state snapshot as `(field name, width, value)` triples —
        /// the hardware-model register dump the checker validates intents
        /// against.
        state: Vec<(String, u16, u128)>,
    },
    /// The switch's observable behaviour for one injected sequence: a
    /// per-packet `(id, packet, port, state)` record in injection order.
    SeqOutput {
        /// Echo of the sequence id.
        id: u64,
        /// One `(packet-ID stamp, emitted bytes, egress port, final-state
        /// snapshot)` record per injected packet, in order.
        outputs: Vec<(u64, Option<Vec<u8>>, Option<Bv>, Vec<(String, u16, u128)>)>,
    },
    /// Prometheus text exposition of the agent's live counters.
    Metrics {
        /// `# TYPE` lines plus samples, one metric per stanza.
        text: String,
    },
    /// Cumulative traffic counters.
    Stats {
        /// Packets injected.
        injected: u64,
        /// Packets forwarded.
        forwarded: u64,
        /// Packets dropped.
        dropped: u64,
        /// Forwarded-packet tally per logical egress port value.
        per_port: Vec<(u128, u64)>,
    },
}

/// Encodes a [`Fault`] as JSON, tagged with its [`Fault::name`] string.
pub fn fault_to_json(fault: &Fault) -> Json {
    match fault {
        Fault::None | Fault::ChecksumNotUpdated | Fault::PriorityInverted => {
            Json::Str(fault.name().into())
        }
        Fault::SetValidDropped { header } => tagged(
            fault.name(),
            Json::Obj(vec![("header".into(), header.to_json())]),
        ),
        Fault::FieldOverlap { a, b } => tagged(
            fault.name(),
            Json::Obj(vec![("a".into(), a.to_json()), ("b".into(), b.to_json())]),
        ),
        Fault::WrongArithComparison { width } => tagged(
            fault.name(),
            Json::Obj(vec![("width".into(), (*width as u64).to_json())]),
        ),
        Fault::WrongAssignment { intended, actual } => tagged(
            fault.name(),
            Json::Obj(vec![
                ("intended".into(), intended.to_json()),
                ("actual".into(), actual.to_json()),
            ]),
        ),
        Fault::WrongConstant { field, xor_mask } => tagged(
            fault.name(),
            Json::Obj(vec![
                ("field".into(), field.to_json()),
                ("xor_mask".into(), Json::UInt(*xor_mask)),
            ]),
        ),
    }
}

/// Decodes a [`Fault`] from its tagged JSON encoding.
pub fn fault_from_json(v: &Json) -> Result<Fault, JsonError> {
    let (tag, payload) = untag(v)?;
    Ok(match tag {
        "none" => Fault::None,
        "checksum-not-updated" => Fault::ChecksumNotUpdated,
        "priority-inverted" => Fault::PriorityInverted,
        "setValid-dropped" => Fault::SetValidDropped {
            header: String::from_json(payload.field("header")?)?,
        },
        "field-overlap" => Fault::FieldOverlap {
            a: String::from_json(payload.field("a")?)?,
            b: String::from_json(payload.field("b")?)?,
        },
        "wrong-arith-comparison" => Fault::WrongArithComparison {
            width: u16::from_json(payload.field("width")?)?,
        },
        "wrong-assignment" => Fault::WrongAssignment {
            intended: String::from_json(payload.field("intended")?)?,
            actual: String::from_json(payload.field("actual")?)?,
        },
        "wrong-constant" => Fault::WrongConstant {
            field: String::from_json(payload.field("field")?)?,
            xor_mask: payload.field("xor_mask")?.as_u128()?,
        },
        other => return Err(JsonError::new(format!("unknown fault tag `{other}`"))),
    })
}

/// Lowercase-hex encoding for packet bytes.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, JsonError> {
    if s.len() % 2 != 0 {
        return Err(JsonError::new("hex string has odd length"));
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| JsonError::new("invalid hex digit"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| JsonError::new("invalid hex digit"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

fn obj(t: &str, mut rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("t".to_string(), Json::Str(t.into()))];
    pairs.append(&mut rest);
    Json::Obj(pairs)
}

/// Encodes a `(name, width, value)` final-state snapshot as an array of
/// triples — shared by `Output` and `SeqOutput`.
fn state_to_json(state: &[(String, u16, u128)]) -> Json {
    Json::Arr(
        state
            .iter()
            .map(|(name, w, val)| {
                Json::Arr(vec![name.to_json(), Json::UInt(*w as u128), Json::UInt(*val)])
            })
            .collect(),
    )
}

fn state_from_json(v: &Json) -> Result<Vec<(String, u16, u128)>, JsonError> {
    let mut triples = Vec::new();
    for item in v.as_arr()? {
        let row = item.as_arr()?;
        if row.len() != 3 {
            return Err(JsonError::new("state row must be a triple"));
        }
        triples.push((
            String::from_json(&row[0])?,
            u16::from_json(&row[1])?,
            row[2].as_u128()?,
        ));
    }
    Ok(triples)
}

/// Encodes an optional packet as hex bytes or `null` — shared by `Output`
/// and `SeqOutput`.
fn packet_to_json(packet: &Option<Vec<u8>>) -> Json {
    match packet {
        Some(bytes) => Json::Str(hex_encode(bytes)),
        None => Json::Null,
    }
}

fn packet_from_json(v: &Json) -> Result<Option<Vec<u8>>, JsonError> {
    match v {
        Json::Null => Ok(None),
        Json::Str(s) => Ok(Some(hex_decode(s)?)),
        _ => Err(JsonError::new("packet: expected hex string or null")),
    }
}

fn port_to_json(port: &Option<Bv>) -> Json {
    match port {
        Some(bv) => bv.to_json(),
        None => Json::Null,
    }
}

fn port_from_json(v: &Json) -> Result<Option<Bv>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => Ok(Some(Bv::from_json(other)?)),
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Hello { version } => obj("hello", vec![("v".into(), version.to_json())]),
            Request::LoadProgram {
                source,
                rules,
                fault,
            } => obj(
                "load_program",
                vec![
                    ("source".into(), source.to_json()),
                    ("rules".into(), rules.to_json()),
                    ("fault".into(), fault_to_json(fault)),
                ],
            ),
            Request::InstallRules { rules } => {
                obj("install_rules", vec![("rules".into(), rules.to_json())])
            }
            Request::Inject { id, bytes } => obj(
                "inject",
                vec![
                    ("id".into(), id.to_json()),
                    ("bytes".into(), Json::Str(hex_encode(bytes))),
                ],
            ),
            Request::InjectSeq { id, packets, init } => obj(
                "inject_seq",
                vec![
                    ("id".into(), id.to_json()),
                    (
                        "packets".into(),
                        Json::Arr(
                            packets
                                .iter()
                                .map(|(pid, bytes)| {
                                    Json::Obj(vec![
                                        ("id".into(), pid.to_json()),
                                        ("bytes".into(), Json::Str(hex_encode(bytes))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("init".into(), state_to_json(init)),
                ],
            ),
            Request::Stats => obj("stats", vec![]),
            Request::Metrics => obj("metrics", vec![]),
            Request::Shutdown => obj("shutdown", vec![]),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let t = v.field("t")?.as_str()?;
        Ok(match t {
            "hello" => Request::Hello {
                version: u64::from_json(v.field("v")?)?,
            },
            "load_program" => Request::LoadProgram {
                source: String::from_json(v.field("source")?)?,
                rules: String::from_json(v.field("rules")?)?,
                fault: fault_from_json(v.field("fault")?)?,
            },
            "install_rules" => Request::InstallRules {
                rules: String::from_json(v.field("rules")?)?,
            },
            "inject" => Request::Inject {
                id: u64::from_json(v.field("id")?)?,
                bytes: hex_decode(v.field("bytes")?.as_str()?)?,
            },
            "inject_seq" => Request::InjectSeq {
                id: u64::from_json(v.field("id")?)?,
                packets: {
                    let mut packets = Vec::new();
                    for item in v.field("packets")?.as_arr()? {
                        packets.push((
                            u64::from_json(item.field("id")?)?,
                            hex_decode(item.field("bytes")?.as_str()?)?,
                        ));
                    }
                    packets
                },
                init: state_from_json(v.field("init")?)?,
            },
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(JsonError::new(format!("unknown request `{other}`"))),
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Hello {
                version,
                loaded,
                label,
            } => obj(
                "hello",
                vec![
                    ("v".into(), version.to_json()),
                    ("loaded".into(), loaded.to_json()),
                    ("label".into(), label.to_json()),
                ],
            ),
            Response::Ok => obj("ok", vec![]),
            Response::Err { msg } => obj("err", vec![("msg".into(), msg.to_json())]),
            Response::Metrics { text } => obj("metrics", vec![("text".into(), text.to_json())]),
            Response::Output {
                id,
                packet,
                port,
                state,
            } => obj(
                "output",
                vec![
                    ("id".into(), id.to_json()),
                    ("packet".into(), packet_to_json(packet)),
                    ("port".into(), port_to_json(port)),
                    ("state".into(), state_to_json(state)),
                ],
            ),
            Response::SeqOutput { id, outputs } => obj(
                "seq_output",
                vec![
                    ("id".into(), id.to_json()),
                    (
                        "outputs".into(),
                        Json::Arr(
                            outputs
                                .iter()
                                .map(|(pid, packet, port, state)| {
                                    Json::Obj(vec![
                                        ("id".into(), pid.to_json()),
                                        ("packet".into(), packet_to_json(packet)),
                                        ("port".into(), port_to_json(port)),
                                        ("state".into(), state_to_json(state)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
            Response::Stats {
                injected,
                forwarded,
                dropped,
                per_port,
            } => obj(
                "stats",
                vec![
                    ("injected".into(), injected.to_json()),
                    ("forwarded".into(), forwarded.to_json()),
                    ("dropped".into(), dropped.to_json()),
                    (
                        "per_port".into(),
                        Json::Arr(
                            per_port
                                .iter()
                                .map(|(port, n)| {
                                    Json::Arr(vec![Json::UInt(*port), Json::UInt(*n as u128)])
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let t = v.field("t")?.as_str()?;
        Ok(match t {
            "hello" => Response::Hello {
                version: u64::from_json(v.field("v")?)?,
                loaded: v.field("loaded")?.as_bool()?,
                label: String::from_json(v.field("label")?)?,
            },
            "ok" => Response::Ok,
            "err" => Response::Err {
                msg: String::from_json(v.field("msg")?)?,
            },
            "metrics" => Response::Metrics {
                text: String::from_json(v.field("text")?)?,
            },
            "output" => Response::Output {
                id: u64::from_json(v.field("id")?)?,
                packet: packet_from_json(v.field("packet")?)?,
                port: port_from_json(v.field("port")?)?,
                state: state_from_json(v.field("state")?)?,
            },
            "seq_output" => Response::SeqOutput {
                id: u64::from_json(v.field("id")?)?,
                outputs: {
                    let mut outputs = Vec::new();
                    for item in v.field("outputs")?.as_arr()? {
                        outputs.push((
                            u64::from_json(item.field("id")?)?,
                            packet_from_json(item.field("packet")?)?,
                            port_from_json(item.field("port")?)?,
                            state_from_json(item.field("state")?)?,
                        ));
                    }
                    outputs
                },
            },
            "stats" => Response::Stats {
                injected: u64::from_json(v.field("injected")?)?,
                forwarded: u64::from_json(v.field("forwarded")?)?,
                dropped: u64::from_json(v.field("dropped")?)?,
                per_port: {
                    let mut pairs = Vec::new();
                    for item in v.field("per_port")?.as_arr()? {
                        let row = item.as_arr()?;
                        if row.len() != 2 {
                            return Err(JsonError::new("Stats.per_port row must be a pair"));
                        }
                        pairs.push((row[0].as_u128()?, u64::from_json(&row[1])?));
                    }
                    pairs
                },
            },
            other => return Err(JsonError::new(format!("unknown response `{other}`"))),
        })
    }
}

/// Encodes a message into frame payload bytes.
pub fn encode<T: ToJson>(msg: &T) -> Vec<u8> {
    msg.to_json().to_text().into_bytes()
}

/// Decodes frame payload bytes into a message. Fails on non-UTF-8, bad
/// JSON (e.g. a transport-truncated frame), or an unknown message type.
pub fn decode<T: FromJson>(payload: &[u8]) -> Result<T, JsonError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| JsonError::new("frame payload is not UTF-8"))?;
    T::from_json(&Json::parse(text)?)
}

// ---------------------------------------------------------------------------
// Binary framing for the data-plane messages.
//
// Layouts (all integers big-endian, fixed width):
//   Inject     = 0x01 id:u64 len:u32 bytes[len]
//   Output     = 0x02 id:u64 packet:opt(bytes) port:opt(bv) state
//   InjectSeq  = 0x03 id:u64 n:u32 (pid:u64 len:u32 bytes[len])*n state
//   SeqOutput  = 0x04 id:u64 n:u32 (pid:u64 packet:opt port:opt state)*n
// where
//   opt(x) = present:u8 x?          (present in {0, 1})
//   bv     = width:u16 value[ceil(width/8)]   (big-endian low bytes)
//   state  = n:u32 (name:str16 bv)*n
//   str16  = len:u16 utf8[len]
//
// Bitvector values carry only as many bytes as their width implies — most
// header fields are 1–4 bytes wide, so a fixed 16-byte value would more
// than double a typical state snapshot.
// ---------------------------------------------------------------------------

fn bin_bv(w: &mut BinWriter, width: u16, val: u128) {
    w.u16(width);
    let nb = (width as usize).div_ceil(8).min(16);
    w.raw(&val.to_be_bytes()[16 - nb..]);
}

fn bin_bv_rd(r: &mut BinReader) -> std::io::Result<(u16, u128)> {
    let width = r.u16()?;
    if width > 128 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "binary frame: bitvector wider than 128",
        ));
    }
    let nb = (width as usize).div_ceil(8);
    let mut val = 0u128;
    for &b in r.raw(nb)? {
        val = (val << 8) | b as u128;
    }
    Ok((width, val))
}

fn bin_state(w: &mut BinWriter, state: &[(String, u16, u128)]) {
    w.u32(state.len() as u32);
    for (name, width, val) in state {
        w.str16(name);
        bin_bv(w, *width, *val);
    }
}

fn bin_state_rd(r: &mut BinReader) -> std::io::Result<Vec<(String, u16, u128)>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = r.str16()?.to_string();
        let (width, val) = bin_bv_rd(r)?;
        out.push((name, width, val));
    }
    Ok(out)
}

fn bin_opt_packet(w: &mut BinWriter, packet: &Option<Vec<u8>>) {
    match packet {
        Some(bytes) => {
            w.u8(1);
            w.bytes(bytes);
        }
        None => w.u8(0),
    }
}

fn bin_opt_packet_rd(r: &mut BinReader) -> std::io::Result<Option<Vec<u8>>> {
    match r.u8()? {
        0 => Ok(None),
        _ => Ok(Some(r.bytes()?.to_vec())),
    }
}

fn bin_opt_port(w: &mut BinWriter, port: &Option<Bv>) {
    match port {
        Some(bv) => {
            w.u8(1);
            bin_bv(w, bv.width(), bv.val());
        }
        None => w.u8(0),
    }
}

fn bin_opt_port_rd(r: &mut BinReader) -> std::io::Result<Option<Bv>> {
    match r.u8()? {
        0 => Ok(None),
        _ => {
            let (width, val) = bin_bv_rd(r)?;
            Ok(Some(Bv::new(width, val)))
        }
    }
}

/// Binary-encodes a data-plane request. `None` for control requests —
/// those are JSON in every framing.
fn encode_request_bin(req: &Request) -> Option<Vec<u8>> {
    let mut w = BinWriter::new();
    match req {
        Request::Inject { id, bytes } => {
            w.u8(OP_INJECT);
            w.u64(*id);
            w.bytes(bytes);
        }
        Request::InjectSeq { id, packets, init } => {
            w.u8(OP_INJECT_SEQ);
            w.u64(*id);
            w.u32(packets.len() as u32);
            for (pid, bytes) in packets {
                w.u64(*pid);
                w.bytes(bytes);
            }
            bin_state(&mut w, init);
        }
        _ => return None,
    }
    Some(w.finish())
}

/// Binary-encodes an `Output` response directly from borrowed parts — the
/// agent's hot path, skipping the intermediate [`Response`] and its
/// per-field `String` allocations. Byte-identical to
/// `encode_response_wire(&Response::Output {..}, Framing::Bin)` of the
/// equivalent message (state entries are name-sorted either way).
pub fn encode_output_bin<'a>(
    id: u64,
    packet: Option<&[u8]>,
    port: Option<Bv>,
    state: impl Iterator<Item = (&'a str, u16, u128)>,
) -> Vec<u8> {
    let mut entries: Vec<(&str, u16, u128)> = state.collect();
    entries.sort();
    let mut w = BinWriter::new();
    w.u8(OP_OUTPUT);
    w.u64(id);
    match packet {
        Some(bytes) => {
            w.u8(1);
            w.bytes(bytes);
        }
        None => w.u8(0),
    }
    bin_opt_port(&mut w, &port);
    w.u32(entries.len() as u32);
    for (name, width, val) in entries {
        w.str16(name);
        bin_bv(&mut w, width, val);
    }
    w.finish()
}

/// Binary-encodes a data-plane response. `None` for control responses.
fn encode_response_bin(resp: &Response) -> Option<Vec<u8>> {
    let mut w = BinWriter::new();
    match resp {
        Response::Output {
            id,
            packet,
            port,
            state,
        } => {
            w.u8(OP_OUTPUT);
            w.u64(*id);
            bin_opt_packet(&mut w, packet);
            bin_opt_port(&mut w, port);
            bin_state(&mut w, state);
        }
        Response::SeqOutput { id, outputs } => {
            w.u8(OP_SEQ_OUTPUT);
            w.u64(*id);
            w.u32(outputs.len() as u32);
            for (pid, packet, port, state) in outputs {
                w.u64(*pid);
                bin_opt_packet(&mut w, packet);
                bin_opt_port(&mut w, port);
                bin_state(&mut w, state);
            }
        }
        _ => return None,
    }
    Some(w.finish())
}

fn bad(e: std::io::Error) -> JsonError {
    JsonError::new(format!("binary frame: {e}"))
}

fn decode_request_bin(payload: &[u8]) -> Result<Request, JsonError> {
    let mut r = BinReader::new(payload);
    let op = r.u8().map_err(bad)?;
    let req = match op {
        OP_INJECT => Request::Inject {
            id: r.u64().map_err(bad)?,
            bytes: r.bytes().map_err(bad)?.to_vec(),
        },
        OP_INJECT_SEQ => {
            let id = r.u64().map_err(bad)?;
            let n = r.u32().map_err(bad)? as usize;
            let mut packets = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let pid = r.u64().map_err(bad)?;
                let bytes = r.bytes().map_err(bad)?.to_vec();
                packets.push((pid, bytes));
            }
            let init = bin_state_rd(&mut r).map_err(bad)?;
            Request::InjectSeq { id, packets, init }
        }
        other => return Err(JsonError::new(format!("unknown binary request op {other:#x}"))),
    };
    if !r.is_done() {
        return Err(JsonError::new("binary request has trailing bytes"));
    }
    Ok(req)
}

fn decode_response_bin(payload: &[u8]) -> Result<Response, JsonError> {
    let mut r = BinReader::new(payload);
    let op = r.u8().map_err(bad)?;
    let resp = match op {
        OP_OUTPUT => Response::Output {
            id: r.u64().map_err(bad)?,
            packet: bin_opt_packet_rd(&mut r).map_err(bad)?,
            port: bin_opt_port_rd(&mut r).map_err(bad)?,
            state: bin_state_rd(&mut r).map_err(bad)?,
        },
        OP_SEQ_OUTPUT => {
            let id = r.u64().map_err(bad)?;
            let n = r.u32().map_err(bad)? as usize;
            let mut outputs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let pid = r.u64().map_err(bad)?;
                let packet = bin_opt_packet_rd(&mut r).map_err(bad)?;
                let port = bin_opt_port_rd(&mut r).map_err(bad)?;
                let state = bin_state_rd(&mut r).map_err(bad)?;
                outputs.push((pid, packet, port, state));
            }
            Response::SeqOutput { id, outputs }
        }
        other => {
            return Err(JsonError::new(format!(
                "unknown binary response op {other:#x}"
            )))
        }
    };
    if !r.is_done() {
        return Err(JsonError::new("binary response has trailing bytes"));
    }
    Ok(resp)
}

/// Encodes a request in the given framing. Control requests are JSON in
/// every framing; data-plane requests honour the choice.
pub fn encode_request_wire(req: &Request, framing: Framing) -> Vec<u8> {
    match framing {
        Framing::Bin => encode_request_bin(req).unwrap_or_else(|| encode(req)),
        Framing::Json => encode(req),
    }
}

/// Encodes a response in the given framing (JSON for control responses).
pub fn encode_response_wire(resp: &Response, framing: Framing) -> Vec<u8> {
    match framing {
        Framing::Bin => encode_response_bin(resp).unwrap_or_else(|| encode(resp)),
        Framing::Json => encode(resp),
    }
}

/// Decodes a request frame of either framing, sniffing the first byte.
pub fn decode_request_wire(payload: &[u8]) -> Result<Request, JsonError> {
    if is_binary(payload) {
        decode_request_bin(payload)
    } else {
        decode(payload)
    }
}

/// Decodes a response frame of either framing, sniffing the first byte.
pub fn decode_response_wire(payload: &[u8]) -> Result<Response, JsonError> {
    if is_binary(payload) {
        decode_response_bin(payload)
    } else {
        decode(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        assert_eq!(decode::<Request>(&encode(&r)).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        assert_eq!(decode::<Response>(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello { version: 1 });
        roundtrip_req(Request::LoadProgram {
            source: "header h { x: 8; }".into(),
            rules: "".into(),
            fault: Fault::WrongArithComparison { width: 16 },
        });
        roundtrip_req(Request::InstallRules { rules: "r".into() });
        roundtrip_req(Request::Inject {
            id: 42,
            bytes: vec![0x00, 0xff, 0x10],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn sequence_messages_roundtrip() {
        roundtrip_req(Request::InjectSeq {
            id: 3,
            packets: vec![(10, vec![0xde, 0xad]), (11, vec![0xbe, 0xef, 0x01])],
            init: vec![("REG:seen-POS:0".into(), 1, 1)],
        });
        roundtrip_req(Request::InjectSeq {
            id: 4,
            packets: vec![],
            init: vec![],
        });
        roundtrip_resp(Response::SeqOutput {
            id: 3,
            outputs: vec![
                (
                    10,
                    Some(vec![1, 2]),
                    Some(Bv::new(9, 3)),
                    vec![("REG:seen-POS:0".into(), 1, 1)],
                ),
                (11, None, None, vec![]),
            ],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Hello {
            version: 1,
            loaded: true,
            label: "none".into(),
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Err { msg: "boom".into() });
        roundtrip_resp(Response::Output {
            id: 7,
            packet: Some(vec![1, 2, 3]),
            port: Some(Bv::new(9, 3)),
            state: vec![("meta.drop".into(), 1, 0), ("hdr.ipv4.ttl".into(), 8, 64)],
        });
        roundtrip_resp(Response::Output {
            id: 8,
            packet: None,
            port: None,
            state: vec![],
        });
        roundtrip_resp(Response::Metrics {
            text: "# TYPE meissa_agent_injected_total counter\nmeissa_agent_injected_total 3\n".into(),
        });
        roundtrip_resp(Response::Stats {
            injected: 10,
            forwarded: 7,
            dropped: 3,
            per_port: vec![(3, 5), (4, 2)],
        });
    }

    #[test]
    fn every_fault_variant_roundtrips() {
        let all = [
            Fault::None,
            Fault::SetValidDropped {
                header: "vxlan".into(),
            },
            Fault::FieldOverlap {
                a: "hdr.tcp.seqno".into(),
                b: "hdr.tcp.ackno".into(),
            },
            Fault::WrongArithComparison { width: 8 },
            Fault::WrongAssignment {
                intended: "a".into(),
                actual: "b".into(),
            },
            Fault::ChecksumNotUpdated,
            Fault::WrongConstant {
                field: "f".into(),
                xor_mask: 0xff00,
            },
            Fault::PriorityInverted,
        ];
        for fault in all {
            let back = fault_from_json(&fault_to_json(&fault)).unwrap();
            assert_eq!(back, fault);
        }
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert_eq!(hex_decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn binary_data_messages_roundtrip_and_sniff() {
        let req = Request::Inject {
            id: u64::MAX - 3,
            bytes: vec![0x00, 0x7b, 0xff],
        };
        let enc = encode_request_wire(&req, Framing::Bin);
        assert!(is_binary(&enc));
        assert_eq!(decode_request_wire(&enc).unwrap(), req);

        let resp = Response::Output {
            id: 7,
            packet: Some(vec![1, 2, 3]),
            port: Some(Bv::new(9, 3)),
            state: vec![("meta.drop".into(), 1, 0), ("hdr.ipv4.ttl".into(), 8, 64)],
        };
        let enc = encode_response_wire(&resp, Framing::Bin);
        assert!(is_binary(&enc));
        assert_eq!(decode_response_wire(&enc).unwrap(), resp);

        // Binary is the point: materially smaller than the JSON encoding.
        assert!(enc.len() < encode(&resp).len() / 2, "binary should be compact");

        // The agent's direct-from-parts encoder sorts its entries by name
        // (as `agent::encode_state` does before building a `Response`), so
        // it must be byte-identical to encoding the sorted Response.
        let sorted = Response::Output {
            id: 7,
            packet: Some(vec![1, 2, 3]),
            port: Some(Bv::new(9, 3)),
            state: vec![("hdr.ipv4.ttl".into(), 8, 64), ("meta.drop".into(), 1, 0)],
        };
        let direct = encode_output_bin(
            7,
            Some(&[1, 2, 3]),
            Some(Bv::new(9, 3)),
            [("meta.drop", 1u16, 0u128), ("hdr.ipv4.ttl", 8, 64)]
                .into_iter(),
        );
        assert_eq!(direct, encode_response_wire(&sorted, Framing::Bin));
    }

    #[test]
    fn binary_seq_messages_roundtrip() {
        let req = Request::InjectSeq {
            id: 3,
            packets: vec![(10, vec![0xde, 0xad]), (11, vec![])],
            init: vec![("REG:seen-POS:0".into(), 1, 1)],
        };
        let enc = encode_request_wire(&req, Framing::Bin);
        assert_eq!(decode_request_wire(&enc).unwrap(), req);

        let resp = Response::SeqOutput {
            id: 3,
            outputs: vec![
                (
                    10,
                    Some(vec![1, 2]),
                    Some(Bv::new(9, 3)),
                    vec![("REG:seen-POS:0".into(), 1, 1)],
                ),
                (11, None, None, vec![]),
            ],
        };
        let enc = encode_response_wire(&resp, Framing::Bin);
        assert_eq!(decode_response_wire(&enc).unwrap(), resp);
    }

    #[test]
    fn control_messages_stay_json_under_bin_framing() {
        let req = Request::Hello { version: PROTO_VERSION };
        let enc = encode_request_wire(&req, Framing::Bin);
        assert!(!is_binary(&enc), "control stays textual");
        assert_eq!(enc.first(), Some(&b'{'));
        assert_eq!(decode_request_wire(&enc).unwrap(), req);
        let resp = Response::Ok;
        let enc = encode_response_wire(&resp, Framing::Bin);
        assert!(!is_binary(&enc));
        assert_eq!(decode_response_wire(&enc).unwrap(), resp);
    }

    #[test]
    fn truncated_binary_frames_error_instead_of_panicking() {
        let resp = Response::Output {
            id: 9,
            packet: Some(vec![4; 32]),
            port: None,
            state: vec![("f".into(), 8, 255)],
        };
        let enc = encode_response_wire(&resp, Framing::Bin);
        for cut in 0..enc.len() {
            assert!(
                decode_response_wire(&enc[..cut]).is_err() || cut == 0,
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage is also rejected.
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_response_wire(&padded).is_err());
    }

    #[test]
    fn framing_from_env_labels() {
        assert_eq!(Framing::Json.label(), "json");
        assert_eq!(Framing::Bin.label(), "bin");
        assert_eq!(Framing::default(), Framing::Json);
    }
}
