//! The switch-agent daemon: hosts a [`SwitchTarget`] behind the wire
//! protocol, playing the role of the switch-side agent in the paper's §4
//! test setup (receive packets on an injection port, run the data plane,
//! report what came out of which logical egress port).
//!
//! One TCP connection multiplexes everything: each `Inject` is answered by
//! an `Output` frame on the same connection, tagged with the packet's id
//! and logical egress port. Per-port forwarding tallies are kept in the
//! agent's stats, so the egress-port → stream mapping is observable via
//! `Stats` without needing one socket per port.
//!
//! The connection loop is batch-oriented: it blocks for the first request,
//! then drains every further request the last socket read already buffered
//! ([`FrameReader::buffered_frame`]) — so a pipelined client's burst of N
//! injects costs one read syscall — and accumulates all N responses into
//! one output buffer flushed with a single `write`. Each response is
//! encoded in the framing its request arrived in (binary frames carry an
//! opcode byte; JSON frames start with `{`), so mixed-framing clients and
//! old JSON-only peers need no connection-level mode switch.

use crate::fault::{FaultGate, TransportFaults};
use crate::proto::{
    self, encode, is_binary, Framing, Request, Response, BIN_SINCE_VERSION, PROTO_VERSION,
};
use meissa_dataplane::{Packet, SwitchTarget};
use meissa_ir::ConcreteState;
use meissa_lang::{compile, parse_program, parse_rules, CompiledProgram};
use meissa_testkit::wire::{frame_into, FrameReader};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// A program hosted by the agent.
struct Hosted {
    target: SwitchTarget,
    /// Source text, kept for `InstallRules` recompiles. Absent when the
    /// target was handed to [`Agent::spawn`] pre-built.
    source: Option<String>,
}

/// Cumulative traffic counters. The headline tallies are atomics so
/// concurrent connections never serialize on a lock in the inject path;
/// only the per-port map — touched solely for forwarded packets — sits
/// behind a (narrow) mutex.
#[derive(Default)]
struct AgentStats {
    injected: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    /// Forwarded count per logical egress port value.
    per_port: Mutex<BTreeMap<u128, u64>>,
}

struct Shared {
    addr: SocketAddr,
    hosted: RwLock<Option<Hosted>>,
    stats: AgentStats,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    faults: Option<TransportFaults>,
    /// The protocol version this agent speaks — [`PROTO_VERSION`] normally,
    /// `1` for the JSON-only legacy mode used to test version fallback.
    proto_version: u64,
}

/// Handle to a running agent: its address, and the accept thread to join
/// on shutdown.
pub struct AgentHandle {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    shared: Arc<Shared>,
}

impl AgentHandle {
    /// The address the agent listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the agent: best-effort `Shutdown` frame, then joins the accept
    /// loop.
    pub fn shutdown(self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            let _ = crate::client::shutdown(self.addr);
        }
        let _ = self.accept.join();
    }

    /// Blocks until some client sends `Shutdown` (the daemon main loop).
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// The switch-agent daemon.
pub struct Agent;

impl Agent {
    /// Spawns an agent on an ephemeral loopback port, optionally pre-loaded
    /// with a target and optionally with transport faults on its `Output`
    /// path.
    pub fn spawn(
        target: Option<SwitchTarget>,
        faults: Option<TransportFaults>,
    ) -> io::Result<AgentHandle> {
        Self::serve(TcpListener::bind("127.0.0.1:0")?, target, faults)
    }

    /// Spawns a **protocol-version-1** agent: JSON framing only, rejecting
    /// binary frames. Exists so the client's Hello-negotiated fallback
    /// (binary-preferring client ↔ old agent) is testable.
    pub fn spawn_json_only(
        target: Option<SwitchTarget>,
        faults: Option<TransportFaults>,
    ) -> io::Result<AgentHandle> {
        Self::serve_version(TcpListener::bind("127.0.0.1:0")?, target, faults, 1)
    }

    /// Runs an agent on an already-bound listener.
    pub fn serve(
        listener: TcpListener,
        target: Option<SwitchTarget>,
        faults: Option<TransportFaults>,
    ) -> io::Result<AgentHandle> {
        Self::serve_version(listener, target, faults, PROTO_VERSION)
    }

    fn serve_version(
        listener: TcpListener,
        target: Option<SwitchTarget>,
        faults: Option<TransportFaults>,
        proto_version: u64,
    ) -> io::Result<AgentHandle> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            addr,
            hosted: RwLock::new(target.map(|t| Hosted {
                // Hosted targets always tally rule hits: the accounting is
                // lock-free and makes per-rule coverage scrapable mid-soak.
                target: t.with_tally(),
                source: None,
            })),
            stats: AgentStats::default(),
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            faults,
            proto_version,
        });
        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = accept_shared.clone();
                std::thread::spawn(move || {
                    let _ = handle_conn(conn_shared, stream);
                });
            }
        });
        Ok(AgentHandle {
            addr,
            accept,
            shared,
        })
    }
}

fn compile_target(
    source: &str,
    rules: &str,
    fault: meissa_dataplane::Fault,
) -> Result<SwitchTarget, String> {
    let prog = parse_program(source).map_err(|e| format!("parse error: {e}"))?;
    let ruleset = parse_rules(rules).map_err(|e| format!("rules parse error: {e}"))?;
    let cp = compile(&prog, &ruleset).map_err(|e| format!("compile error: {e}"))?;
    Ok(SwitchTarget::with_fault(&cp, fault).with_tally())
}

/// Serializes a final state as `(name, width, value)` triples, in the
/// field table's deterministic id order.
fn encode_state(program: &CompiledProgram, state: &ConcreteState) -> Vec<(String, u16, u128)> {
    let fields = &program.cfg.fields;
    let mut triples: Vec<(String, u16, u128)> = state
        .iter()
        .map(|(f, bv)| (fields.name(f).to_string(), bv.width(), bv.val()))
        .collect();
    triples.sort();
    triples
}

/// Renders the agent's live traffic counters — plus every `testkit::obs`
/// metric registered in this process — in Prometheus text exposition
/// format. Reads only atomics and a narrow per-port lock, so scraping
/// mid-run never stalls the inject path.
fn metrics_exposition(stats: &AgentStats, target: Option<&SwitchTarget>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# TYPE meissa_agent_injected_total counter\nmeissa_agent_injected_total {}\n",
        stats.injected.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "# TYPE meissa_agent_forwarded_total counter\nmeissa_agent_forwarded_total {}\n",
        stats.forwarded.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "# TYPE meissa_agent_dropped_total counter\nmeissa_agent_dropped_total {}\n",
        stats.dropped.load(Ordering::Relaxed)
    ));
    {
        let per_port = stats.per_port.lock().unwrap();
        if !per_port.is_empty() {
            out.push_str("# TYPE meissa_agent_port_forwarded_total counter\n");
            for (&port, &n) in per_port.iter() {
                out.push_str(&format!(
                    "meissa_agent_port_forwarded_total{{port=\"{port}\"}} {n}\n"
                ));
            }
        }
    }
    if let Some(tally) = target.and_then(|t| t.tally()) {
        // Every arm, zero-hit included: the scraper sees the coverage
        // denominator, not just what happened to fire.
        out.push_str("# TYPE meissa_agent_rule_hits_total counter\n");
        for (table, arm, hits) in tally.snapshot() {
            let arm_label = match arm {
                meissa_ir::RuleArm::Rule(i) => i.to_string(),
                meissa_ir::RuleArm::Miss => "miss".to_string(),
            };
            out.push_str(&format!(
                "meissa_agent_rule_hits_total{{table=\"{table}\",arm=\"{arm_label}\"}} {hits}\n"
            ));
        }
    }
    out.push_str(&meissa_testkit::obs::metrics_text());
    out
}

/// One request off the wire, decoded to owned data so the reader's buffer
/// can be reused for the next frame in the batch.
enum Parsed {
    /// A decoded request, plus the framing it arrived in (its response
    /// answers in kind).
    Req(Request, Framing),
    /// Undecodable (or unsupported-framing) frame; answer with `Err`.
    Bad(String),
}

fn parse_frame(sh: &Shared, frame: &[u8]) -> Parsed {
    if is_binary(frame) && sh.proto_version < BIN_SINCE_VERSION {
        return Parsed::Bad("binary framing not supported (protocol v1)".into());
    }
    match proto::decode_request_wire(frame) {
        Ok(req) => {
            let framing = if is_binary(frame) {
                Framing::Bin
            } else {
                Framing::Json
            };
            Parsed::Req(req, framing)
        }
        Err(e) => Parsed::Bad(format!("bad request: {e}")),
    }
}

/// Appends a reliable (control-path) response to the batch buffer.
fn push_reliable(out: &mut Vec<u8>, resp: &Response) -> io::Result<()> {
    frame_into(out, &encode(resp))
}

/// Processes one request, appending its response(s) to `out`. Returns
/// `true` when the request was `Shutdown`.
fn dispatch(
    sh: &Shared,
    gate: &mut Option<FaultGate>,
    parsed: Parsed,
    out: &mut Vec<u8>,
) -> io::Result<bool> {
    let (req, framing) = match parsed {
        Parsed::Bad(msg) => {
            push_reliable(out, &Response::Err { msg })?;
            return Ok(false);
        }
        Parsed::Req(req, framing) => (req, framing),
    };
    match req {
        Request::Hello { .. } => {
            let (loaded, label) = match &*sh.hosted.read().unwrap() {
                Some(h) => (true, h.target.fault().name().to_string()),
                None => (false, "none".to_string()),
            };
            push_reliable(
                out,
                &Response::Hello {
                    version: sh.proto_version,
                    loaded,
                    label,
                },
            )?;
        }
        Request::LoadProgram {
            source,
            rules,
            fault,
        } => {
            let resp = match compile_target(&source, &rules, fault) {
                Ok(target) => {
                    *sh.hosted.write().unwrap() = Some(Hosted {
                        target,
                        source: Some(source),
                    });
                    Response::Ok
                }
                Err(msg) => Response::Err { msg },
            };
            push_reliable(out, &resp)?;
        }
        Request::InstallRules { rules } => {
            let mut hosted = sh.hosted.write().unwrap();
            let resp = match hosted.as_ref().and_then(|h| h.source.clone()) {
                None => Response::Err {
                    msg: "no recompilable program loaded (agent holds a pre-built target)".into(),
                },
                Some(source) => {
                    let fault = hosted.as_ref().unwrap().target.fault().clone();
                    match compile_target(&source, &rules, fault) {
                        Ok(target) => {
                            *hosted = Some(Hosted {
                                target,
                                source: Some(source),
                            });
                            Response::Ok
                        }
                        Err(msg) => Response::Err { msg },
                    }
                }
            };
            drop(hosted);
            push_reliable(out, &resp)?;
        }
        Request::Inject { id, bytes } => {
            let hosted = sh.hosted.read().unwrap();
            let Some(h) = hosted.as_ref() else {
                drop(hosted);
                push_reliable(
                    out,
                    &Response::Err {
                        msg: "no program loaded".into(),
                    },
                )?;
                return Ok(false);
            };
            let out_pkt = h.target.inject(&Packet { bytes, id });
            // Outputs ride the (possibly faulty) data path, in the
            // framing the inject arrived in. The binary path encodes
            // straight from the target output — no intermediate
            // `Response` and no per-field `String` allocations, which
            // dominate the JSON path's per-case cost.
            let payload = match framing {
                Framing::Bin => {
                    let fields = &h.target.program().cfg.fields;
                    proto::encode_output_bin(
                        id,
                        out_pkt.packet.as_ref().map(|p| p.bytes.as_slice()),
                        out_pkt.egress_port,
                        out_pkt
                            .final_state
                            .iter()
                            .map(|(f, bv)| (fields.name(f), bv.width(), bv.val())),
                    )
                }
                Framing::Json => encode(&Response::Output {
                    id,
                    packet: out_pkt.packet.as_ref().map(|p| p.bytes.clone()),
                    port: out_pkt.egress_port,
                    state: encode_state(h.target.program(), &out_pkt.final_state),
                }),
            };
            let forwarded = out_pkt.packet.is_some();
            let port = out_pkt.egress_port;
            drop(hosted);
            sh.stats.injected.fetch_add(1, Ordering::Relaxed);
            if forwarded {
                sh.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                if let Some(bv) = port {
                    let mut per_port = sh.stats.per_port.lock().unwrap();
                    *per_port.entry(bv.val()).or_insert(0) += 1;
                }
            } else {
                sh.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            match gate.as_mut() {
                Some(g) => g.send(out, payload)?,
                None => frame_into(out, &payload)?,
            }
        }
        Request::InjectSeq { id, packets, init } => {
            let hosted = sh.hosted.read().unwrap();
            let Some(h) = hosted.as_ref() else {
                drop(hosted);
                push_reliable(
                    out,
                    &Response::Err {
                        msg: "no program loaded".into(),
                    },
                )?;
                return Ok(false);
            };
            // Seed a fresh register file from the request's triples.
            // Every attempt restarts from the same seed, so a retried
            // sequence (lost SeqOutput) is idempotent — no interleaving
            // with other injects is possible while this arm runs,
            // because the whole sequence executes under one read-lock
            // acquisition against the target's internal register
            // threading.
            let fields = &h.target.program().cfg.fields;
            let mut seed = ConcreteState::new();
            for (name, width, val) in &init {
                if let Some(f) = fields.get(name) {
                    seed.set(fields, f, meissa_num::Bv::new(*width, *val));
                }
            }
            let wire_packets: Vec<Packet> = packets
                .into_iter()
                .map(|(pid, bytes)| Packet { bytes, id: pid })
                .collect();
            let outs = h.target.inject_sequence(&wire_packets, &seed);
            let outputs: Vec<_> = wire_packets
                .iter()
                .zip(outs.iter())
                .map(|(p, out)| {
                    (
                        p.id,
                        out.packet.as_ref().map(|pk| pk.bytes.clone()),
                        out.egress_port,
                        encode_state(h.target.program(), &out.final_state),
                    )
                })
                .collect();
            drop(hosted);
            sh.stats
                .injected
                .fetch_add(outputs.len() as u64, Ordering::Relaxed);
            for (_, packet, port, _) in &outputs {
                if packet.is_some() {
                    sh.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if let Some(bv) = port {
                        let mut per_port = sh.stats.per_port.lock().unwrap();
                        *per_port.entry(bv.val()).or_insert(0) += 1;
                    }
                } else {
                    sh.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            // One SeqOutput frame for the whole sequence, riding the
            // (possibly faulty) data path like per-packet Outputs do:
            // a fault drops/duplicates/delays the *sequence's* frame,
            // never reorders packets within it — FIFO within a
            // sequence is the contract.
            let resp = Response::SeqOutput { id, outputs };
            let payload = proto::encode_response_wire(&resp, framing);
            match gate.as_mut() {
                Some(g) => g.send(out, payload)?,
                None => frame_into(out, &payload)?,
            }
        }
        Request::Stats => {
            let per_port: Vec<(u128, u64)> = {
                let map = sh.stats.per_port.lock().unwrap();
                map.iter().map(|(&p, &n)| (p, n)).collect()
            };
            let resp = Response::Stats {
                injected: sh.stats.injected.load(Ordering::Relaxed),
                forwarded: sh.stats.forwarded.load(Ordering::Relaxed),
                dropped: sh.stats.dropped.load(Ordering::Relaxed),
                per_port,
            };
            push_reliable(out, &resp)?;
        }
        Request::Metrics => {
            let text = {
                let hosted = sh.hosted.read().unwrap();
                metrics_exposition(&sh.stats, hosted.as_ref().map(|h| &h.target))
            };
            let resp = Response::Metrics { text };
            push_reliable(out, &resp)?;
        }
        Request::Shutdown => {
            push_reliable(out, &Response::Ok)?;
            return Ok(true);
        }
    }
    Ok(false)
}

fn handle_conn(sh: Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let conn_id = sh.conn_seq.fetch_add(1, Ordering::SeqCst);
    let mut gate = sh.faults.map(|f| FaultGate::new(f, conn_id));
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut out: Vec<u8> = Vec::new();
    loop {
        // Block for the first request of a batch; a hangup (or stream
        // error) ends the connection.
        let first = match reader.next_frame() {
            Ok(f) => parse_frame(&sh, f),
            Err(_) => return Ok(()),
        };
        out.clear();
        let mut stop = dispatch(&sh, &mut gate, first, &mut out)?;
        // Drain every request the last read already buffered — a pipelined
        // client's burst is served with zero additional read syscalls, and
        // all its responses coalesce into the single write below.
        while !stop {
            let parsed = match reader.buffered_frame()? {
                Some(f) => parse_frame(&sh, f),
                None => break,
            };
            stop = dispatch(&sh, &mut gate, parsed, &mut out)?;
        }
        writer.write_all(&out)?;
        if stop {
            sh.stop.store(true, Ordering::SeqCst);
            // Poke the accept loop so it notices the stop flag.
            let _ = TcpStream::connect(sh.addr);
            return Ok(());
        }
    }
}
