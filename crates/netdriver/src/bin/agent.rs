//! `meissa-agent`: the switch-agent daemon.
//!
//! Hosts a compiled program behind the wire protocol so a `WireDriver`
//! (or any protocol client) can inject packets and observe outputs.
//!
//! ```text
//! meissa-agent [--listen ADDR] [--program FILE --rules FILE]
//! ```
//!
//! With no `--program`, the agent starts empty and waits for a
//! `LoadProgram` frame. Runs until a `Shutdown` frame arrives.

use meissa_dataplane::{Fault, SwitchTarget};
use meissa_lang::{compile, parse_program, parse_rules};
use meissa_netdriver::Agent;
use std::net::TcpListener;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: meissa-agent [--listen ADDR] [--program FILE --rules FILE]");
    exit(2);
}

fn main() {
    // Honour MEISSA_LOG/MEISSA_TRACE; the `Metrics` RPC serves the obs
    // registry regardless.
    meissa_testkit::obs::init_from_env();
    let mut listen = "127.0.0.1:9917".to_string();
    let mut program_path: Option<String> = None;
    let mut rules_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--program" => program_path = Some(args.next().unwrap_or_else(|| usage())),
            "--rules" => rules_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let target = match (&program_path, &rules_path) {
        (None, None) => None,
        (Some(p), Some(r)) => {
            let source = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                exit(1);
            });
            let rules = std::fs::read_to_string(r).unwrap_or_else(|e| {
                eprintln!("cannot read {r}: {e}");
                exit(1);
            });
            let prog = parse_program(&source).unwrap_or_else(|e| {
                eprintln!("parse error in {p}: {e}");
                exit(1);
            });
            let ruleset = parse_rules(&rules).unwrap_or_else(|e| {
                eprintln!("rules parse error in {r}: {e}");
                exit(1);
            });
            let cp = compile(&prog, &ruleset).unwrap_or_else(|e| {
                eprintln!("compile error: {e}");
                exit(1);
            });
            Some(SwitchTarget::with_fault(&cp, Fault::None))
        }
        _ => {
            eprintln!("--program and --rules must be given together");
            usage();
        }
    };

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        exit(1);
    });
    let handle = Agent::serve(listener, target, None).unwrap_or_else(|e| {
        eprintln!("agent failed to start: {e}");
        exit(1);
    });
    println!("meissa-agent listening on {}", handle.addr());
    handle.wait();
}
