//! The transport fault layer: seeded drop/duplicate/delay/truncate at the
//! framing layer, so the client's retry/dedup/reorder machinery is itself
//! under test. Faults apply only to `Output` frames — the control half of
//! the protocol (Hello/Ok/Err/Stats) stays reliable, like a management
//! channel beside a lossy data plane.

use meissa_testkit::rng::{RngExt, SeedableRng, StdRng};
use meissa_testkit::wire::write_frame;
use std::io::{self, Write};

/// Fault rates in parts per thousand (integer so the config is exactly
/// reproducible), plus the RNG seed. All-zero rates make the gate a plain
/// pass-through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportFaults {
    /// RNG seed; each connection derives its own stream from this.
    pub seed: u64,
    /// Probability (‰) an `Output` frame is silently discarded.
    pub drop_per_mille: u16,
    /// Probability (‰) an `Output` frame is sent twice.
    pub dup_per_mille: u16,
    /// Probability (‰) an `Output` frame is held back and emitted after a
    /// later frame (reordering).
    pub delay_per_mille: u16,
    /// Probability (‰) an `Output` frame's payload is cut in half — still
    /// well-framed, but no longer parseable JSON.
    pub truncate_per_mille: u16,
}

impl TransportFaults {
    /// All four fault kinds at the same rate.
    pub fn uniform(seed: u64, per_mille: u16) -> Self {
        TransportFaults {
            seed,
            drop_per_mille: per_mille,
            dup_per_mille: per_mille,
            delay_per_mille: per_mille,
            truncate_per_mille: per_mille,
        }
    }
}

/// Per-connection fault injector sitting on the agent's `Output` write
/// path.
pub struct FaultGate {
    rng: StdRng,
    cfg: TransportFaults,
    /// A delayed frame waiting to be emitted after a later one.
    held: Option<Vec<u8>>,
}

impl FaultGate {
    /// A gate for connection number `conn_id`; each connection gets an
    /// independent deterministic stream.
    pub fn new(cfg: TransportFaults, conn_id: u64) -> Self {
        FaultGate {
            rng: StdRng::seed_from_u64(
                cfg.seed ^ conn_id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            cfg,
            held: None,
        }
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        // Always consume one draw so the stream advances identically
        // whatever the configured rates.
        self.rng.random_range(0u64..1000) < per_mille as u64
    }

    /// Sends one frame through the fault gate.
    pub fn send(&mut self, w: &mut impl Write, payload: Vec<u8>) -> io::Result<()> {
        let dropped = self.roll(self.cfg.drop_per_mille);
        let delayed = self.roll(self.cfg.delay_per_mille);
        let truncated = self.roll(self.cfg.truncate_per_mille);
        let duplicated = self.roll(self.cfg.dup_per_mille);
        if dropped {
            return Ok(());
        }
        if delayed && self.held.is_none() {
            self.held = Some(payload);
            return Ok(());
        }
        let out = if truncated {
            payload[..payload.len() / 2].to_vec()
        } else {
            payload
        };
        write_frame(w, &out)?;
        if duplicated {
            write_frame(w, &out)?;
        }
        if let Some(h) = self.held.take() {
            // The delayed frame rides out behind this one: reordering.
            write_frame(w, &h)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_testkit::wire::FrameReader;

    fn collect(wire: &[u8]) -> Vec<Vec<u8>> {
        let mut r = FrameReader::new(wire);
        let mut out = Vec::new();
        while let Ok(f) = r.next_frame() {
            out.push(f.to_vec());
        }
        out
    }

    #[test]
    fn zero_rates_pass_everything_through_in_order() {
        let mut gate = FaultGate::new(TransportFaults::default(), 0);
        let mut wire = Vec::new();
        for i in 0u8..20 {
            gate.send(&mut wire, vec![i; 3]).unwrap();
        }
        let frames = collect(&wire);
        assert_eq!(frames.len(), 20);
        assert_eq!(frames[7], vec![7u8; 3]);
    }

    #[test]
    fn faults_perturb_the_stream_deterministically() {
        let cfg = TransportFaults::uniform(11, 200);
        let run = |conn_id: u64| {
            let mut gate = FaultGate::new(cfg, conn_id);
            let mut wire = Vec::new();
            for i in 0u8..100 {
                gate.send(&mut wire, vec![i; 4]).unwrap();
            }
            collect(&wire)
        };
        let a = run(0);
        // Deterministic: same seed + conn id → identical perturbation.
        assert_eq!(a, run(0));
        // Different connections get different streams.
        assert_ne!(a, run(1));
        // At 20% drop something must go missing, and at 20% dup/delay the
        // count and order must differ from a clean run.
        let sent: usize = 100;
        assert_ne!(a.len(), sent);
        // Truncated frames are half-length.
        assert!(a.iter().any(|f| f.len() == 2), "expected a truncated frame");
    }
}
