//! The client side of the wire driver: pipelined sender/receiver/checker
//! streaming test cases to a remote agent over N connections.
//!
//! The sender is `driver::plan_cases` — the same enumeration the
//! in-process driver uses, so both produce case-for-case comparable
//! reports. Planning (SAT solving per template) happens **before** the
//! replay clock starts: the report's `elapsed`/throughput measure the wire
//! tier — serialize, send, agent execution, receive, check — not the
//! solver, whose cost is accounted separately by the solver benches.
//!
//! Each connection runs two decoupled stages coordinated only by channels
//! and atomics — no mutex is held on the hot path:
//!
//! - the **inject stage** (its own thread) pulls cases from the shared
//!   queue as window space opens, computes the expected output from the
//!   client-side reference `SwitchTarget` (overlapping the reference
//!   interpreter with the agent's processing of already-sent cases),
//!   coalesces the encoded frames of a pull chunk into one buffer, and
//!   flushes it with a single `write` syscall (drain-on-idle: whatever
//!   accumulated goes out as soon as no more cases are immediately
//!   sendable). Retransmit frames arrive from the collect stage over a
//!   channel and take priority.
//! - the **collect stage** owns the `FrameReader` and the pending table:
//!   it matches responses to cases by the packet-ID stamp (§4) — immune to
//!   duplication and reordering — runs the checker, scans deadlines, and
//!   hands expired cases back to the inject stage for retransmission
//!   (bounded attempts, linear backoff; after the final attempt one drain
//!   period, then the missing output is classified as a drop).
//!
//! The outstanding-case budget is shared across the run and split per
//! connection ([`TOTAL_WINDOW`]), so adding connections does not multiply
//! the agent-side queue depth. Retry scheduling is one code path
//! ([`RetryTable`]) shared by the single-case pipeline and the sequence
//! driver. Verdicts come from the shared transport-agnostic
//! `driver::Checker`, so wire and in-process reports agree case for case.

use crate::proto::{
    decode, encode, decode_response_wire, encode_request_wire, Framing, Request, Response,
    BIN_SINCE_VERSION, PROTO_VERSION,
};
use meissa_core::{RunOutput, StatefulRunOutput};
use meissa_dataplane::{Fault, Packet, SwitchTarget, TargetOutput};
use meissa_driver::{
    plan_cases, plan_sequence_cases, CaseResult, CaseSpec, Checker, Observation, SeqCaseSpec,
    SoakStats, TestReport, Verdict,
};
use meissa_ir::ConcreteState;
use meissa_lang::CompiledProgram;
use meissa_testkit::obs;
use meissa_testkit::rng::{RngExt, SeedableRng, StdRng};
use meissa_testkit::wire::{frame_into, write_frame, FrameReader};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many injects the whole run keeps outstanding, across every
/// connection. The budget is split per connection rather than granted per
/// connection: with a fixed per-connection window, adding connections
/// multiplied the queue depth at the agent, and by Little's law the extra
/// outstanding cases bought latency, not throughput (4 connections × 16
/// outstanding pushed loopback p50 from ~11ms to ~49ms while throughput
/// *dropped*). Splitting the budget keeps the agent-side queue depth
/// constant as connections scale.
const TOTAL_WINDOW: usize = 16;

/// Floor on the per-connection share of [`TOTAL_WINDOW`], so a high
/// connection count still pipelines enough to cover the network RTT.
const MIN_WINDOW: usize = 4;

/// How many cases a connection pulls per queue visit. Pulling in small
/// chunks amortizes the source lock without letting one connection hoard
/// work it cannot send yet; the chunk's frames coalesce into one write.
const PULL_CHUNK: usize = 4;

/// The retry machinery's timing knobs, shared by the single-case pipeline
/// and the sequence driver so both age, retransmit, and give up on cases
/// identically.
#[derive(Clone, Copy, Debug)]
struct RetrySchedule {
    /// Per-attempt response deadline.
    case_timeout: Duration,
    /// Total send attempts per case (first send included).
    max_attempts: u32,
    /// Extra deadline added per retry (linear backoff).
    backoff: Duration,
    /// Grace period after the final attempt before a missing output is
    /// classified as a drop.
    drain_timeout: Duration,
}

impl RetrySchedule {
    /// Deadline for the attempt numbered `attempt` (1-based) sent at
    /// `now`. The final attempt gets its response window plus the drain
    /// period; intermediate attempts back off linearly.
    fn deadline_for(&self, now: Instant, attempt: u32) -> Instant {
        if attempt >= self.max_attempts {
            now + self.case_timeout + self.drain_timeout
        } else if attempt <= 1 {
            now + self.case_timeout
        } else {
            now + self.case_timeout + self.backoff * attempt
        }
    }
}

/// A handshaken data connection: write half + framed read half.
type ConnPair = (TcpStream, FrameReader<TcpStream>);

/// One in-flight request awaiting its response.
struct Pending<T> {
    item: T,
    /// The full length-prefixed frame, kept for retransmission.
    frame: Vec<u8>,
    attempts: u32,
    first_sent: Instant,
    deadline: Instant,
}

/// A resolved in-flight request: the payload plus its retry telemetry.
struct Resolved<T> {
    wire_id: u64,
    item: T,
    attempts: u32,
    latency: Duration,
}

/// The pending-request table: wire-id keyed matching (which deduplicates
/// duplicated/reordered responses for free — a stale id simply misses),
/// deadline aging, bounded retransmission, and the drop verdict after the
/// drain period. One implementation serves both the windowed single-case
/// pipeline and the stop-and-wait sequence driver.
struct RetryTable<T> {
    schedule: RetrySchedule,
    pending: HashMap<u64, Pending<T>>,
}

impl<T> RetryTable<T> {
    fn new(schedule: RetrySchedule) -> Self {
        RetryTable {
            schedule,
            pending: HashMap::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Registers a just-sent request.
    fn insert(&mut self, wire_id: u64, frame: Vec<u8>, item: T) {
        let now = Instant::now();
        self.pending.insert(
            wire_id,
            Pending {
                item,
                frame,
                attempts: 1,
                first_sent: now,
                deadline: self.schedule.deadline_for(now, 1),
            },
        );
    }

    /// Matches a response id to its pending request. `None` for stale ids
    /// (duplicates, frames delayed past their retransmit) — the caller
    /// ignores those, which is the dedup semantics.
    fn resolve(&mut self, wire_id: u64) -> Option<Resolved<T>> {
        self.pending.remove(&wire_id).map(|p| Resolved {
            wire_id,
            item: p.item,
            attempts: p.attempts,
            latency: p.first_sent.elapsed(),
        })
    }

    /// Ages the table: requests past their deadline are retransmitted via
    /// `resend(wire_id, attempt, frame)` with an extended deadline, and
    /// requests that exhausted their attempts (drain period included) are
    /// returned as given-up.
    fn scan_expired(
        &mut self,
        mut resend: impl FnMut(u64, u32, &[u8]) -> io::Result<()>,
    ) -> io::Result<Vec<Resolved<T>>> {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(&id, _)| id)
            .collect();
        let mut gave_up = Vec::new();
        for id in expired {
            let p = self.pending.get_mut(&id).unwrap();
            if p.attempts >= self.schedule.max_attempts {
                let p = self.pending.remove(&id).unwrap();
                gave_up.push(Resolved {
                    wire_id: id,
                    item: p.item,
                    attempts: p.attempts,
                    latency: p.first_sent.elapsed(),
                });
            } else {
                p.attempts += 1;
                resend(id, p.attempts, &p.frame)?;
                p.deadline = self.schedule.deadline_for(now, p.attempts);
            }
        }
        Ok(gave_up)
    }
}

/// A supplier of wire cases for the pipelined engine. `pull` appends up to
/// `max` cases and returns `false` once the source is exhausted for good.
trait CaseSource: Sync {
    fn pull(&self, max: usize, out: &mut Vec<WireCase>) -> bool;
}

/// The fixed, planned case queue of a normal run (reversed; popped from
/// the tail).
struct VecSource(Mutex<Vec<WireCase>>);

impl CaseSource for VecSource {
    fn pull(&self, max: usize, out: &mut Vec<WireCase>) -> bool {
        let mut q = self.0.lock().unwrap();
        for _ in 0..max {
            match q.pop() {
                Some(c) => out.push(c),
                None => return false,
            }
        }
        true
    }
}

/// Consumer of finished cases. `got_response` distinguishes a real agent
/// answer from the drain-phase give-up (where `obs` is
/// [`Observation::missing`]).
trait CaseSink: Sync {
    fn resolve(
        &self,
        case: WireCase,
        obs: &Observation,
        got_response: bool,
        attempts: u32,
        latency: Duration,
    );
}

/// The wire-level test driver for one program.
pub struct WireDriver<'p> {
    program: &'p CompiledProgram,
    addr: SocketAddr,
    connections: usize,
    packets_per_template: usize,
    structural_checks: bool,
    schedule: RetrySchedule,
    /// Requested data-plane framing; the effective framing is negotiated
    /// down to JSON when the agent's `Hello` predates binary support.
    framing: Framing,
}

impl<'p> WireDriver<'p> {
    /// A driver for `program` against the agent at `addr`. The data-plane
    /// framing defaults to [`Framing::from_env`] (`MEISSA_WIRE_FRAMING`).
    pub fn new(program: &'p CompiledProgram, addr: SocketAddr) -> Self {
        WireDriver {
            program,
            addr,
            connections: 1,
            packets_per_template: 1,
            structural_checks: true,
            schedule: RetrySchedule {
                case_timeout: Duration::from_millis(100),
                max_attempts: 8,
                backoff: Duration::from_millis(25),
                drain_timeout: Duration::from_millis(500),
            },
            framing: Framing::from_env(),
        }
    }

    /// Streams cases over `n` concurrent connections.
    pub fn with_connections(mut self, n: usize) -> Self {
        self.connections = n.max(1);
        self
    }

    /// Sets how many distinct packets each template is instantiated into.
    pub fn with_packets_per_template(mut self, n: usize) -> Self {
        self.packets_per_template = n.max(1);
        self
    }

    /// Disables the structural packet validation (baseline-tester mode).
    pub fn without_structural_checks(mut self) -> Self {
        self.structural_checks = false;
        self
    }

    /// Requests a data-plane framing explicitly (overriding the
    /// environment default). Binary still falls back to JSON against a
    /// pre-v2 agent.
    pub fn with_framing(mut self, framing: Framing) -> Self {
        self.framing = framing;
        self
    }

    /// Tunes the retry machinery: per-attempt deadline, total attempts,
    /// and per-retry backoff increment.
    pub fn with_retries(
        mut self,
        case_timeout: Duration,
        max_attempts: u32,
        backoff: Duration,
    ) -> Self {
        self.schedule.case_timeout = case_timeout;
        self.schedule.max_attempts = max_attempts.max(1);
        self.schedule.backoff = backoff;
        self
    }

    /// Sets the post-final-attempt drain period.
    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.schedule.drain_timeout = t;
        self
    }

    /// Handshakes and settles the effective framing: the requested one if
    /// the agent's protocol version understands it, JSON otherwise.
    fn negotiate(&self) -> io::Result<(String, Framing)> {
        let (version, _loaded, label) = hello(self.addr)?;
        let framing = match self.framing {
            Framing::Bin if version >= BIN_SINCE_VERSION => Framing::Bin,
            _ => Framing::Json,
        };
        Ok((label, framing))
    }

    /// Runs every template in `run` against the remote agent and checks
    /// results, exactly as `TestDriver::run` does in-process.
    ///
    /// The report's `elapsed` covers the **replay phase only** — planning
    /// (template instantiation, i.e. SAT solving) happens before the clock
    /// starts, so `cases_per_sec` measures the wire tier, not the solver.
    pub fn run(&self, run: &mut RunOutput) -> io::Result<TestReport> {
        obs::init_from_env();
        let mut run_span = obs::span("wire.run");
        let plan = plan_cases(self.program, run, self.packets_per_template);

        // One reference target and one checker for the whole run, shared by
        // every connection: both answer through `&self`, so no lock — and no
        // per-connection program clone — mediates the hot check path. The
        // reference's prebuilt parser plan also serializes the case packets.
        let reference = SwitchTarget::new(self.program);
        let fields = &self.program.cfg.fields;

        let mut slots: Vec<Option<CaseResult>> = vec![None; plan.len()];
        let mut work: Vec<WireCase> = Vec::new();
        for (slot, spec) in plan.into_iter().enumerate() {
            match spec {
                CaseSpec::Skip {
                    template_id,
                    reason,
                } => {
                    slots[slot] = Some(CaseResult::new(
                        template_id,
                        Verdict::Skipped { reason },
                        Vec::new(),
                    ));
                }
                CaseSpec::Case {
                    template_id,
                    wire_id,
                    input,
                } => match reference.plan().serialize_state(fields, &input, wire_id) {
                    Err(e) => {
                        slots[slot] = Some(CaseResult::new(
                            template_id,
                            Verdict::Skipped {
                                reason: format!("cannot serialize: {e}"),
                            },
                            Vec::new(),
                        ));
                    }
                    Ok(packet) => work.push(WireCase {
                        slot,
                        template_id,
                        wire_id,
                        input,
                        packet,
                        expected: None,
                    }),
                },
            }
        }

        let (label, framing) = self.negotiate()?;
        let checker = if self.structural_checks {
            Checker::new(self.program)
        } else {
            Checker::without_structural_checks(self.program)
        };

        let nconn = self.connections.min(work.len()).max(1);
        let conns = self.connect_all(nconn)?;
        let ncases = work.len();
        // Dynamic pulling: cases queue front-to-back (popped from the
        // reversed vec's tail) and each connection takes the next one as its
        // send window opens. A connection slowed by retries naturally takes
        // fewer cases, where static round-robin sharding made the whole run
        // wait on the unluckiest shard.
        work.reverse();
        let source = VecSource(Mutex::new(work));
        let sink = RunSink {
            checker: &checker,
            slots: Mutex::new(slots),
        };

        // The replay clock starts here: planning and serialization are the
        // solver's cost, and connection setup is one-time — already spent.
        let started = Instant::now();
        self.drive(conns, &source, &sink, &reference, framing)?;

        let mut report = TestReport::new(&label);
        report.cases = sink
            .slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|s| s.expect("every planned case produced a result"))
            .collect();
        report.elapsed = started.elapsed();
        if obs::trace_on() {
            run_span.field("cases", ncases as u64);
            run_span.field("connections", nconn as u64);
            drop(run_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        Ok(report)
    }

    /// Establishes and handshakes `nconn` data connections, outside the
    /// replay clock — connection setup is one-time cost, not wire-tier
    /// throughput.
    fn connect_all(&self, nconn: usize) -> io::Result<Vec<ConnPair>> {
        (0..nconn)
            .map(|_| {
                let stream = TcpStream::connect(self.addr)?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_millis(2)))?;
                let mut writer = stream.try_clone()?;
                let mut reader = FrameReader::new(stream);
                write_frame(&mut writer, &encode(&Request::Hello { version: PROTO_VERSION }))?;
                wait_for_hello(&mut reader)?;
                Ok((writer, reader))
            })
            .collect()
    }

    /// Spawns one pipelined worker per pre-connected pair over
    /// `source`/`sink` and joins them, propagating the first I/O error.
    fn drive<Src: CaseSource, Snk: CaseSink>(
        &self,
        conns: Vec<ConnPair>,
        source: &Src,
        sink: &Snk,
        reference: &SwitchTarget,
        framing: Framing,
    ) -> io::Result<()> {
        let window = (TOTAL_WINDOW / conns.len()).max(MIN_WINDOW);
        let outcomes: Vec<io::Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = conns
                .into_iter()
                .map(|conn| {
                    s.spawn(move || self.run_conn(conn, source, sink, reference, window, framing))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("connection worker panicked"))
                .collect()
        });
        for outcome in outcomes {
            outcome?;
        }
        Ok(())
    }

    /// Drives one connection: an inject thread (batched sends) and the
    /// collect loop (matching, checking, retry scheduling) coordinated by
    /// channels and an in-flight counter — no shared mutex on the hot path.
    fn run_conn<Src: CaseSource, Snk: CaseSink>(
        &self,
        (writer, mut reader): ConnPair,
        source: &Src,
        sink: &Snk,
        reference: &SwitchTarget,
        window: usize,
        framing: Framing,
    ) -> io::Result<()> {
        let in_flight = AtomicUsize::new(0);
        // Registration channel: inject → collect, carrying each sent case.
        // A case is registered *before* its bytes reach the socket, so the
        // collect stage can never see a response for an unregistered case.
        let (reg_tx, reg_rx) = std::sync::mpsc::channel::<Pending<WireCase>>();
        // Retransmit channel: collect → inject, carrying pre-framed bytes.
        let (retx_tx, retx_rx) = std::sync::mpsc::channel::<Vec<u8>>();

        std::thread::scope(|s| {
            let inject = s.spawn({
                let in_flight = &in_flight;
                move || {
                    inject_stage(
                        writer, source, reference, in_flight, window, framing, reg_tx, retx_rx,
                    )
                }
            });
            let inject_thread = inject.thread().clone();
            let collected =
                self.collect_stage(&mut reader, sink, &in_flight, reg_rx, retx_tx, &inject_thread);
            let injected = inject.join().expect("inject stage panicked");
            collected.and(injected)
        })
    }

    /// The collect stage: owns the reader and the pending table; matches,
    /// checks, ages, and hands retransmissions back to the inject stage.
    fn collect_stage<Snk: CaseSink>(
        &self,
        reader: &mut FrameReader<TcpStream>,
        sink: &Snk,
        in_flight: &AtomicUsize,
        reg_rx: Receiver<Pending<WireCase>>,
        retx_tx: Sender<Vec<u8>>,
        inject_thread: &std::thread::Thread,
    ) -> io::Result<()> {
        let mut table = RetryTable::<WireCase>::new(self.schedule);
        let mut reg_done = false;
        let mut conn_span = obs::span("wire.conn");
        let mut cases = 0u64;
        let mut retries = 0u64;
        let mut drops = 0u64;

        // Absorbs queued registrations into the table; returns true when
        // the inject stage has hung up (no more new cases will come).
        let drain_regs =
            |table: &mut RetryTable<WireCase>,
             reg_done: &mut bool,
             rx: &Receiver<Pending<WireCase>>| {
                while !*reg_done {
                    match rx.try_recv() {
                        Ok(p) => {
                            let Pending { item, frame, .. } = p;
                            let id = item.wire_id;
                            table.insert(id, frame, item);
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => *reg_done = true,
                    }
                }
            };

        let result = loop {
            drain_regs(&mut table, &mut reg_done, &reg_rx);
            if reg_done && table.is_empty() {
                break Ok(());
            }
            match reader.poll_frame() {
                Err(e) => break Err(e),
                Ok(Some(frame)) => {
                    // A transport-truncated frame fails to decode; drop it —
                    // the retry path recovers the case.
                    let Ok(resp) = decode_response_wire(frame) else {
                        continue;
                    };
                    match resp {
                        Response::Output {
                            id,
                            packet,
                            port,
                            state,
                        } => {
                            // The registration may still sit in the channel
                            // if the response raced the drain above.
                            if !table.pending.contains_key(&id) {
                                drain_regs(&mut table, &mut reg_done, &reg_rx);
                            }
                            let Some(r) = table.resolve(id) else {
                                continue; // duplicate or long-delayed frame
                            };
                            let obs = Observation {
                                packet: packet.map(|bytes| Packet { bytes, id }),
                                egress_port: port,
                                final_state: decode_state(self.program, &state),
                            };
                            in_flight.fetch_sub(1, Ordering::Release);
                            // A window slot opened: wake the inject stage if
                            // it parked on a full window (unpark is one
                            // atomic when it didn't).
                            inject_thread.unpark();
                            cases += 1;
                            if obs::active() {
                                wire_obs().case_latency_us.record(r.latency.as_micros() as u64);
                                // The send and the verdict are separated by
                                // other windowed cases, so the case span is
                                // recorded retroactively: one send→check
                                // span per case, parented under this
                                // connection's span.
                                obs::span_closed(
                                    "wire.case",
                                    obs::now_ns().saturating_sub(r.latency.as_nanos() as u64),
                                    r.latency.as_nanos() as u64,
                                    &[("id", id), ("attempts", r.attempts as u64)],
                                );
                            }
                            sink.resolve(r.item, &obs, true, r.attempts, r.latency);
                        }
                        Response::Err { msg } => {
                            break Err(io::Error::other(format!("agent error: {msg}")));
                        }
                        // Stray control responses (e.g. a duplicate Hello)
                        // are ignorable.
                        _ => {}
                    }
                }
                Ok(None) => {
                    // Deadline scan: expired cases are retransmitted by the
                    // inject stage; exhausted ones become drop verdicts.
                    let scan = table.scan_expired(|id, attempt, frame| {
                        retries += 1;
                        obs::event(
                            "wire.retry",
                            &[
                                ("id", id),
                                ("attempt", attempt as u64),
                                (
                                    "backoff_ms",
                                    (self.schedule.backoff * attempt).as_millis() as u64,
                                ),
                            ],
                        );
                        if obs::active() {
                            wire_obs().retries.add(1);
                        }
                        retx_tx
                            .send(frame.to_vec())
                            .map_err(|_| io::Error::other("inject stage gone"))?;
                        inject_thread.unpark();
                        Ok(())
                    });
                    match scan {
                        Err(e) => break Err(e),
                        Ok(gave_up) => {
                            for r in gave_up {
                                in_flight.fetch_sub(1, Ordering::Release);
                                inject_thread.unpark();
                                cases += 1;
                                drops += 1;
                                obs::event(
                                    "wire.drop",
                                    &[("id", r.wire_id), ("attempts", r.attempts as u64)],
                                );
                                if obs::active() {
                                    wire_obs().dropped.add(1);
                                }
                                // Drain phase verdict: the output never
                                // arrived; the sink judges the missing
                                // observation against the reference.
                                sink.resolve(
                                    r.item,
                                    &Observation::missing(),
                                    false,
                                    r.attempts,
                                    r.latency,
                                );
                            }
                        }
                    }
                }
            }
        };
        if obs::trace_on() {
            conn_span.field("cases", cases);
            conn_span.field("retries", retries);
            conn_span.field("drops", drops);
        }
        drop(conn_span);
        obs::park_current_thread();
        // Dropping retx_tx (here, via scope end) unblocks the inject
        // stage's retransmit service loop.
        result
    }

    /// Runs every sequence template in `run` against the remote agent and
    /// checks each packet position, exactly as `TestDriver::run_sequences`
    /// does in-process.
    ///
    /// Sequences go over **one** connection, one at a time: in-order
    /// delivery within a sequence is the whole point of stateful testing,
    /// so a sequence is never split across connections or interleaved with
    /// another. Transport faults still apply *between* sequences — a lost
    /// `SeqOutput` is retried whole, which is safe because the agent
    /// reseeds the register file from the request on every attempt.
    pub fn run_sequences(&self, run: &mut StatefulRunOutput) -> io::Result<TestReport> {
        obs::init_from_env();
        let mut run_span = obs::span("wire.sequence_run");
        run_span.field("k", run.k as u64);
        let started = Instant::now();
        let plan = plan_sequence_cases(run);
        let (label, framing) = self.negotiate()?;

        let reference = SwitchTarget::new(self.program);
        let checker = if self.structural_checks {
            Checker::new(self.program)
        } else {
            Checker::without_structural_checks(self.program)
        };

        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(2)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = FrameReader::new(stream);
        write_frame(&mut writer, &encode(&Request::Hello { version: PROTO_VERSION }))?;
        wait_for_hello(&mut reader)?;

        let mut report = TestReport::new(&label);
        let mut seq_wire_id = 0u64;
        for spec in plan {
            match spec {
                SeqCaseSpec::Skip {
                    sequence_id,
                    reason,
                } => report.push(CaseResult::new(
                    sequence_id,
                    Verdict::Skipped { reason },
                    Vec::new(),
                )),
                SeqCaseSpec::Case {
                    sequence_id,
                    wire_ids,
                    case,
                } => {
                    seq_wire_id += 1;
                    for r in self.run_one_sequence(
                        &mut writer,
                        &mut reader,
                        &reference,
                        &checker,
                        framing,
                        seq_wire_id,
                        sequence_id,
                        &wire_ids,
                        &case,
                    )? {
                        report.push(r);
                    }
                }
            }
        }
        report.elapsed = started.elapsed();
        if obs::trace_on() {
            run_span.field("cases", report.cases.len() as u64);
            drop(run_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        Ok(report)
    }

    /// Sends one concrete sequence as a single `InjectSeq`, waits for its
    /// `SeqOutput` (retrying whole on loss, via the same [`RetryTable`]
    /// the single-case pipeline uses), and checks every packet position.
    /// Mirrors `TestDriver::check_sequence` verdict-for-verdict.
    #[allow(clippy::too_many_arguments)]
    fn run_one_sequence(
        &self,
        writer: &mut TcpStream,
        reader: &mut FrameReader<TcpStream>,
        reference: &SwitchTarget,
        checker: &Checker,
        framing: Framing,
        seq_wire_id: u64,
        sequence_id: usize,
        wire_ids: &[u64],
        case: &meissa_core::SequenceCase,
    ) -> io::Result<Vec<CaseResult>> {
        let fields = &self.program.cfg.fields;
        let mut packets = Vec::with_capacity(case.packets.len());
        for (input, &wid) in case.packets.iter().zip(wire_ids) {
            match reference.plan().serialize_state(fields, input, wid) {
                Ok(p) => packets.push(p),
                Err(e) => {
                    return Ok(vec![CaseResult::new(
                        sequence_id,
                        Verdict::Skipped {
                            reason: format!("cannot serialize sequence packet: {e}"),
                        },
                        Vec::new(),
                    )])
                }
            }
        }
        let expected = reference.inject_sequence(&packets, &case.initial_registers);
        let req = Request::InjectSeq {
            id: seq_wire_id,
            packets: packets.iter().map(|p| (p.id, p.bytes.clone())).collect(),
            init: encode_init(self.program, &case.initial_registers),
        };
        let payload = encode_request_wire(&req, framing);
        let mut frame = Vec::with_capacity(payload.len() + 4);
        frame_into(&mut frame, &payload)?;

        let mut table = RetryTable::<()>::new(self.schedule);
        writer.write_all(&frame)?;
        table.insert(seq_wire_id, frame, ());
        // Wait for the matching SeqOutput; stale ids (a duplicate from an
        // earlier retry, frames delayed by the fault gate) fall through
        // harmlessly because sequence ids are unique within the run.
        let (outputs, latency) = loop {
            match reader.poll_frame()? {
                Some(frame) => {
                    let Ok(resp) = decode_response_wire(frame) else {
                        continue;
                    };
                    match resp {
                        Response::SeqOutput { id, outputs } => {
                            if let Some(r) = table.resolve(id) {
                                break (Some(outputs), r.latency);
                            }
                        }
                        Response::Err { msg } => {
                            return Err(io::Error::other(format!("agent error: {msg}")));
                        }
                        _ => {}
                    }
                }
                None => {
                    let gave_up = table.scan_expired(|id, attempt, frame| {
                        obs::event(
                            "wire.seq_retry",
                            &[("id", id), ("attempt", attempt as u64)],
                        );
                        writer.write_all(frame)
                    })?;
                    if let Some(r) = gave_up.into_iter().next() {
                        // Drain period after the final attempt elapsed: the
                        // whole sequence's output is missing.
                        break (None, r.latency);
                    }
                }
            }
        };

        let mut results = Vec::with_capacity(packets.len());
        for (i, packet) in packets.iter().enumerate() {
            let obs = outputs
                .as_deref()
                .and_then(|outs| outs.iter().find(|(pid, ..)| *pid == packet.id))
                .map(|(_, bytes, port, state)| Observation {
                    packet: bytes.clone().map(|bytes| Packet {
                        bytes,
                        id: packet.id,
                    }),
                    egress_port: *port,
                    final_state: decode_state(self.program, state),
                })
                .unwrap_or_else(Observation::missing);
            let mut r =
                checker.check_case(sequence_id, &case.packets[i], packet, &expected[i], &obs);
            r.latency = latency;
            results.push(r);
        }
        Ok(results)
    }

    /// Sustained-soak mode: replays the planned cases in a loop for
    /// `cfg.duration` wall-clock time — optionally mutating each packet
    /// FP4-style ([`SoakConfig::fuzz`]) — while the agent's Prometheus
    /// `Metrics` RPC stays scrapable on a side connection. Divergences
    /// between the agent's observed behaviour and the client reference are
    /// classified by direct output comparison (not intents) into stable
    /// classes. On a faithful target every class count must be zero.
    ///
    /// Throughput accounting matches [`WireDriver::run`]: planning happens
    /// before the clock starts; `SoakStats::elapsed` covers replay only.
    pub fn soak(&self, run: &mut RunOutput, cfg: SoakConfig) -> io::Result<SoakStats> {
        obs::init_from_env();
        let mut soak_span = obs::span("wire.soak");
        let plan = plan_cases(self.program, run, self.packets_per_template);
        // The reference interpreter tallies rule hits as it computes
        // expected outputs, so the soak doubles as a coverage measurement
        // of the replayed case mix.
        let reference = SwitchTarget::new(self.program).with_tally();
        let fields = &self.program.cfg.fields;

        let mut protos: Vec<WireCase> = Vec::new();
        let mut max_id = 0u64;
        for spec in plan {
            if let CaseSpec::Case {
                template_id,
                wire_id,
                input,
            } = spec
            {
                max_id = max_id.max(wire_id);
                if let Ok(packet) = reference.plan().serialize_state(fields, &input, wire_id) {
                    protos.push(WireCase {
                        slot: usize::MAX,
                        template_id,
                        wire_id,
                        input,
                        packet,
                        expected: None,
                    });
                }
            }
        }
        if protos.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no executable cases to soak",
            ));
        }
        let (_, framing) = self.negotiate()?;
        let nconn = self.connections.max(1);
        let conns = self.connect_all(nconn)?;

        let started = Instant::now();
        let source = SoakSource {
            protos,
            next: AtomicU64::new(0),
            deadline: started + cfg.duration,
            fuzz: cfg.fuzz,
            seed: cfg.seed,
            base_id: max_id + 1,
        };
        let sink = SoakSink {
            agg: Mutex::new(SoakAgg::default()),
            started,
            // ~10 curve buckets over the configured duration, never zero.
            bucket_ms: ((cfg.duration.as_millis() as u64) / 10).max(1),
            tally: reference.tally().cloned(),
        };
        self.drive(conns, &source, &sink, &reference, framing)?;
        let elapsed = started.elapsed();

        let agg = sink.agg.into_inner().unwrap();
        let tally = reference.tally();
        let stats = SoakStats {
            elapsed,
            cases: agg.cases,
            divergent: agg.divergent,
            retried: agg.retried,
            fuzzed: cfg.fuzz,
            classes: agg
                .classes
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            rules_total: tally.map(|t| t.arms_total()).unwrap_or(0),
            rules_hit: tally.map(|t| t.arms_hit()).unwrap_or(0),
            coverage_curve: agg.curve,
        };
        self.ledger_append_soak(&stats, cfg.seed, tally);
        if obs::trace_on() {
            soak_span.field("cases", stats.cases);
            soak_span.field("divergent", stats.divergent);
            soak_span.field("rules_hit", stats.rules_hit);
            soak_span.field("rules_total", stats.rules_total);
            drop(soak_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        Ok(stats)
    }

    /// Appends a soak [`RunRecord`] line to the results ledger, when the
    /// `MEISSA_LEDGER` sink is enabled. Same schema as the engine's
    /// records (`kind: "wire.soak"`), so `meissa-trace diff` can gate a
    /// soak against a prior one.
    fn ledger_append_soak(
        &self,
        stats: &SoakStats,
        seed: u64,
        tally: Option<&std::sync::Arc<meissa_dataplane::RuleTally>>,
    ) {
        use meissa_testkit::json::{Json, ToJson as _};
        use meissa_testkit::obs::ledger;
        if !ledger::enabled() {
            return;
        }
        let cfg = &self.program.cfg;
        let u64j = |v: u64| Json::UInt(v as u128);
        let mut counters: Vec<(String, Json)> = vec![
            ("cases".into(), u64j(stats.cases)),
            ("divergent".into(), u64j(stats.divergent)),
            ("retried".into(), u64j(stats.retried)),
            ("fuzzed".into(), u64j(stats.fuzzed as u64)),
            ("rules_hit".into(), u64j(stats.rules_hit)),
            ("rules_total".into(), u64j(stats.rules_total)),
            ("elapsed_ms".into(), u64j(stats.elapsed.as_millis() as u64)),
        ];
        for (class, n) in &stats.classes {
            counters.push((format!("class.{class}"), u64j(*n)));
        }
        let mut body: Vec<(String, Json)> = vec![
            ("t".into(), Json::Str("run_record".into())),
            ("kind".into(), Json::Str("wire.soak".into())),
            (
                "program_hash".into(),
                Json::Str(meissa_core::coverage::program_hash(cfg)),
            ),
            (
                "rule_set_hash".into(),
                Json::Str(meissa_core::coverage::rule_set_hash(cfg)),
            ),
            (
                "config".into(),
                Json::Str(format!(
                    "soak fuzz={} seed={} connections={}",
                    stats.fuzzed, seed, self.connections
                )),
            ),
            ("counters".into(), Json::Obj(counters)),
        ];
        if let Some(t) = tally {
            let cov = meissa_core::coverage::RuleCoverage::from_arm_counts(t.snapshot());
            body.push(("coverage".into(), cov.to_json()));
        }
        body.push((
            "curve".into(),
            Json::Arr(
                stats
                    .coverage_curve
                    .iter()
                    .map(|&(t, h)| Json::Arr(vec![u64j(t), u64j(h)]))
                    .collect(),
            ),
        ));
        let h = wire_obs().case_latency_us.clone();
        if h.count() > 0 {
            body.push((
                "latency".into(),
                Json::Obj(vec![
                    ("count".into(), u64j(h.count())),
                    ("sum".into(), u64j(h.sum())),
                    ("p50".into(), u64j(h.quantile(50))),
                    ("p99".into(), u64j(h.quantile(99))),
                ]),
            ));
        }
        if let Err(e) = ledger::append(Json::Obj(body)) {
            eprintln!("meissa: ledger append failed: {e}");
        }
    }
}

/// Knobs for [`WireDriver::soak`].
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Wall-clock replay duration.
    pub duration: Duration,
    /// Mutate each replayed packet (seeded bit flips outside the ID stamp)
    /// and judge the agent against the reference on the mutated bytes.
    pub fuzz: bool,
    /// Seed for the mutation RNG; each case derives its own stream from
    /// `seed ^ wire_id`, so a run is reproducible case-for-case.
    pub seed: u64,
}

impl SoakConfig {
    /// Environment-driven config: `MEISSA_SOAK_SECS` (default 5),
    /// `MEISSA_FUZZ` (`1`/`true` enables mutation), `MEISSA_FUZZ_SEED`.
    pub fn from_env() -> Self {
        let duration = std::env::var("MEISSA_SOAK_SECS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(5));
        let fuzz = std::env::var("MEISSA_FUZZ")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let seed = std::env::var("MEISSA_FUZZ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xF00D);
        SoakConfig {
            duration,
            fuzz,
            seed,
        }
    }
}

/// The inject stage of one connection. Pulls cases as window room opens,
/// fills their expected outputs from the reference, coalesces encoded
/// frames, and flushes them in batches; services retransmissions from the
/// collect stage until it hangs up.
#[allow(clippy::too_many_arguments)]
fn inject_stage<Src: CaseSource>(
    mut writer: TcpStream,
    source: &Src,
    reference: &SwitchTarget,
    in_flight: &AtomicUsize,
    window: usize,
    framing: Framing,
    reg_tx: Sender<Pending<WireCase>>,
    retx_rx: Receiver<Vec<u8>>,
) -> io::Result<()> {
    let mut sendbuf: Vec<u8> = Vec::new();
    let mut chunk: Vec<WireCase> = Vec::new();
    let mut source_done = false;
    while !source_done {
        // Retransmit frames take priority: they are latency-critical (a
        // case is already aging) and keep the window from jamming.
        loop {
            match retx_rx.try_recv() {
                Ok(f) => sendbuf.extend_from_slice(&f),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return Ok(()), // collect gone
            }
        }
        let room = window.saturating_sub(in_flight.load(Ordering::Acquire));
        if room > 0 {
            chunk.clear();
            if !source.pull(room.min(PULL_CHUNK), &mut chunk) {
                source_done = true;
            }
            for mut case in chunk.drain(..) {
                // Compute the expected output now, off the receive path:
                // the reference interpreter runs while the agent chews on
                // already-sent cases, instead of stalling the collect loop
                // (and the whole window behind it) per response.
                case.ensure_expected(reference);
                let payload = encode_request_wire(
                    &Request::Inject {
                        id: case.wire_id,
                        bytes: case.packet.bytes.clone(),
                    },
                    framing,
                );
                let mut frame = Vec::with_capacity(payload.len() + 4);
                frame_into(&mut frame, &payload)?;
                in_flight.fetch_add(1, Ordering::AcqRel);
                // Buffer the bytes first (the write syscall happens after
                // the loop), then register — registration still precedes
                // the write, so the collect stage never sees a response
                // for an unknown case, and the frame moves into the
                // registration without a clone.
                sendbuf.extend_from_slice(&frame);
                let reg = Pending {
                    frame,
                    item: case,
                    attempts: 1,
                    first_sent: Instant::now(),
                    deadline: Instant::now(), // set properly on insert
                };
                if reg_tx.send(reg).is_err() {
                    return Ok(()); // collect gone
                }
            }
        }
        // Drain-on-idle flush: everything that accumulated this round goes
        // out in one write syscall.
        if !sendbuf.is_empty() {
            writer.write_all(&sendbuf)?;
            sendbuf.clear();
        } else if !source_done && room == 0 {
            // Window full and nothing to send: park until the collect
            // stage opens a slot (it unparks on every resolve) instead of
            // sleeping a fixed interval — a fixed sleep left the agent
            // idle for the sleep's tail after the window drained, which
            // capped throughput at window-per-sleep.
            std::thread::park_timeout(Duration::from_millis(1));
        }
    }
    if !sendbuf.is_empty() {
        writer.write_all(&sendbuf)?;
    }
    drop(reg_tx); // tell the collect stage no more cases are coming
    // Retransmit service: the collect stage still ages pending cases;
    // write its retransmissions until it hangs up.
    loop {
        match retx_rx.recv() {
            Ok(f) => writer.write_all(&f)?,
            Err(_) => return Ok(()),
        }
    }
}

/// The normal run's sink: checker verdicts into report slots.
struct RunSink<'a> {
    checker: &'a Checker<'a>,
    slots: Mutex<Vec<Option<CaseResult>>>,
}

impl CaseSink for RunSink<'_> {
    fn resolve(
        &self,
        case: WireCase,
        obs: &Observation,
        _got_response: bool,
        _attempts: u32,
        latency: Duration,
    ) {
        let mut r = self.checker.check_case(
            case.template_id,
            &case.input,
            &case.packet,
            case.expected.as_ref().expect("expected filled at send time"),
            obs,
        );
        r.latency = latency;
        self.slots.lock().unwrap()[case.slot] = Some(r);
    }
}

/// The soak-mode source: replays the planned prototypes round-robin with
/// fresh wire ids (restamped into the packet tail) — optionally mutated —
/// until the wall-clock deadline.
struct SoakSource {
    protos: Vec<WireCase>,
    next: AtomicU64,
    deadline: Instant,
    fuzz: bool,
    seed: u64,
    /// First replay wire id, above every planned id so replayed and
    /// planned cases can never collide.
    base_id: u64,
}

impl CaseSource for SoakSource {
    fn pull(&self, max: usize, out: &mut Vec<WireCase>) -> bool {
        if Instant::now() >= self.deadline {
            return false;
        }
        for _ in 0..max {
            let n = self.next.fetch_add(1, Ordering::Relaxed);
            let proto = &self.protos[(n as usize) % self.protos.len()];
            let wire_id = self.base_id + n;
            let mut bytes = proto.packet.bytes.clone();
            // Restamp the trailing 8-byte packet-ID so every replay is a
            // distinct case to the dedup machinery.
            let len = bytes.len();
            if len >= 8 {
                bytes[len - 8..].copy_from_slice(&wire_id.to_be_bytes());
            }
            if self.fuzz {
                mutate_packet(&mut bytes, self.seed ^ wire_id);
            }
            out.push(WireCase {
                slot: usize::MAX,
                template_id: proto.template_id,
                wire_id,
                input: proto.input.clone(),
                packet: Packet { bytes, id: wire_id },
                expected: None, // recomputed on the (possibly mutated) bytes
            });
        }
        true
    }
}

/// FP4-style mutation: one to three seeded bit flips anywhere outside the
/// trailing ID stamp. The reference runs on the same mutated bytes, so a
/// divergence is a genuine behavioural disagreement, never a mutation
/// artifact.
fn mutate_packet(bytes: &mut [u8], seed: u64) {
    let len = bytes.len().saturating_sub(8);
    if len == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rng.random_range(1..=3u32) {
        let i = rng.random_range(0..len);
        let bit = rng.random_range(0..8u32);
        bytes[i] ^= 1 << bit;
    }
}

#[derive(Default)]
struct SoakAgg {
    cases: u64,
    divergent: u64,
    retried: u64,
    classes: std::collections::BTreeMap<&'static str, u64>,
    /// Cumulative `(t_ms, arms_hit)` samples, one per elapsed bucket.
    /// Monotone by construction: each sample reads the tally's current
    /// cumulative hit count.
    curve: Vec<(u64, u64)>,
}

/// The soak sink: aggregate counters only (a soak produces millions of
/// cases; per-case results would be memory, not signal).
struct SoakSink {
    agg: Mutex<SoakAgg>,
    started: Instant,
    /// Coverage-curve bucket width (~duration/10).
    bucket_ms: u64,
    /// The reference's rule tally, sampled per bucket for the curve.
    tally: Option<std::sync::Arc<meissa_dataplane::RuleTally>>,
}

impl CaseSink for SoakSink {
    fn resolve(
        &self,
        case: WireCase,
        obs: &Observation,
        got_response: bool,
        attempts: u32,
        _latency: Duration,
    ) {
        let expected = case.expected.as_ref().expect("expected filled at send time");
        let class = if got_response {
            classify_divergence(expected, obs)
        } else {
            Some("no-response")
        };
        let mut agg = self.agg.lock().unwrap();
        agg.cases += 1;
        if attempts > 1 {
            agg.retried += 1;
        }
        if let Some(c) = class {
            agg.divergent += 1;
            *agg.classes.entry(c).or_insert(0) += 1;
        }
        if let Some(t) = &self.tally {
            // Sampled under the lock so both the time bucket and the
            // cumulative hit count are monotone across resolver threads.
            let elapsed = self.started.elapsed().as_millis() as u64;
            let bucket = elapsed / self.bucket_ms * self.bucket_ms;
            let hit = t.arms_hit();
            match agg.curve.last_mut() {
                // Same bucket: keep the freshest cumulative count.
                Some(last) if last.0 == bucket => last.1 = last.1.max(hit),
                _ => agg.curve.push((bucket, hit)),
            }
        }
    }
}

/// Classifies one observed-vs-expected disagreement into a stable class
/// name, by direct output comparison (not intents). `None` means the agent
/// agreed with the reference.
fn classify_divergence(expected: &TargetOutput, obs: &Observation) -> Option<&'static str> {
    match (&expected.packet, &obs.packet) {
        (Some(_), None) => return Some("missing-output"),
        (None, Some(_)) => return Some("unexpected-forward"),
        (Some(e), Some(o)) if e.bytes != o.bytes => return Some("payload-mismatch"),
        _ => {}
    }
    if expected.egress_port != obs.egress_port {
        return Some("port-mismatch");
    }
    if expected.final_state != obs.final_state {
        return Some("state-mismatch");
    }
    None
}

/// Live observability metrics for the wire client (`meissa_wire_*` in
/// the Prometheus exposition). Only touched when [`obs::active`].
struct WireObs {
    case_latency_us: std::sync::Arc<obs::Histogram>,
    retries: std::sync::Arc<obs::Counter>,
    dropped: std::sync::Arc<obs::Counter>,
}

fn wire_obs() -> &'static WireObs {
    static W: std::sync::OnceLock<WireObs> = std::sync::OnceLock::new();
    W.get_or_init(|| WireObs {
        case_latency_us: obs::histogram("wire.case_latency_us"),
        retries: obs::counter("wire.retries"),
        dropped: obs::counter("wire.dropped"),
    })
}

struct WireCase {
    /// Index into the report's case list (plan order); `usize::MAX` for
    /// soak replays, which aggregate instead of slotting.
    slot: usize,
    template_id: usize,
    wire_id: u64,
    input: ConcreteState,
    packet: Packet,
    /// Reference output, computed once in the inject stage and reused by
    /// the receive, retry, and drain-phase verdict paths.
    expected: Option<TargetOutput>,
}

impl WireCase {
    /// Fills `expected` from the reference target if this is the first
    /// consultation; later paths hit the cache.
    fn ensure_expected(&mut self, reference: &SwitchTarget) {
        if self.expected.is_none() {
            self.expected = Some(reference.inject(&self.packet));
        }
    }
}

/// Serializes an initial-register seed as `(name, width, value)` triples
/// for `InjectSeq`, in deterministic (sorted) order.
fn encode_init(program: &CompiledProgram, regs: &ConcreteState) -> Vec<(String, u16, u128)> {
    let fields = &program.cfg.fields;
    let mut triples: Vec<(String, u16, u128)> = regs
        .iter()
        .map(|(f, bv)| (fields.name(f).to_string(), bv.width(), bv.val()))
        .collect();
    triples.sort();
    triples
}

/// Rebuilds a `ConcreteState` from the agent's `(name, width, value)`
/// snapshot, resolving names against the client's own field table.
fn decode_state(program: &CompiledProgram, triples: &[(String, u16, u128)]) -> ConcreteState {
    let fields = &program.cfg.fields;
    let mut state = ConcreteState::new();
    for (name, width, val) in triples {
        if let Some(f) = fields.get(name) {
            state.set(fields, f, meissa_num::Bv::new(*width, *val));
        }
    }
    state
}

fn wait_for_hello<R: io::Read>(reader: &mut FrameReader<R>) -> io::Result<(u64, bool, String)> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(frame) = reader.poll_frame()? {
            return match decode::<Response>(frame) {
                Ok(Response::Hello {
                    version,
                    loaded,
                    label,
                }) => Ok((version, loaded, label)),
                Ok(other) => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
                Err(e) => Err(io::Error::other(format!("bad Hello frame: {e}"))),
            };
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no Hello response from agent",
            ));
        }
    }
}

/// One-shot request over a fresh connection; control responses are
/// reliable, so a single blocking read suffices.
fn oneshot(addr: impl ToSocketAddrs, req: &Request) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);
    write_frame(&mut writer, &encode(req))?;
    let frame = reader.next_frame()?;
    decode::<Response>(frame).map_err(|e| io::Error::other(format!("bad response: {e}")))
}

/// Handshakes with the agent, returning `(version, loaded, label)`.
pub fn hello(addr: SocketAddr) -> io::Result<(u64, bool, String)> {
    match oneshot(addr, &Request::Hello { version: PROTO_VERSION })? {
        Response::Hello {
            version,
            loaded,
            label,
        } => Ok((version, loaded, label)),
        other => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
    }
}

/// Compiles and hosts a program (with an injected fault) on the agent.
pub fn load_program(
    addr: SocketAddr,
    source: &str,
    rules: &str,
    fault: Fault,
) -> io::Result<()> {
    match oneshot(
        addr,
        &Request::LoadProgram {
            source: source.into(),
            rules: rules.into(),
            fault,
        },
    )? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(io::Error::other(msg)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Installs a new rule set on the agent's hosted program.
pub fn install_rules(addr: SocketAddr, rules: &str) -> io::Result<()> {
    match oneshot(addr, &Request::InstallRules { rules: rules.into() })? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(io::Error::other(msg)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Traffic counters snapshot: `(injected, forwarded, dropped, per_port)`.
pub fn fetch_stats(addr: SocketAddr) -> io::Result<(u64, u64, u64, Vec<(u128, u64)>)> {
    match oneshot(addr, &Request::Stats)? {
        Response::Stats {
            injected,
            forwarded,
            dropped,
            per_port,
        } => Ok((injected, forwarded, dropped, per_port)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Live metrics snapshot in Prometheus text exposition format (agent
/// traffic counters plus the agent process's `testkit::obs` registry).
pub fn fetch_metrics(addr: SocketAddr) -> io::Result<String> {
    match oneshot(addr, &Request::Metrics)? {
        Response::Metrics { text } => Ok(text),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Asks the agent to stop accepting connections.
pub fn shutdown(addr: SocketAddr) -> io::Result<()> {
    match oneshot(addr, &Request::Shutdown)? {
        Response::Ok => Ok(()),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}
