//! The client side of the wire driver: concurrent sender/receiver/checker
//! streaming test cases to a remote agent over N connections.
//!
//! The sender is `driver::plan_cases` — the same enumeration the
//! in-process driver uses, so both produce case-for-case comparable
//! reports. Connections pull cases dynamically from one shared queue as
//! their send windows open (a connection slowed by retries naturally takes
//! fewer cases — static round-robin sharding made the whole run wait on
//! the unluckiest shard); each connection worker pipelines a window of
//! outstanding injects, matches responses to cases by the packet-ID stamp
//! (§4) — which makes it immune to duplication and reordering — retries
//! cases whose deadline passes (bounded, with linear backoff), and after
//! the final attempt waits one drain period before classifying the missing
//! output as a drop. Expected outputs come from a single client-side
//! reference `SwitchTarget` shared by every connection (injection takes
//! `&self`, so no lock mediates it) and are computed once per case, at
//! queue-pull time — overlapping the reference interpreter with the agent's
//! processing of already-sent cases instead of stalling the receive loop —
//! and the retry and drain paths reuse the cached output. Verdicts come
//! from the shared transport-agnostic `driver::Checker`.

use crate::proto::{decode, encode, Request, Response, PROTO_VERSION};
use meissa_core::{RunOutput, StatefulRunOutput};
use meissa_dataplane::{serialize_state, Fault, Packet, SwitchTarget};
use meissa_driver::{
    plan_cases, plan_sequence_cases, CaseResult, CaseSpec, Checker, Observation, SeqCaseSpec,
    TestReport, Verdict,
};
use meissa_ir::ConcreteState;
use meissa_lang::CompiledProgram;
use meissa_testkit::obs;
use meissa_testkit::wire::{write_frame, FrameReader};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How many injects the whole run keeps outstanding, across every
/// connection. The budget is split per connection rather than granted per
/// connection: with a fixed per-connection window, adding connections
/// multiplied the queue depth at the agent, and by Little's law the extra
/// outstanding cases bought latency, not throughput (4 connections × 16
/// outstanding pushed loopback p50 from ~11ms to ~49ms while throughput
/// *dropped*). Splitting the budget keeps the agent-side queue depth
/// constant as connections scale.
const TOTAL_WINDOW: usize = 16;

/// Floor on the per-connection share of [`TOTAL_WINDOW`], so a high
/// connection count still pipelines enough to cover the network RTT.
const MIN_WINDOW: usize = 4;

/// How many cases a connection pulls per queue-lock acquisition. Pulling
/// in small chunks amortizes the mutex without letting one connection
/// hoard work it cannot send yet.
const PULL_CHUNK: usize = 4;

/// The wire-level test driver for one program.
pub struct WireDriver<'p> {
    program: &'p CompiledProgram,
    addr: SocketAddr,
    connections: usize,
    packets_per_template: usize,
    structural_checks: bool,
    /// Per-attempt response deadline.
    case_timeout: Duration,
    /// Total send attempts per case (first send included).
    max_attempts: u32,
    /// Extra deadline added per retry (linear backoff).
    backoff: Duration,
    /// Grace period after the final attempt before a missing output is
    /// classified as a drop.
    drain_timeout: Duration,
}

impl<'p> WireDriver<'p> {
    /// A driver for `program` against the agent at `addr`.
    pub fn new(program: &'p CompiledProgram, addr: SocketAddr) -> Self {
        WireDriver {
            program,
            addr,
            connections: 1,
            packets_per_template: 1,
            structural_checks: true,
            case_timeout: Duration::from_millis(100),
            max_attempts: 8,
            backoff: Duration::from_millis(25),
            drain_timeout: Duration::from_millis(500),
        }
    }

    /// Streams cases over `n` concurrent connections.
    pub fn with_connections(mut self, n: usize) -> Self {
        self.connections = n.max(1);
        self
    }

    /// Sets how many distinct packets each template is instantiated into.
    pub fn with_packets_per_template(mut self, n: usize) -> Self {
        self.packets_per_template = n.max(1);
        self
    }

    /// Disables the structural packet validation (baseline-tester mode).
    pub fn without_structural_checks(mut self) -> Self {
        self.structural_checks = false;
        self
    }

    /// Tunes the retry machinery: per-attempt deadline, total attempts,
    /// and per-retry backoff increment.
    pub fn with_retries(mut self, case_timeout: Duration, max_attempts: u32, backoff: Duration) -> Self {
        self.case_timeout = case_timeout;
        self.max_attempts = max_attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Sets the post-final-attempt drain period.
    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }

    /// Runs every template in `run` against the remote agent and checks
    /// results, exactly as `TestDriver::run` does in-process.
    pub fn run(&self, run: &mut RunOutput) -> io::Result<TestReport> {
        obs::init_from_env();
        let mut run_span = obs::span("wire.run");
        let started = Instant::now();
        let plan = plan_cases(self.program, run, self.packets_per_template);
        let mut slots: Vec<Option<CaseResult>> = vec![None; plan.len()];
        let mut work: Vec<WireCase> = Vec::new();
        for (slot, spec) in plan.into_iter().enumerate() {
            match spec {
                CaseSpec::Skip {
                    template_id,
                    reason,
                } => {
                    slots[slot] = Some(CaseResult::new(
                        template_id,
                        Verdict::Skipped { reason },
                        Vec::new(),
                    ));
                }
                CaseSpec::Case {
                    template_id,
                    wire_id,
                    input,
                } => match serialize_state(self.program, &input, wire_id) {
                    Err(e) => {
                        slots[slot] = Some(CaseResult::new(
                            template_id,
                            Verdict::Skipped {
                                reason: format!("cannot serialize: {e}"),
                            },
                            Vec::new(),
                        ));
                    }
                    Ok(packet) => work.push(WireCase {
                        slot,
                        template_id,
                        wire_id,
                        input,
                        packet,
                        expected: None,
                    }),
                },
            }
        }

        let label = hello(self.addr)?.2;

        // One reference target and one checker for the whole run, shared by
        // every connection: both answer through `&self`, so no lock — and no
        // per-connection program clone — mediates the hot check path.
        let reference = SwitchTarget::new(self.program);
        let checker = if self.structural_checks {
            Checker::new(self.program)
        } else {
            Checker::without_structural_checks(self.program)
        };

        let nconn = self.connections.min(work.len()).max(1);
        let window = (TOTAL_WINDOW / nconn).max(MIN_WINDOW);
        // Dynamic pulling: cases queue front-to-back (popped from the
        // reversed vec's tail) and each connection takes the next one as its
        // send window opens. A connection slowed by retries naturally takes
        // fewer cases, where the old round-robin sharding made the whole run
        // wait on the unluckiest shard.
        work.reverse();
        let queue = std::sync::Mutex::new(work);
        let outcomes: Vec<io::Result<Vec<(usize, CaseResult)>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nconn)
                .map(|_| {
                    let queue = &queue;
                    let reference = &reference;
                    let checker = &checker;
                    s.spawn(move || self.run_conn(queue, reference, checker, window))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("connection worker panicked"))
                .collect()
        });
        for outcome in outcomes {
            for (slot, result) in outcome? {
                slots[slot] = Some(result);
            }
        }

        let mut report = TestReport::new(&label);
        report.cases = slots
            .into_iter()
            .map(|s| s.expect("every planned case produced a result"))
            .collect();
        report.elapsed = started.elapsed();
        if obs::trace_on() {
            run_span.field("cases", report.cases.len() as u64);
            run_span.field("connections", nconn as u64);
            drop(run_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        Ok(report)
    }

    /// Runs every sequence template in `run` against the remote agent and
    /// checks each packet position, exactly as `TestDriver::run_sequences`
    /// does in-process.
    ///
    /// Sequences go over **one** connection, one at a time: in-order
    /// delivery within a sequence is the whole point of stateful testing,
    /// so a sequence is never split across connections or interleaved with
    /// another. Transport faults still apply *between* sequences — a lost
    /// `SeqOutput` is retried whole, which is safe because the agent
    /// reseeds the register file from the request on every attempt.
    pub fn run_sequences(&self, run: &mut StatefulRunOutput) -> io::Result<TestReport> {
        obs::init_from_env();
        let mut run_span = obs::span("wire.sequence_run");
        run_span.field("k", run.k as u64);
        let started = Instant::now();
        let plan = plan_sequence_cases(run);
        let label = hello(self.addr)?.2;

        let reference = SwitchTarget::new(self.program);
        let checker = if self.structural_checks {
            Checker::new(self.program)
        } else {
            Checker::without_structural_checks(self.program)
        };

        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(2)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = FrameReader::new(stream);
        write_frame(&mut writer, &encode(&Request::Hello { version: PROTO_VERSION }))?;
        wait_for_hello(&mut reader)?;

        let mut report = TestReport::new(&label);
        let mut seq_wire_id = 0u64;
        for spec in plan {
            match spec {
                SeqCaseSpec::Skip {
                    sequence_id,
                    reason,
                } => report.push(CaseResult::new(
                    sequence_id,
                    Verdict::Skipped { reason },
                    Vec::new(),
                )),
                SeqCaseSpec::Case {
                    sequence_id,
                    wire_ids,
                    case,
                } => {
                    seq_wire_id += 1;
                    for r in self.run_one_sequence(
                        &mut writer,
                        &mut reader,
                        &reference,
                        &checker,
                        seq_wire_id,
                        sequence_id,
                        &wire_ids,
                        &case,
                    )? {
                        report.push(r);
                    }
                }
            }
        }
        report.elapsed = started.elapsed();
        if obs::trace_on() {
            run_span.field("cases", report.cases.len() as u64);
            drop(run_span);
            if let Err(e) = obs::flush_trace() {
                eprintln!("meissa: trace flush failed: {e}");
            }
        }
        Ok(report)
    }

    /// Sends one concrete sequence as a single `InjectSeq`, waits for its
    /// `SeqOutput` (retrying whole on loss), and checks every packet
    /// position. Mirrors `TestDriver::check_sequence` verdict-for-verdict.
    #[allow(clippy::too_many_arguments)]
    fn run_one_sequence(
        &self,
        writer: &mut TcpStream,
        reader: &mut FrameReader<TcpStream>,
        reference: &SwitchTarget,
        checker: &Checker,
        seq_wire_id: u64,
        sequence_id: usize,
        wire_ids: &[u64],
        case: &meissa_core::SequenceCase,
    ) -> io::Result<Vec<CaseResult>> {
        let mut packets = Vec::with_capacity(case.packets.len());
        for (input, &wid) in case.packets.iter().zip(wire_ids) {
            match serialize_state(self.program, input, wid) {
                Ok(p) => packets.push(p),
                Err(e) => {
                    return Ok(vec![CaseResult::new(
                        sequence_id,
                        Verdict::Skipped {
                            reason: format!("cannot serialize sequence packet: {e}"),
                        },
                        Vec::new(),
                    )])
                }
            }
        }
        let expected = reference.inject_sequence(&packets, &case.initial_registers);
        let req = Request::InjectSeq {
            id: seq_wire_id,
            packets: packets.iter().map(|p| (p.id, p.bytes.clone())).collect(),
            init: encode_init(self.program, &case.initial_registers),
        };

        let first_sent = Instant::now();
        write_frame(writer, &encode(&req))?;
        let mut attempts: u32 = 1;
        let mut deadline = Instant::now() + self.case_timeout;
        // Wait for the matching SeqOutput; stale ids (a duplicate from an
        // earlier retry, frames delayed by the fault gate) fall through
        // harmlessly because sequence ids are unique within the run.
        let outputs = loop {
            if let Some(frame) = reader.poll_frame()? {
                let Ok(resp) = decode::<Response>(&frame) else {
                    continue;
                };
                match resp {
                    Response::SeqOutput { id, outputs } if id == seq_wire_id => {
                        break Some(outputs);
                    }
                    Response::Err { msg } => {
                        return Err(io::Error::other(format!("agent error: {msg}")));
                    }
                    _ => {}
                }
            } else if Instant::now() >= deadline {
                if attempts >= self.max_attempts {
                    // Drain period after the final attempt already elapsed:
                    // the whole sequence's output is missing.
                    break None;
                }
                write_frame(writer, &encode(&req))?;
                attempts += 1;
                obs::event(
                    "wire.seq_retry",
                    &[("id", seq_wire_id), ("attempt", attempts as u64)],
                );
                deadline = if attempts >= self.max_attempts {
                    Instant::now() + self.case_timeout + self.drain_timeout
                } else {
                    Instant::now() + self.case_timeout + self.backoff * attempts
                };
            }
        };

        let latency = first_sent.elapsed();
        let mut results = Vec::with_capacity(packets.len());
        for (i, packet) in packets.iter().enumerate() {
            let obs = outputs
                .as_deref()
                .and_then(|outs| outs.iter().find(|(pid, ..)| *pid == packet.id))
                .map(|(_, bytes, port, state)| Observation {
                    packet: bytes.clone().map(|bytes| Packet {
                        bytes,
                        id: packet.id,
                    }),
                    egress_port: *port,
                    final_state: decode_state(self.program, state),
                })
                .unwrap_or_else(Observation::missing);
            let mut r = checker.check_case(sequence_id, &case.packets[i], packet, &expected[i], &obs);
            r.latency = latency;
            results.push(r);
        }
        Ok(results)
    }

    /// Drives one connection: pulls cases off the shared queue as the send
    /// window opens and checks responses until both the queue and the
    /// window are empty.
    fn run_conn(
        &self,
        queue: &std::sync::Mutex<Vec<WireCase>>,
        reference: &SwitchTarget,
        checker: &Checker,
        window: usize,
    ) -> io::Result<Vec<(usize, CaseResult)>> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(2)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = FrameReader::new(stream);
        write_frame(&mut writer, &encode(&Request::Hello { version: PROTO_VERSION }))?;
        wait_for_hello(&mut reader)?;

        struct Pending {
            case: WireCase,
            attempts: u32,
            first_sent: Instant,
            deadline: Instant,
        }
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        let mut results: Vec<(usize, CaseResult)> = Vec::new();
        let mut conn_span = obs::span("wire.conn");
        let mut sent = 0u64;
        let mut retries = 0u64;
        let mut drops = 0u64;
        // Where this connection's time goes, for the scaling trace: queue
        // lock + pull, reference-interpreter runs, and checker verdicts.
        let mut pull_time = Duration::ZERO;
        let mut ref_time = Duration::ZERO;
        let mut check_time = Duration::ZERO;
        let mut queue_done = false;

        loop {
            // Sender: refill the window from the shared queue, a small
            // chunk per lock so the mutex is amortized without hoarding.
            // Once a case is pulled this connection owns it outright —
            // retries and the drop verdict never touch the queue again.
            while !queue_done && pending.len() < window {
                let t_pull = Instant::now();
                let mut chunk: Vec<WireCase> = Vec::with_capacity(PULL_CHUNK);
                {
                    let mut q = queue.lock().unwrap();
                    let want = PULL_CHUNK.min(window - pending.len());
                    for _ in 0..want {
                        match q.pop() {
                            Some(case) => chunk.push(case),
                            None => {
                                queue_done = true;
                                break;
                            }
                        }
                    }
                }
                pull_time += t_pull.elapsed();
                if chunk.is_empty() {
                    break;
                }
                for mut case in chunk {
                    // Compute the expected output now, off the receive path:
                    // the reference interpreter runs while the agent chews on
                    // already-sent cases, instead of stalling the receive
                    // loop (and the whole window behind it) per response.
                    let t_ref = Instant::now();
                    case.ensure_expected(reference);
                    ref_time += t_ref.elapsed();
                    self.send_inject(&mut writer, &case)?;
                    sent += 1;
                    pending.insert(
                        case.wire_id,
                        Pending {
                            case,
                            attempts: 1,
                            first_sent: Instant::now(),
                            deadline: Instant::now() + self.case_timeout,
                        },
                    );
                }
            }
            if pending.is_empty() && queue_done {
                // Window drained and the queue answered empty: done.
                if obs::trace_on() {
                    conn_span.field("cases", results.len() as u64);
                    conn_span.field("sent", sent);
                    conn_span.field("retries", retries);
                    conn_span.field("drops", drops);
                    conn_span.field("pull_us", pull_time.as_micros() as u64);
                    conn_span.field("ref_us", ref_time.as_micros() as u64);
                    conn_span.field("check_us", check_time.as_micros() as u64);
                }
                drop(conn_span);
                obs::park_current_thread();
                return Ok(results);
            }

            // Receiver: match responses to pending cases by packet id;
            // duplicates and unknown ids fall through harmlessly.
            match reader.poll_frame()? {
                Some(frame) => {
                    // A transport-truncated frame fails to decode; drop it —
                    // the retry path recovers the case.
                    let Ok(resp) = decode::<Response>(&frame) else {
                        continue;
                    };
                    match resp {
                        Response::Output {
                            id,
                            packet,
                            port,
                            state,
                        } => {
                            if let Some(mut p) = pending.remove(&id) {
                                let obs = Observation {
                                    packet: packet.map(|bytes| Packet { bytes, id }),
                                    egress_port: port,
                                    final_state: decode_state(self.program, &state),
                                };
                                let case = &mut p.case;
                                // `expected` was filled at pull time; this
                                // is a memoized no-op kept for safety.
                                case.ensure_expected(reference);
                                let t_check = Instant::now();
                                let mut r = checker.check_case(
                                    case.template_id,
                                    &case.input,
                                    &case.packet,
                                    case.expected.as_ref().unwrap(),
                                    &obs,
                                );
                                check_time += t_check.elapsed();
                                r.latency = p.first_sent.elapsed();
                                if obs::active() {
                                    wire_obs().case_latency_us.record(r.latency.as_micros() as u64);
                                    // The send and the verdict are separated
                                    // by other windowed cases, so the case
                                    // span is recorded retroactively: one
                                    // send→check span per case, parented
                                    // under this connection's span.
                                    obs::span_closed(
                                        "wire.case",
                                        obs::now_ns().saturating_sub(r.latency.as_nanos() as u64),
                                        r.latency.as_nanos() as u64,
                                        &[("id", id), ("attempts", p.attempts as u64)],
                                    );
                                }
                                results.push((p.case.slot, r));
                            }
                        }
                        Response::Err { msg } => {
                            return Err(io::Error::other(format!("agent error: {msg}")));
                        }
                        // Stray control responses (e.g. a duplicate Hello)
                        // are ignorable.
                        _ => {}
                    }
                }
                None => {
                    // Checker timeout scan: retry expired cases; after the
                    // final attempt's drain period, classify as a drop.
                    let now = Instant::now();
                    let expired: Vec<u64> = pending
                        .iter()
                        .filter(|(_, p)| now >= p.deadline)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in expired {
                        let p = pending.get_mut(&id).unwrap();
                        if p.attempts >= self.max_attempts {
                            let mut p = pending.remove(&id).unwrap();
                            let case = &mut p.case;
                            case.ensure_expected(reference);
                            // Drain phase verdict: the output never arrived,
                            // so the receiver records it as a drop and the
                            // checker judges that against the reference.
                            let t_check = Instant::now();
                            let mut r = checker.check_case(
                                case.template_id,
                                &case.input,
                                &case.packet,
                                case.expected.as_ref().unwrap(),
                                &Observation::missing(),
                            );
                            check_time += t_check.elapsed();
                            r.latency = p.first_sent.elapsed();
                            drops += 1;
                            obs::event("wire.drop", &[("id", id), ("attempts", p.attempts as u64)]);
                            if obs::active() {
                                wire_obs().dropped.add(1);
                            }
                            results.push((p.case.slot, r));
                        } else {
                            self.send_inject(&mut writer, &p.case)?;
                            sent += 1;
                            retries += 1;
                            p.attempts += 1;
                            obs::event(
                                "wire.retry",
                                &[
                                    ("id", id),
                                    ("attempt", p.attempts as u64),
                                    ("backoff_ms", (self.backoff * p.attempts).as_millis() as u64),
                                ],
                            );
                            if obs::active() {
                                wire_obs().retries.add(1);
                            }
                            p.deadline = if p.attempts >= self.max_attempts {
                                now + self.drain_timeout
                            } else {
                                now + self.case_timeout + self.backoff * p.attempts
                            };
                        }
                    }
                }
            }
        }
    }

    fn send_inject(&self, w: &mut TcpStream, case: &WireCase) -> io::Result<()> {
        write_frame(
            w,
            &encode(&Request::Inject {
                id: case.wire_id,
                bytes: case.packet.bytes.clone(),
            }),
        )
    }
}

/// Live observability metrics for the wire client (`meissa_wire_*` in
/// the Prometheus exposition). Only touched when [`obs::active`].
struct WireObs {
    case_latency_us: std::sync::Arc<obs::Histogram>,
    retries: std::sync::Arc<obs::Counter>,
    dropped: std::sync::Arc<obs::Counter>,
}

fn wire_obs() -> &'static WireObs {
    static W: std::sync::OnceLock<WireObs> = std::sync::OnceLock::new();
    W.get_or_init(|| WireObs {
        case_latency_us: obs::histogram("wire.case_latency_us"),
        retries: obs::counter("wire.retries"),
        dropped: obs::counter("wire.dropped"),
    })
}

struct WireCase {
    /// Index into the report's case list (plan order).
    slot: usize,
    template_id: usize,
    wire_id: u64,
    input: ConcreteState,
    packet: Packet,
    /// Reference output, computed at queue-pull time and reused by the
    /// receive, retry, and drain-phase verdict paths.
    expected: Option<meissa_dataplane::TargetOutput>,
}

impl WireCase {
    /// Fills `expected` from the reference target if this is the first
    /// consultation; retries and verdict paths after it hit the cache.
    fn ensure_expected(&mut self, reference: &SwitchTarget) {
        if self.expected.is_none() {
            self.expected = Some(reference.inject(&self.packet));
        }
    }
}

/// Serializes an initial-register seed as `(name, width, value)` triples
/// for `InjectSeq`, in deterministic (sorted) order.
fn encode_init(program: &CompiledProgram, regs: &ConcreteState) -> Vec<(String, u16, u128)> {
    let fields = &program.cfg.fields;
    let mut triples: Vec<(String, u16, u128)> = regs
        .iter()
        .map(|(f, bv)| (fields.name(f).to_string(), bv.width(), bv.val()))
        .collect();
    triples.sort();
    triples
}

/// Rebuilds a `ConcreteState` from the agent's `(name, width, value)`
/// snapshot, resolving names against the client's own field table.
fn decode_state(program: &CompiledProgram, triples: &[(String, u16, u128)]) -> ConcreteState {
    let fields = &program.cfg.fields;
    let mut state = ConcreteState::new();
    for (name, width, val) in triples {
        if let Some(f) = fields.get(name) {
            state.set(fields, f, meissa_num::Bv::new(*width, *val));
        }
    }
    state
}

fn wait_for_hello<R: io::Read>(reader: &mut FrameReader<R>) -> io::Result<(u64, bool, String)> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(frame) = reader.poll_frame()? {
            return match decode::<Response>(&frame) {
                Ok(Response::Hello {
                    version,
                    loaded,
                    label,
                }) => Ok((version, loaded, label)),
                Ok(other) => Err(io::Error::other(format!(
                    "expected Hello, got {other:?}"
                ))),
                Err(e) => Err(io::Error::other(format!("bad Hello frame: {e}"))),
            };
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no Hello response from agent",
            ));
        }
    }
}

/// One-shot request over a fresh connection; control responses are
/// reliable, so a single blocking read suffices.
fn oneshot(addr: impl ToSocketAddrs, req: &Request) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);
    write_frame(&mut writer, &encode(req))?;
    let frame = reader.next_frame()?;
    decode::<Response>(&frame).map_err(|e| io::Error::other(format!("bad response: {e}")))
}

/// Handshakes with the agent, returning `(version, loaded, label)`.
pub fn hello(addr: SocketAddr) -> io::Result<(u64, bool, String)> {
    match oneshot(addr, &Request::Hello { version: PROTO_VERSION })? {
        Response::Hello {
            version,
            loaded,
            label,
        } => Ok((version, loaded, label)),
        other => Err(io::Error::other(format!("expected Hello, got {other:?}"))),
    }
}

/// Compiles and hosts a program (with an injected fault) on the agent.
pub fn load_program(
    addr: SocketAddr,
    source: &str,
    rules: &str,
    fault: Fault,
) -> io::Result<()> {
    match oneshot(
        addr,
        &Request::LoadProgram {
            source: source.into(),
            rules: rules.into(),
            fault,
        },
    )? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(io::Error::other(msg)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Installs a new rule set on the agent's hosted program.
pub fn install_rules(addr: SocketAddr, rules: &str) -> io::Result<()> {
    match oneshot(addr, &Request::InstallRules { rules: rules.into() })? {
        Response::Ok => Ok(()),
        Response::Err { msg } => Err(io::Error::other(msg)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Traffic counters snapshot: `(injected, forwarded, dropped, per_port)`.
pub fn fetch_stats(addr: SocketAddr) -> io::Result<(u64, u64, u64, Vec<(u128, u64)>)> {
    match oneshot(addr, &Request::Stats)? {
        Response::Stats {
            injected,
            forwarded,
            dropped,
            per_port,
        } => Ok((injected, forwarded, dropped, per_port)),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Live metrics snapshot in Prometheus text exposition format (agent
/// traffic counters plus the agent process's `testkit::obs` registry).
pub fn fetch_metrics(addr: SocketAddr) -> io::Result<String> {
    match oneshot(addr, &Request::Metrics)? {
        Response::Metrics { text } => Ok(text),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}

/// Asks the agent to stop accepting connections.
pub fn shutdown(addr: SocketAddr) -> io::Result<()> {
    match oneshot(addr, &Request::Shutdown)? {
        Response::Ok => Ok(()),
        other => Err(io::Error::other(format!("unexpected response {other:?}"))),
    }
}
