//! End-to-end loopback tests: agent and wire driver in one process over
//! 127.0.0.1, on a small inline program (the corpus-level equivalence
//! tests live in `crates/suite/tests/`).

use meissa_core::Meissa;
use meissa_dataplane::{Fault, SwitchTarget};
use meissa_driver::{TestDriver, Verdict};
use meissa_lang::{compile, parse_program, parse_rules, CompiledProgram};
use meissa_netdriver::{
    fetch_stats, hello, install_rules, load_program, Agent, TransportFaults, WireDriver,
};
use std::time::Duration;

const PROGRAM: &str = r#"
    header ethernet { dst: 48; src: 48; ether_type: 16; }
    header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
    header vxlan { vni: 24; }
    metadata meta { egress_port: 9; drop: 1; }
    parser main {
      state start {
        extract(ethernet);
        select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
      }
      state parse_ipv4 { extract(ipv4); accept; }
    }
    action set_port(port: 9) { meta.egress_port = port; }
    action encap(vni: 24) {
      hdr.vxlan.setValid();
      hdr.vxlan.vni = vni;
      hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
    }
    action drop_() { meta.drop = 1; }
    table route {
      key = { hdr.ipv4.dst_addr: lpm; }
      actions = { set_port; drop_; }
      default_action = drop_();
    }
    control ig {
      if (hdr.ipv4.isValid()) {
        apply(route);
        if (meta.drop == 0) { call encap(7); }
      }
    }
    pipeline ingress0 { parser = main; control = ig; }
    deparser { emit(ethernet); emit(ipv4); emit(vxlan); }
    intent routed_packets_get_tunneled {
      given hdr.ethernet.ether_type == 0x0800;
      expect meta.drop == 1 || hdr.vxlan.$valid == 1;
    }
"#;

const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

fn program() -> CompiledProgram {
    let p = parse_program(PROGRAM).unwrap();
    compile(&p, &parse_rules(RULES).unwrap()).unwrap()
}

/// Verdicts (with template ids) of a report, for cross-driver comparison.
fn verdicts(report: &meissa_driver::TestReport) -> Vec<(usize, Verdict)> {
    report
        .cases
        .iter()
        .map(|c| (c.template_id, c.verdict.clone()))
        .collect()
}

#[test]
fn wire_report_matches_in_process_faithful() {
    let cp = program();
    let agent = Agent::spawn(Some(SwitchTarget::new(&cp)), None).unwrap();

    let mut run = Meissa::new().run(&cp);
    let wire = WireDriver::new(&cp, agent.addr())
        .with_connections(2)
        .run(&mut run)
        .unwrap();

    let mut run = Meissa::new().run(&cp);
    let local = TestDriver::new(&cp).run(&mut run, &SwitchTarget::new(&cp));

    assert_eq!(verdicts(&wire), verdicts(&local));
    assert_eq!(wire.failed(), 0, "{wire}");
    assert!(wire.passed() >= 3);
    assert_eq!(wire.target_label, "none");
    assert!(wire.latency_p50().is_some());
    assert!(!wire.elapsed.is_zero());

    // The agent tallied traffic per logical egress port.
    let (injected, forwarded, _dropped, per_port) = fetch_stats(agent.addr()).unwrap();
    assert!(injected >= wire.cases.len() as u64 - wire.skipped() as u64);
    assert!(forwarded > 0);
    assert!(per_port.iter().any(|&(port, n)| port == 3 && n > 0));

    agent.shutdown();
}

#[test]
fn wire_detects_fault_like_in_process() {
    let cp = program();
    let fault = Fault::SetValidDropped {
        header: "vxlan".into(),
    };
    let agent = Agent::spawn(Some(SwitchTarget::with_fault(&cp, fault.clone())), None).unwrap();

    let mut run = Meissa::new().run(&cp);
    let wire = WireDriver::new(&cp, agent.addr()).run(&mut run).unwrap();

    let mut run = Meissa::new().run(&cp);
    let local = TestDriver::new(&cp).run(&mut run, &SwitchTarget::with_fault(&cp, fault));

    assert!(wire.found_bug());
    assert_eq!(verdicts(&wire), verdicts(&local));
    assert_eq!(wire.target_label, "setValid-dropped");
    // Localization traces survive the wire path (they are computed
    // client-side from the injected packet).
    let failure = wire
        .cases
        .iter()
        .find(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
        .unwrap();
    assert!(!failure.trace.is_empty());
    agent.shutdown();
}

#[test]
fn transport_faults_cause_no_false_verdicts() {
    let cp = program();
    // 5% drop/dup/delay/truncate each, seeded: the retry/dedup/reorder
    // machinery must absorb every perturbation on a faithful target.
    let faults = TransportFaults::uniform(0xC0FFEE, 50);
    let agent = Agent::spawn(Some(SwitchTarget::new(&cp)), Some(faults)).unwrap();

    let mut run = Meissa::new().run(&cp);
    let wire = WireDriver::new(&cp, agent.addr())
        .with_connections(2)
        .with_packets_per_template(3)
        .with_retries(Duration::from_millis(50), 10, Duration::from_millis(10))
        .run(&mut run)
        .unwrap();

    assert_eq!(wire.failed(), 0, "transport faults must not look like bugs: {wire}");
    assert!(wire.passed() > 0);
    agent.shutdown();
}

#[test]
fn load_program_and_install_rules_over_the_wire() {
    let agent = Agent::spawn(None, None).unwrap();
    let (version, loaded, _) = hello(agent.addr()).unwrap();
    assert_eq!(version, meissa_netdriver::PROTO_VERSION);
    assert!(!loaded);

    // A bad program is rejected with a recoverable error.
    assert!(load_program(agent.addr(), "header {", RULES, Fault::None).is_err());

    load_program(agent.addr(), PROGRAM, RULES, Fault::None).unwrap();
    let (_, loaded, label) = hello(agent.addr()).unwrap();
    assert!(loaded);
    assert_eq!(label, "none");

    // Drive it: the agent-compiled program behaves like the local one.
    let cp = program();
    let mut run = Meissa::new().run(&cp);
    let report = WireDriver::new(&cp, agent.addr()).run(&mut run).unwrap();
    assert_eq!(report.failed(), 0, "{report}");

    // Rule swap over the wire: an unroutable rule set turns routed
    // traffic into drops agent-side; the client's reference still uses
    // the old rules, so outputs now disagree → the driver reports bugs.
    install_rules(agent.addr(), "rules route { 192.168.0.0/16 => set_port(5); }").unwrap();
    let mut run = Meissa::new().run(&cp);
    let report = WireDriver::new(&cp, agent.addr()).run(&mut run).unwrap();
    assert!(report.found_bug(), "rule divergence must surface: {report}");

    agent.shutdown();
}

#[test]
fn metrics_rpc_returns_live_counters_mid_run() {
    use meissa_netdriver::proto::{decode, encode, Request, Response, PROTO_VERSION};
    use meissa_testkit::wire::{write_frame, FrameReader};
    use std::net::TcpStream;

    let cp = program();
    let agent = Agent::spawn(Some(SwitchTarget::new(&cp)), None).unwrap();

    // Drive injects over a raw protocol connection, scraping metrics
    // between packets while the connection is still live — the agent must
    // answer from its atomics without waiting for the run to end.
    let stream = TcpStream::connect(agent.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);
    write_frame(&mut writer, &encode(&Request::Hello { version: PROTO_VERSION })).unwrap();
    let _hello = reader.next_frame().unwrap();

    for id in 0..3u64 {
        write_frame(
            &mut writer,
            &encode(&Request::Inject { id, bytes: vec![0u8; 20] }),
        )
        .unwrap();
        let frame = reader.next_frame().unwrap();
        match decode::<Response>(&frame).unwrap() {
            Response::Output { id: got, .. } => assert_eq!(got, id),
            other => panic!("expected Output, got {other:?}"),
        }
        // Mid-run scrape over a separate control connection.
        let text = meissa_netdriver::fetch_metrics(agent.addr()).unwrap();
        let want = format!("meissa_agent_injected_total {}", id + 1);
        assert!(
            text.contains("# TYPE meissa_agent_injected_total counter"),
            "missing TYPE line:\n{text}"
        );
        assert!(text.contains(&want), "expected `{want}` in:\n{text}");
    }
    let text = meissa_netdriver::fetch_metrics(agent.addr()).unwrap();
    assert!(text.contains("meissa_agent_injected_total 3"), "{text}");
    drop(writer);
    drop(reader);
    agent.shutdown();
}
