//! Property tests for the dual wire framings and end-to-end tests of the
//! `Hello` framing negotiation: every data-plane message must encode and
//! decode identically through the JSON and binary codecs, and a
//! binary-preferring client must interoperate cleanly with a JSON-only
//! (protocol v1) agent.

use meissa_core::Meissa;
use meissa_dataplane::{Fault, SwitchTarget};
use meissa_driver::{TestDriver, Verdict};
use meissa_lang::{compile, parse_program, parse_rules, CompiledProgram};
use meissa_netdriver::proto::{
    decode, decode_request_wire, decode_response_wire, encode, encode_request_wire,
    encode_response_wire, is_binary, Framing, Request, Response,
};
use meissa_netdriver::{hello, Agent, SoakConfig, WireDriver};
use meissa_num::Bv;
use meissa_testkit::prop::{self, G};
use meissa_testkit::{prop_assert, prop_assert_eq};
use std::time::Duration;

fn arb_bytes(g: &mut G) -> Vec<u8> {
    (0..g.len(0, 40)).map(|_| g.bits(8) as u8).collect()
}

fn arb_state(g: &mut G) -> Vec<(String, u16, u128)> {
    (0..g.len(0, 6))
        .map(|_| {
            let width = g.range(1..=128u16);
            (g.ident(6), width, g.bits(width))
        })
        .collect()
}

fn arb_opt_port(g: &mut G) -> Option<Bv> {
    if g.bool() {
        let width = g.range(1..=32u16);
        Some(Bv::new(width, g.bits(width)))
    } else {
        None
    }
}

fn arb_request(g: &mut G) -> Request {
    if g.bool() {
        Request::Inject {
            id: g.u64(),
            bytes: arb_bytes(g),
        }
    } else {
        Request::InjectSeq {
            id: g.u64(),
            packets: (0..g.len(1, 4)).map(|_| (g.u64(), arb_bytes(g))).collect(),
            init: arb_state(g),
        }
    }
}

fn arb_response(g: &mut G) -> Response {
    if g.bool() {
        Response::Output {
            id: g.u64(),
            packet: if g.bool() { Some(arb_bytes(g)) } else { None },
            port: arb_opt_port(g),
            state: arb_state(g),
        }
    } else {
        Response::SeqOutput {
            id: g.u64(),
            outputs: (0..g.len(1, 4))
                .map(|_| {
                    (
                        g.u64(),
                        if g.bool() { Some(arb_bytes(g)) } else { None },
                        arb_opt_port(g),
                        arb_state(g),
                    )
                })
                .collect(),
        }
    }
}

/// Every data-plane request round-trips identically through both framings,
/// and the binary encoding is sniffable as binary.
#[test]
fn request_codecs_agree() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let req = arb_request(g);
        let json = encode_request_wire(&req, Framing::Json);
        let bin = encode_request_wire(&req, Framing::Bin);
        prop_assert!(!is_binary(&json), "JSON framing must not sniff as binary");
        prop_assert!(is_binary(&bin), "binary framing must sniff as binary");
        let via_json = decode_request_wire(&json).map_err(|e| e.to_string())?;
        let via_bin = decode_request_wire(&bin).map_err(|e| e.to_string())?;
        prop_assert_eq!(&via_json, &req);
        prop_assert_eq!(&via_bin, &req);
        // The wire decoder and the plain JSON decoder agree on JSON frames.
        let plain: Request = decode(&json).map_err(|e| e.to_string())?;
        prop_assert_eq!(&plain, &req);
        Ok(())
    });
}

/// Every data-plane response round-trips identically through both framings.
#[test]
fn response_codecs_agree() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let resp = arb_response(g);
        let json = encode_response_wire(&resp, Framing::Json);
        let bin = encode_response_wire(&resp, Framing::Bin);
        prop_assert!(is_binary(&bin));
        let via_json = decode_response_wire(&json).map_err(|e| e.to_string())?;
        let via_bin = decode_response_wire(&bin).map_err(|e| e.to_string())?;
        prop_assert_eq!(&via_json, &resp);
        prop_assert_eq!(&via_bin, &resp);
        Ok(())
    });
}

/// Truncating a binary frame at any byte must produce a decode error,
/// never a panic or a silently wrong message.
#[test]
fn truncated_binary_responses_error_cleanly() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let resp = arb_response(g);
        let bin = encode_response_wire(&resp, Framing::Bin);
        let cut = g.range(0..bin.len() as u64) as usize;
        if cut == 0 {
            return Ok(()); // empty payload is not a binary frame
        }
        if let Ok(decoded) = decode_response_wire(&bin[..cut]) {
            prop_assert!(
                false,
                "truncated frame decoded to {decoded:?} instead of erroring"
            );
        }
        Ok(())
    });
}

const PROGRAM: &str = r#"
    header ethernet { dst: 48; src: 48; ether_type: 16; }
    header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
    metadata meta { egress_port: 9; drop: 1; }
    parser main {
      state start {
        extract(ethernet);
        select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
      }
      state parse_ipv4 { extract(ipv4); accept; }
    }
    action set_port(port: 9) { meta.egress_port = port; }
    action drop_() { meta.drop = 1; }
    table route {
      key = { hdr.ipv4.dst_addr: lpm; }
      actions = { set_port; drop_; }
      default_action = drop_();
    }
    control ig { if (hdr.ipv4.isValid()) { apply(route); } }
    pipeline ingress0 { parser = main; control = ig; }
    deparser { emit(ethernet); emit(ipv4); }
    intent routed_or_dropped {
      given hdr.ethernet.ether_type == 0x0800;
      expect meta.drop == 1 || meta.egress_port != 0;
    }
"#;

const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

fn program() -> CompiledProgram {
    let p = parse_program(PROGRAM).unwrap();
    compile(&p, &parse_rules(RULES).unwrap()).unwrap()
}

fn verdicts(report: &meissa_driver::TestReport) -> Vec<(usize, Verdict)> {
    report
        .cases
        .iter()
        .map(|c| (c.template_id, c.verdict.clone()))
        .collect()
}

/// A binary-preferring client against a protocol-v1 (JSON-only) agent:
/// the `Hello` negotiation must fall back to JSON and the run must produce
/// the same verdicts as the in-process driver — no errors, no drops.
#[test]
fn binary_client_falls_back_to_json_against_v1_agent() {
    let cp = program();
    let agent = Agent::spawn_json_only(Some(SwitchTarget::new(&cp)), None).unwrap();
    let (version, loaded, _) = hello(agent.addr()).unwrap();
    assert_eq!(version, 1, "legacy agent must report protocol v1");
    assert!(loaded);

    let mut run = Meissa::new().run(&cp);
    let wire = WireDriver::new(&cp, agent.addr())
        .with_framing(Framing::Bin)
        .run(&mut run)
        .unwrap();
    agent.shutdown();

    let mut run = Meissa::new().run(&cp);
    let local = TestDriver::new(&cp).run(&mut run, &SwitchTarget::new(&cp));
    assert_eq!(verdicts(&wire), verdicts(&local));
    assert!(!wire.found_bug());
}

/// The same run under both framings (against a v2 agent) produces
/// identical verdicts — framing is transport, not semantics. A seeded
/// fault must be caught identically too.
#[test]
fn framings_agree_on_verdicts_faithful_and_faulty() {
    for fault in [None, Some(Fault::WrongConstant { field: "meta.drop".into(), xor_mask: 1 })] {
        let cp = program();
        let target = |f: &Option<Fault>| match f {
            None => SwitchTarget::new(&cp),
            Some(f) => SwitchTarget::with_fault(&cp, f.clone()),
        };
        let mut reports = Vec::new();
        for framing in [Framing::Json, Framing::Bin] {
            let agent = Agent::spawn(Some(target(&fault)), None).unwrap();
            let mut run = Meissa::new().run(&cp);
            let report = WireDriver::new(&cp, agent.addr())
                .with_framing(framing)
                .with_connections(2)
                .run(&mut run)
                .unwrap();
            agent.shutdown();
            reports.push(report);
        }
        assert_eq!(
            verdicts(&reports[0]),
            verdicts(&reports[1]),
            "framings disagreed (fault: {fault:?})"
        );
        assert_eq!(reports[0].found_bug(), fault.is_some());
    }
}

/// Soak smoke: a faithful agent replayed for a short wall-clock window —
/// with and without fuzzing — must show zero divergence (the agent runs
/// the same interpreter as the reference, mutated bytes included), and the
/// Prometheus `Metrics` RPC must stay scrapable mid-soak.
#[test]
fn soak_replays_cleanly_and_metrics_stay_scrapable() {
    let cp = program();
    let agent = Agent::spawn(Some(SwitchTarget::new(&cp)), None).unwrap();
    for fuzz in [false, true] {
        let mut run = Meissa::new().run(&cp);
        let driver = WireDriver::new(&cp, agent.addr()).with_framing(Framing::Bin);
        let cfg = SoakConfig {
            duration: Duration::from_millis(300),
            fuzz,
            seed: 0xF00D,
        };
        let stats = std::thread::scope(|s| {
            let soak = s.spawn(|| driver.soak(&mut run, cfg).unwrap());
            // Scrape the side-channel metrics RPC while the soak runs.
            let text = meissa_netdriver::fetch_metrics(agent.addr()).unwrap();
            assert!(
                text.contains("meissa_agent_injected_total"),
                "metrics exposition missing agent counters:\n{text}"
            );
            // Per-rule hit counters are scrapable mid-soak, zero-hit arms
            // included (the denominator is part of the exposition).
            assert!(
                text.contains("meissa_agent_rule_hits_total{table="),
                "metrics exposition missing per-rule counters:\n{text}"
            );
            soak.join().unwrap()
        });
        assert!(stats.cases > 0, "soak replayed no cases (fuzz: {fuzz})");
        assert_eq!(stats.fuzzed, fuzz);
        assert_eq!(
            stats.divergent, 0,
            "faithful agent diverged (fuzz: {fuzz}): {stats}"
        );
        // Rule coverage rides along: the reference tallies hit arms, and
        // the growth curve is cumulative so it must be monotone in both
        // time and hits.
        assert!(stats.rules_total > 0, "no rule arms tracked: {stats}");
        assert!(stats.rules_hit > 0, "soak hit no rule arms: {stats}");
        assert!(stats.rules_hit <= stats.rules_total);
        assert!(
            !stats.coverage_curve.is_empty(),
            "no coverage curve samples (fuzz: {fuzz})"
        );
        for w in stats.coverage_curve.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 <= w[1].1,
                "coverage curve not monotone: {:?}",
                stats.coverage_curve
            );
        }
        let last = stats.coverage_curve.last().unwrap();
        assert_eq!(last.1, stats.rules_hit, "curve tail disagrees with total");
    }
    agent.shutdown();
}

/// Soak with fuzzing against a *faulty* agent classifies divergences into
/// the stable class names — and the seeded run is reproducible.
#[test]
fn fuzz_soak_classifies_divergence_on_faulty_agent() {
    let cp = program();
    let fault = Fault::WrongConstant { field: "meta.drop".into(), xor_mask: 1 };
    let agent = Agent::spawn(Some(SwitchTarget::with_fault(&cp, fault)), None).unwrap();
    let mut counts = Vec::new();
    for _ in 0..2 {
        let mut run = Meissa::new().run(&cp);
        let stats = WireDriver::new(&cp, agent.addr())
            .with_framing(Framing::Bin)
            .soak(
                &mut run,
                SoakConfig {
                    duration: Duration::from_millis(200),
                    fuzz: true,
                    seed: 7,
                },
            )
            .unwrap();
        assert!(
            stats.divergent > 0,
            "faulty agent produced no divergence: {stats}"
        );
        for (class, _) in &stats.classes {
            assert!(
                [
                    "missing-output",
                    "unexpected-forward",
                    "payload-mismatch",
                    "port-mismatch",
                    "state-mismatch",
                    "no-response",
                ]
                .contains(&class.as_str()),
                "unknown divergence class {class}"
            );
        }
        counts.push(stats.classes.clone());
    }
    // Same seed, same prototypes: the class *names* seen must agree run to
    // run (counts vary with wall-clock progress).
    let names = |v: &Vec<(String, u64)>| v.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>();
    assert_eq!(names(&counts[0]), names(&counts[1]));
    agent.shutdown();
}
