//! The injectable backend fault model.
//!
//! Each variant reproduces one of the paper's *non-code* bug classes: the
//! program source (and therefore the CFG that the analyzer and every
//! verification tool reasons over) is correct, but the compiled target
//! misbehaves. Verification is structurally blind to all of these; testing
//! catches them by comparing actual outputs against reference semantics.
//!
//! | Variant | Table 2 / §6 case |
//! |---|---|
//! | [`Fault::SetValidDropped`] | bug 14, bf-p4c backend bug C: `setValid` has no effect on certain paths |
//! | [`Fault::FieldOverlap`] | bug 15, misuse of optimization pragmas: two fields share a PHV container |
//! | [`Fault::WrongArithComparison`] | bug 12, bf-p4c backend bug A: `<` compiled as `<=` at one width |
//! | [`Fault::WrongAssignment`] | bug 13, bf-p4c backend bug B: an assignment lands on the wrong field |
//! | [`Fault::ChecksumNotUpdated`] | bug 16, missing compilation flags: checksum-update writes are dropped |

/// A backend fault to inject into a [`crate::SwitchTarget`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Fault {
    /// A faithful backend (the default).
    #[default]
    None,
    /// `setValid` on the given header silently does nothing: assignments of
    /// the constant 1 to `hdr.<header>.$valid` are dropped by the backend.
    SetValidDropped {
        /// Header whose `setValid` is broken.
        header: String,
    },
    /// Two fields were overlaid into one container by a misused pragma:
    /// writing either one clobbers the other with the same value.
    FieldOverlap {
        /// First overlaid field (full name, e.g. `hdr.tcp.ackno`).
        a: String,
        /// Second overlaid field.
        b: String,
    },
    /// Unsigned `<` at the given operand width is compiled as `<=`.
    WrongArithComparison {
        /// The affected operand width in bits.
        width: u16,
    },
    /// Assignments targeting field `intended` are written to field `actual`
    /// instead (both must have the same width).
    WrongAssignment {
        /// The field the source assigns.
        intended: String,
        /// The field the backend actually writes.
        actual: String,
    },
    /// Writes whose right-hand side contains a `csum16` computation are
    /// dropped (the checksum-update engine was never enabled).
    ChecksumNotUpdated,
    /// Constant assignments to the given field are miscompiled: the
    /// immediate is XORed with `xor_mask` (a frontend constant-folding bug,
    /// the p4c issue-2147 class).
    WrongConstant {
        /// Affected destination field (full name).
        field: String,
        /// Corruption applied to the immediate.
        xor_mask: u128,
    },
    /// Rule priority is inverted: where several installed rules match, the
    /// *last* one wins instead of the first (a ternary match-priority
    /// miscompilation, the p4c issue-2343 class).
    PriorityInverted,
}

impl Fault {
    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::SetValidDropped { .. } => "setValid-dropped",
            Fault::FieldOverlap { .. } => "field-overlap",
            Fault::WrongArithComparison { .. } => "wrong-arith-comparison",
            Fault::WrongAssignment { .. } => "wrong-assignment",
            Fault::ChecksumNotUpdated => "checksum-not-updated",
            Fault::WrongConstant { .. } => "wrong-constant",
            Fault::PriorityInverted => "priority-inverted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_faithful() {
        assert_eq!(Fault::default(), Fault::None);
        assert_eq!(Fault::None.name(), "none");
    }

    #[test]
    fn names_are_distinct() {
        let all = [
            Fault::None,
            Fault::SetValidDropped {
                header: "x".into(),
            },
            Fault::FieldOverlap {
                a: "p".into(),
                b: "q".into(),
            },
            Fault::WrongArithComparison { width: 16 },
            Fault::WrongAssignment {
                intended: "a".into(),
                actual: "b".into(),
            },
            Fault::ChecksumNotUpdated,
            Fault::WrongConstant {
                field: "f".into(),
                xor_mask: 1,
            },
            Fault::PriorityInverted,
        ];
        let names: std::collections::HashSet<&str> = all.iter().map(Fault::name).collect();
        assert_eq!(names.len(), all.len());
    }
}
