//! The switch target: backend "compiler" + deterministic interpreter.
//!
//! A [`SwitchTarget`] is the *implementation under test*. It parses an
//! arriving packet with the program's parser spec, then executes the
//! program deterministically: at every branch it takes the first successor
//! whose guard holds (installed rules are mutually exclusive by
//! construction, so this matches hardware's single-match behaviour). An
//! injected [`Fault`] perturbs execution the way the paper's non-code bugs
//! do — at the *executed-artifact* level, invisible in the source and in
//! the CFG every analysis tool consumes.

use crate::faults::Fault;
use crate::packet::{Packet, ParserPlan};
use meissa_ir::{AExp, BExp, Cfg, ConcreteState, FieldId, HashAlg, NodeId, RuleArm, Stmt};
use meissa_lang::CompiledProgram;
use meissa_num::Bv;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What came out of the switch for one injected packet.
#[derive(Clone, Debug)]
pub struct TargetOutput {
    /// The emitted packet; `None` when the packet was dropped (explicitly
    /// via the program's drop flag, by a parse error, or by wedging in an
    /// undefined branch).
    pub packet: Option<Packet>,
    /// Final egress port (`meta.egress_port` convention), when present.
    pub egress_port: Option<Bv>,
    /// The complete final field state (visible to the checker like a
    /// hardware model's snapshot; real deployments only see `packet`).
    pub final_state: ConcreteState,
}

/// Lock-free per-rule hit accounting for a running target.
///
/// Built from the program CFG's rule-site markers: every `(table, arm)`
/// pair gets a stable index (sorted order, so indices are reproducible
/// across targets compiled from the same program), and every CFG node
/// carrying sites maps to the indices it should bump. The interpreter
/// bumps on branch selection with relaxed atomics, so a tally shared
/// across injector threads (agent serving concurrent RPCs, soak workers)
/// never serializes the hot path and can be snapshotted mid-run.
pub struct RuleTally {
    /// Arm identity per index, in sorted `(table, arm)` order.
    sites: Vec<(String, RuleArm)>,
    /// CFG node → tally indices to bump when execution selects that node.
    by_node: HashMap<NodeId, Vec<u32>>,
    hits: Vec<AtomicU64>,
}

impl RuleTally {
    /// Indexes every rule site the CFG declares (hit or not — unhit arms
    /// are the interesting part of a coverage denominator).
    pub fn new(cfg: &Cfg) -> Self {
        let mut index: BTreeMap<(String, RuleArm), u32> = BTreeMap::new();
        for sites in cfg.rule_site_map().values() {
            for s in sites {
                let next = index.len() as u32;
                index.entry((s.table.clone(), s.arm)).or_insert(next);
            }
        }
        // Re-number in sorted-key order so indices are deterministic.
        let mut sites: Vec<(String, RuleArm)> = index.keys().cloned().collect();
        sites.sort();
        let lookup: HashMap<(String, RuleArm), u32> = sites
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        let mut by_node: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (nid, node_sites) in cfg.rule_site_map() {
            let idxs: Vec<u32> = node_sites
                .iter()
                .map(|s| lookup[&(s.table.clone(), s.arm)])
                .collect();
            if !idxs.is_empty() {
                by_node.insert(*nid, idxs);
            }
        }
        let hits = (0..sites.len()).map(|_| AtomicU64::new(0)).collect();
        RuleTally {
            sites,
            by_node,
            hits,
        }
    }

    /// Records that execution selected `node`. No-op for nodes without
    /// rule sites; relaxed ordering — counts are monotone tallies, not
    /// synchronization.
    pub fn bump(&self, node: NodeId) {
        if let Some(idxs) = self.by_node.get(&node) {
            for &i in idxs {
                self.hits[i as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total distinct arms tracked (the coverage denominator).
    pub fn arms_total(&self) -> u64 {
        self.sites.len() as u64
    }

    /// Arms hit at least once so far.
    pub fn arms_hit(&self) -> u64 {
        self.hits
            .iter()
            .filter(|h| h.load(Ordering::Relaxed) > 0)
            .count() as u64
    }

    /// A point-in-time `(table, arm, hits)` view in sorted arm order,
    /// including zero-hit arms.
    pub fn snapshot(&self) -> Vec<(&str, RuleArm, u64)> {
        self.sites
            .iter()
            .zip(&self.hits)
            .map(|((t, a), h)| (t.as_str(), *a, h.load(Ordering::Relaxed)))
            .collect()
    }
}

/// A software switch running one compiled program, possibly mis-compiled.
pub struct SwitchTarget {
    program: CompiledProgram,
    fault: Fault,
    /// Pre-resolved parser automaton — parse/normalize/deparse are on the
    /// per-packet hot path and must not re-resolve spec strings.
    plan: ParserPlan,
    /// Conventional drop flag (`meta.drop`), when the program declares one.
    drop_field: Option<FieldId>,
    /// Conventional egress port (`meta.egress_port`), when declared.
    egress_field: Option<FieldId>,
    /// Optional per-rule hit accounting, shared with scrapers.
    tally: Option<Arc<RuleTally>>,
}

impl SwitchTarget {
    /// A faithful target for the program.
    pub fn new(program: &CompiledProgram) -> Self {
        Self::with_fault(program, Fault::None)
    }

    /// A target whose backend exhibits the given fault.
    pub fn with_fault(program: &CompiledProgram, fault: Fault) -> Self {
        let fields = &program.cfg.fields;
        SwitchTarget {
            drop_field: fields.get("meta.drop"),
            egress_field: fields.get("meta.egress_port"),
            plan: ParserPlan::new(program),
            program: program.clone(),
            fault,
            tally: None,
        }
    }

    /// Enables per-rule hit accounting over the program's rule sites.
    /// The tally is built once from the CFG and bumped lock-free on every
    /// executed packet; snapshot it via [`SwitchTarget::tally`].
    pub fn with_tally(mut self) -> Self {
        self.tally = Some(Arc::new(RuleTally::new(&self.program.cfg)));
        self
    }

    /// The live hit tally, when enabled via [`SwitchTarget::with_tally`].
    pub fn tally(&self) -> Option<&Arc<RuleTally>> {
        self.tally.as_ref()
    }

    /// The program under test.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The pre-resolved parser automaton (shared with drivers so their
    /// per-case serialize/parse work skips spec-string resolution).
    pub fn plan(&self) -> &ParserPlan {
        &self.plan
    }

    /// The injected fault.
    pub fn fault(&self) -> &Fault {
        &self.fault
    }

    /// Injects a packet: parse → execute → deparse.
    pub fn inject(&self, packet: &Packet) -> TargetOutput {
        let Ok(state) = self.plan.parse(&self.program.cfg.fields, packet) else {
            return TargetOutput {
                packet: None,
                egress_port: None,
                final_state: ConcreteState::new(),
            };
        };
        self.run_state(&state, packet.id)
    }

    /// Injects an *ordered* packet sequence against a live register file.
    ///
    /// The file starts from `initial_registers` (cells absent there read
    /// zero — a freshly booted switch) and persists across the sequence:
    /// packet *i*'s register reads see packet *i−1*'s writes, which is the
    /// concrete counterpart of the k-packet symbolic unrolling. Returns one
    /// output per packet, in order.
    pub fn inject_sequence(
        &self,
        packets: &[Packet],
        initial_registers: &ConcreteState,
    ) -> Vec<TargetOutput> {
        let mut regs = initial_registers.clone();
        packets
            .iter()
            .map(|p| self.inject_stateful(p, &mut regs))
            .collect()
    }

    /// Injects one packet against a mutable register file, committing the
    /// packet's register writes back into it. A packet that fails to parse
    /// or wedges in an undefined branch leaves the file untouched; a packet
    /// the program *drops* still executed its path, so its writes commit.
    pub fn inject_stateful(&self, packet: &Packet, regs: &mut ConcreteState) -> TargetOutput {
        let Ok(state) = self.plan.parse(&self.program.cfg.fields, packet) else {
            return TargetOutput {
                packet: None,
                egress_port: None,
                final_state: ConcreteState::new(),
            };
        };
        self.run_state_with_registers(&state, packet.id, regs)
    }

    /// Executes the program from an already-parsed field state. Exposed so
    /// the test driver can also drive state-level comparisons.
    pub fn run_state(&self, input: &ConcreteState, id: u64) -> TargetOutput {
        let state = self.plan.normalize_input(&self.program.cfg.fields, input);
        match self.interpret(&self.program.cfg, &state) {
            Some(final_state) => self.emit(final_state, id),
            None => TargetOutput {
                packet: None,
                egress_port: None,
                final_state: state,
            },
        }
    }

    /// [`SwitchTarget::run_state`] against a live register file: every
    /// declared register cell in the input is overwritten by the file's
    /// current value before execution (the wire carries no register state),
    /// and the final values are committed back after.
    pub fn run_state_with_registers(
        &self,
        input: &ConcreteState,
        id: u64,
        regs: &mut ConcreteState,
    ) -> TargetOutput {
        let fields = &self.program.cfg.fields;
        let mut seeded = input.clone();
        for r in &self.program.registers {
            for &(_, f) in &r.cells {
                seeded.set(fields, f, regs.get(fields, f));
            }
        }
        let state = self.plan.normalize_input(&self.program.cfg.fields, &seeded);
        match self.interpret(&self.program.cfg, &state) {
            Some(final_state) => {
                for r in &self.program.registers {
                    for &(_, f) in &r.cells {
                        regs.set(fields, f, final_state.get(fields, f));
                    }
                }
                self.emit(final_state, id)
            }
            // Wedged: undefined behaviour is modeled as a silent drop that
            // never reached the register stage.
            None => TargetOutput {
                packet: None,
                egress_port: None,
                final_state: state,
            },
        }
    }

    /// Assembles the output for a completed execution: drop check, egress
    /// port, deparsed packet.
    fn emit(&self, final_state: ConcreteState, id: u64) -> TargetOutput {
        let fields = &self.program.cfg.fields;
        let dropped = self
            .drop_field
            .map(|f| !final_state.get(fields, f).is_zero())
            .unwrap_or(false);
        let egress_port = self.egress_field.map(|f| final_state.get(fields, f));
        let packet = if dropped {
            None
        } else {
            Some(self.plan.serialize_output(&self.program.cfg.fields, &final_state, id))
        };
        TargetOutput {
            packet,
            egress_port,
            final_state,
        }
    }

    /// Deterministic execution with fault application. Returns the final
    /// state, or `None` when execution wedges (no viable branch — undefined
    /// behaviour on hardware; we model it as a silent drop).
    fn interpret(&self, cfg: &Cfg, input: &ConcreteState) -> Option<ConcreteState> {
        let fields = &cfg.fields;
        let mut state = input.clone();
        let mut node = cfg.entry();
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > cfg.num_nodes() + 16 {
                return None; // cycle guard; CFGs are acyclic so unreachable
            }
            self.exec_stmt(fields, &mut state, cfg.stmt(node))?;
            let succ = cfg.succ(node);
            if succ.is_empty() {
                return Some(state);
            }
            node = self.pick_branch(cfg, &state, succ)?;
            if let Some(t) = &self.tally {
                t.bump(node);
            }
        }
    }

    /// Branch selection with hardware semantics: where a successor carries
    /// a *raw* match guard (table rules, select arms), the target evaluates
    /// the raw match in successor (priority) order — first match wins,
    /// exactly equivalent to the CFG's flattened conditions on a faithful
    /// backend, but perturbable by the priority-inversion fault.
    fn pick_branch(&self, cfg: &Cfg, state: &ConcreteState, succ: &[NodeId]) -> Option<NodeId> {
        let mut chosen = None;
        for &s in succ {
            let take = match (cfg.raw_guard(s), cfg.stmt(s)) {
                (Some(raw), _) => self.eval_bexp(&cfg.fields, state, raw),
                (None, Stmt::Assume(b)) => self.eval_bexp(&cfg.fields, state, b),
                // Non-predicate successors are unconditional continuations.
                (None, _) => true,
            };
            if take {
                chosen = Some(s);
                // Fault: inverted rule priority keeps scanning so the LAST
                // matching alternative wins (but never steals the default
                // branch's slot: hardware defaults fire only on total miss).
                if self.fault != Fault::PriorityInverted {
                    break;
                }
            }
        }
        chosen // None = all guards false: undefined; drop
    }

    fn exec_stmt(
        &self,
        fields: &meissa_ir::FieldTable,
        state: &mut ConcreteState,
        stmt: &Stmt,
    ) -> Option<()> {
        match stmt {
            Stmt::Assume(_) => {
                // Guards were evaluated by `pick_branch` before entering the
                // node (raw guards included); re-checking here would wrongly
                // re-apply the analyzer's priority flattening under the
                // inversion fault. Nothing to execute.
                Some(())
            }
            Stmt::Assign(f, e) => {
                // Fault: setValid compiled to a no-op (backend bug C).
                if let Fault::SetValidDropped { header } = &self.fault {
                    let vname = format!("hdr.{header}.$valid");
                    if fields.name(*f) == vname
                        && matches!(e, AExp::Const(c) if c.val() == 1)
                    {
                        return Some(());
                    }
                }
                // Fault: checksum-update writes dropped (missing flag).
                if self.fault == Fault::ChecksumNotUpdated && contains_csum(e) {
                    return Some(());
                }
                let mut value = state.eval_aexp(fields, e);
                // Fault: corrupted immediate (frontend constant bug).
                if let Fault::WrongConstant { field, xor_mask } = &self.fault {
                    if fields.name(*f) == field && matches!(e, AExp::Const(_)) {
                        value = value.xor(&Bv::new(value.width(), *xor_mask));
                    }
                }
                // Fault: assignment lands on the wrong destination.
                let mut dest = *f;
                if let Fault::WrongAssignment { intended, actual } = &self.fault {
                    if fields.name(*f) == intended {
                        if let Some(alt) = fields.get(actual) {
                            dest = alt;
                        }
                    }
                }
                state.set(fields, dest, value);
                // Fault: pragma overlay — the partner field is clobbered.
                if let Fault::FieldOverlap { a, b } = &self.fault {
                    let name = fields.name(dest).to_string();
                    let partner = if &name == a {
                        fields.get(b)
                    } else if &name == b {
                        fields.get(a)
                    } else {
                        None
                    };
                    if let Some(p) = partner {
                        if fields.width(p) == value.width() {
                            state.set(fields, p, value);
                        }
                    }
                }
                Some(())
            }
        }
    }

    /// Boolean evaluation with the comparison fault applied.
    fn eval_bexp(&self, fields: &meissa_ir::FieldTable, state: &ConcreteState, b: &BExp) -> bool {
        match b {
            BExp::True => true,
            BExp::False => false,
            BExp::Cmp(op, x, y) => {
                let vx = state.eval_aexp(fields, x);
                let vy = state.eval_aexp(fields, y);
                let mut op = *op;
                if let Fault::WrongArithComparison { width } = self.fault {
                    if vx.width() == width {
                        op = match op {
                            meissa_ir::CmpOp::Lt => meissa_ir::CmpOp::Le,
                            meissa_ir::CmpOp::Gt => meissa_ir::CmpOp::Ge,
                            other => other,
                        };
                    }
                }
                match op {
                    meissa_ir::CmpOp::Eq => vx == vy,
                    meissa_ir::CmpOp::Ne => vx != vy,
                    meissa_ir::CmpOp::Lt => vx.ult(&vy),
                    meissa_ir::CmpOp::Gt => vx.ugt(&vy),
                    meissa_ir::CmpOp::Le => !vx.ugt(&vy),
                    meissa_ir::CmpOp::Ge => !vx.ult(&vy),
                }
            }
            BExp::Bin(meissa_ir::BOp::And, x, y) => {
                self.eval_bexp(fields, state, x) && self.eval_bexp(fields, state, y)
            }
            BExp::Bin(meissa_ir::BOp::Or, x, y) => {
                self.eval_bexp(fields, state, x) || self.eval_bexp(fields, state, y)
            }
            BExp::Not(x) => !self.eval_bexp(fields, state, x),
        }
    }
}

fn contains_csum(e: &AExp) -> bool {
    match e {
        AExp::Hash(HashAlg::Csum16, _, _) => true,
        AExp::Hash(_, _, args) => args.iter().any(contains_csum),
        AExp::Field(_) | AExp::Const(_) => false,
        AExp::Bin(_, a, b) => contains_csum(a) || contains_csum(b),
        AExp::Not(a) | AExp::Shl(a, _) | AExp::Shr(a, _) => contains_csum(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::serialize_state;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
        header vxlan { vni: 24; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }
        action set_port(port: 9) { meta.egress_port = port; }
        action encap(vni: 24) {
          hdr.vxlan.setValid();
          hdr.vxlan.vni = vni;
          hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
        }
        action drop_() { meta.drop = 1; }
        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
        }
        control ig {
          if (hdr.ipv4.isValid()) {
            apply(route);
            if (hdr.ipv4.ttl < 2) { call drop_(); } else { call encap(99); }
          }
        }
        pipeline ingress0 { parser = main; control = ig; }
        deparser { emit(ethernet); emit(ipv4); emit(vxlan); }
    "#;

    const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

    fn program() -> CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        compile(&p, &parse_rules(RULES).unwrap()).unwrap()
    }

    fn input(cp: &CompiledProgram, ttl: u128, dst: u128) -> ConcreteState {
        let fields = &cp.cfg.fields;
        let f = |n: &str| fields.get(n).unwrap();
        ConcreteState::from_pairs([
            (f("hdr.ethernet.ether_type"), Bv::new(16, 0x0800)),
            (f("hdr.ipv4.ttl"), Bv::new(8, ttl)),
            (f("hdr.ipv4.dst_addr"), Bv::new(32, dst)),
            (f("hdr.ipv4.src_addr"), Bv::new(32, 0x01020304)),
        ])
    }

    #[test]
    fn faithful_target_forwards_and_encaps() {
        let cp = program();
        let t = SwitchTarget::new(&cp);
        let out = t.run_state(&input(&cp, 64, 0x0a000001), 1);
        assert!(out.packet.is_some());
        assert_eq!(out.egress_port, Some(Bv::new(9, 3)));
        let fields = &cp.cfg.fields;
        let vv = fields.get("hdr.vxlan.$valid").unwrap();
        assert_eq!(out.final_state.get(fields, vv).val(), 1);
        let cs = fields.get("hdr.ipv4.checksum").unwrap();
        let expect = HashAlg::Csum16.compute(
            16,
            &[Bv::new(32, 0x01020304), Bv::new(32, 0x0a000001)],
        );
        assert_eq!(out.final_state.get(fields, cs), expect);
    }

    #[test]
    fn tally_counts_rule_and_miss_arms_per_injected_packet() {
        let cp = program();
        let t = SwitchTarget::new(&cp).with_tally();
        let tally = t.tally().expect("tally enabled").clone();
        // One installed rule plus the default (miss) arm.
        assert_eq!(tally.arms_total(), 2);
        assert_eq!(tally.arms_hit(), 0);

        // Two packets matching rule 0, one total miss (default drop).
        t.run_state(&input(&cp, 64, 0x0a000001), 1);
        t.run_state(&input(&cp, 64, 0x0a000002), 2);
        t.run_state(&input(&cp, 64, 0x08080808), 3);

        assert_eq!(tally.arms_hit(), 2);
        let snap = tally.snapshot();
        assert_eq!(
            snap,
            vec![
                ("route", RuleArm::Rule(0), 2),
                ("route", RuleArm::Miss, 1),
            ]
        );
    }

    #[test]
    fn tally_absent_by_default_and_costless() {
        let cp = program();
        let t = SwitchTarget::new(&cp);
        assert!(t.tally().is_none());
        // Behaviour identical with and without the tally.
        let with = SwitchTarget::new(&cp).with_tally();
        let a = t.run_state(&input(&cp, 64, 0x0a000001), 1);
        let b = with.run_state(&input(&cp, 64, 0x0a000001), 1);
        assert_eq!(a.egress_port, b.egress_port);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn drop_flag_suppresses_output() {
        let cp = program();
        let t = SwitchTarget::new(&cp);
        // dst matches no rule → default drop_.
        let out = t.run_state(&input(&cp, 64, 0x08080808), 1);
        assert!(out.packet.is_none());
    }

    #[test]
    fn packet_level_injection_roundtrip() {
        let cp = program();
        let t = SwitchTarget::new(&cp);
        let state = input(&cp, 64, 0x0a000001);
        let pkt = serialize_state(&cp, &state, 42).unwrap();
        let out = t.inject(&pkt);
        let got = out.packet.expect("forwarded");
        assert_eq!(got.id, 42);
        // Output carries vxlan now: longer than the input.
        assert!(got.len() > pkt.len());
    }

    #[test]
    fn setvalid_dropped_fault_diverges() {
        let cp = program();
        let good = SwitchTarget::new(&cp);
        let bad = SwitchTarget::with_fault(
            &cp,
            Fault::SetValidDropped {
                header: "vxlan".into(),
            },
        );
        let state = input(&cp, 64, 0x0a000001);
        let fields = &cp.cfg.fields;
        let vv = fields.get("hdr.vxlan.$valid").unwrap();
        assert_eq!(good.run_state(&state, 1).final_state.get(fields, vv).val(), 1);
        assert_eq!(bad.run_state(&state, 1).final_state.get(fields, vv).val(), 0);
        // And the emitted packets differ (no vxlan header on the wire).
        let g = good.run_state(&state, 1).packet.unwrap();
        let b = bad.run_state(&state, 1).packet.unwrap();
        assert!(g.len() > b.len());
    }

    #[test]
    fn checksum_fault_leaves_stale_checksum() {
        let cp = program();
        let bad = SwitchTarget::with_fault(&cp, Fault::ChecksumNotUpdated);
        let state = input(&cp, 64, 0x0a000001);
        let fields = &cp.cfg.fields;
        let cs = fields.get("hdr.ipv4.checksum").unwrap();
        let out = bad.run_state(&state, 1);
        assert_eq!(out.final_state.get(fields, cs).val(), 0, "never updated");
    }

    #[test]
    fn wrong_comparison_fault_flips_boundary() {
        let cp = program();
        let good = SwitchTarget::new(&cp);
        let bad = SwitchTarget::with_fault(&cp, Fault::WrongArithComparison { width: 8 });
        // ttl == 2 sits exactly on the `ttl < 2` boundary: faithful target
        // encaps; faulty target (`<` → `<=`) drops.
        let state = input(&cp, 2, 0x0a000001);
        assert!(good.run_state(&state, 1).packet.is_some());
        assert!(bad.run_state(&state, 1).packet.is_none());
        // Away from the boundary both agree.
        let state = input(&cp, 64, 0x0a000001);
        assert!(good.run_state(&state, 1).packet.is_some());
        assert!(bad.run_state(&state, 1).packet.is_some());
    }

    #[test]
    fn wrong_assignment_fault_redirects_write() {
        let cp = program();
        let bad = SwitchTarget::with_fault(
            &cp,
            Fault::WrongAssignment {
                intended: "hdr.vxlan.vni".into(),
                actual: "hdr.vxlan.vni".into(), // same-name redirect is a no-op…
            },
        );
        let state = input(&cp, 64, 0x0a000001);
        let fields = &cp.cfg.fields;
        let vni = fields.get("hdr.vxlan.vni").unwrap();
        assert_eq!(bad.run_state(&state, 1).final_state.get(fields, vni).val(), 99);
    }

    #[test]
    fn field_overlap_fault_clobbers_partner() {
        // The §6 pragma case shape: a 16-bit field the program writes
        // (ipv4.checksum, via encap) was overlaid with an unrelated 16-bit
        // field (ethernet.ether_type) — the write corrupts both.
        let cp = program();
        let bad = SwitchTarget::with_fault(
            &cp,
            Fault::FieldOverlap {
                a: "hdr.ethernet.ether_type".into(),
                b: "hdr.ipv4.checksum".into(),
            },
        );
        let state = input(&cp, 64, 0x0a000001);
        let out = bad.run_state(&state, 1);
        let fields = &cp.cfg.fields;
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        let cs = fields.get("hdr.ipv4.checksum").unwrap();
        assert_eq!(
            out.final_state.get(fields, et),
            out.final_state.get(fields, cs),
            "overlaid fields collapse to one value"
        );
        assert_ne!(
            out.final_state.get(fields, et),
            Bv::new(16, 0x0800),
            "ether_type corrupted by the checksum write"
        );
        // The faithful target keeps them independent.
        let good = SwitchTarget::new(&cp).run_state(&state, 1);
        assert_eq!(good.final_state.get(fields, et), Bv::new(16, 0x0800));
    }

    #[test]
    fn register_file_persists_across_a_sequence() {
        let src = r#"
            header pkt { x: 8; }
            metadata meta { y: 8; }
            register acc[1]: 8;
            parser p { state start { extract(pkt); accept; } }
            action bump() { acc[0] = acc[0] + hdr.pkt.x; meta.y = acc[0]; }
            control ig { call bump(); }
            pipeline ingress0 { parser = p; control = ig; }
            deparser { emit(pkt); }
        "#;
        let cp = compile(
            &parse_program(src).unwrap(),
            &parse_rules("").unwrap(),
        )
        .unwrap();
        let t = SwitchTarget::new(&cp);
        let fields = &cp.cfg.fields;
        let x = fields.get("hdr.pkt.x").unwrap();
        let y = fields.get("meta.y").unwrap();
        let mk = |v: u128, id: u64| {
            serialize_state(&cp, &ConcreteState::from_pairs([(x, Bv::new(8, v))]), id).unwrap()
        };
        let pkts = [mk(5, 1), mk(7, 2), mk(11, 3)];

        // Stateful sequence: the accumulator carries across packets.
        let outs = t.inject_sequence(&pkts, &ConcreteState::new());
        let ys: Vec<u128> = outs.iter().map(|o| o.final_state.get(fields, y).val()).collect();
        assert_eq!(ys, vec![5, 12, 23]);

        // Plain inject is stateless: every packet sees a zero register.
        assert_eq!(t.inject(&pkts[1]).final_state.get(fields, y).val(), 7);
        assert_eq!(t.inject(&pkts[1]).final_state.get(fields, y).val(), 7);

        // Seeded initial state shifts the whole sequence.
        let acc = fields.get("REG:acc-POS:0").unwrap();
        let seed = ConcreteState::from_pairs([(acc, Bv::new(8, 100))]);
        let outs = t.inject_sequence(&pkts[..1], &seed);
        assert_eq!(outs[0].final_state.get(fields, y).val(), 105);
    }

    #[test]
    fn truncated_packet_is_dropped() {
        let cp = program();
        let t = SwitchTarget::new(&cp);
        let out = t.inject(&Packet {
            bytes: vec![0u8; 3],
            id: 0,
        });
        assert!(out.packet.is_none());
    }
}
