//! The software switch target.
//!
//! The paper runs compiled P4 on Intel Tofino hardware; testing catches
//! *non-code* bugs because the executed target can diverge from the source
//! program's semantics (compiler bugs, pragma misuse, missing flags —
//! Table 2 bugs 7–16). This crate reproduces that structure in software:
//!
//! * [`bits`] — bit-granular packet serialization primitives;
//! * [`packet`] — wire format: serializing a field state into packet bytes
//!   and re-parsing bytes by *executing the program's parser spec* (the
//!   AST, independently of the CFG encoding the analyzer uses);
//! * [`faults`] — the injectable backend fault model reproducing the
//!   paper's non-code bug classes;
//! * [`target`] — the backend "compiler" and deterministic interpreter: a
//!   [`target::SwitchTarget`] accepts a packet, parses it, executes the
//!   program, and emits the output packet (or absence), optionally under an
//!   injected fault.
//!
//! Reference semantics (what the program *should* do) is the `meissa-ir`
//! concrete evaluator; the test driver compares the two.

pub mod bits;
pub mod faults;
pub mod packet;
pub mod target;

pub use faults::Fault;
pub use packet::{parse_packet, serialize_output, serialize_state, Packet, PacketError, ParserPlan};
pub use target::{RuleTally, SwitchTarget, TargetOutput};
