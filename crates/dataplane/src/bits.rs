//! Bit-granular packet serialization.
//!
//! P4 header fields are arbitrary bit widths (a 4-bit IHL next to a 4-bit
//! version, a 3-bit flags field…); packets are byte streams. The writer
//! packs fields MSB-first (network order), the reader unpacks them the same
//! way — matching how a hardware parser slices the wire.

use meissa_num::Bv;

/// Packs bitvector fields into bytes, MSB-first.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0 = byte boundary).
    partial: u8,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field value (its `width` bits, most significant first).
    pub fn write(&mut self, v: Bv) {
        for i in (0..v.width()).rev() {
            self.push_bit(v.bit(i));
        }
    }

    fn push_bit(&mut self, b: bool) {
        if self.partial == 0 {
            self.bytes.push(0);
        }
        if b {
            let last = self.bytes.last_mut().unwrap();
            *last |= 1 << (7 - self.partial);
        }
        self.partial = (self.partial + 1) % 8;
    }

    /// Number of whole bits written.
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial as usize
        }
    }

    /// Finishes, zero-padding to a byte boundary.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Unpacks bitvector fields from bytes, MSB-first.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// A reader over the given bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Remaining unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads a `width`-bit field; `None` if the packet is too short (a
    /// truncated header — hardware parsers treat this as a parse error).
    pub fn read(&mut self, width: u16) -> Option<Bv> {
        if self.remaining_bits() < width as usize {
            return None;
        }
        let mut val = 0u128;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            val = (val << 1) | bit as u128;
            self.pos += 1;
        }
        Some(Bv::new(width, val))
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_aligned_roundtrip() {
        let mut w = BitWriter::new();
        w.write(Bv::new(8, 0xab));
        w.write(Bv::new(16, 0xcdef));
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xab, 0xcd, 0xef]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(8), Some(Bv::new(8, 0xab)));
        assert_eq!(r.read(16), Some(Bv::new(16, 0xcdef)));
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn sub_byte_fields_pack_msb_first() {
        // IPv4-style: version=4 (4 bits), ihl=5 (4 bits) → 0x45.
        let mut w = BitWriter::new();
        w.write(Bv::new(4, 4));
        w.write(Bv::new(4, 5));
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x45]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(4), Some(Bv::new(4, 4)));
        assert_eq!(r.read(4), Some(Bv::new(4, 5)));
    }

    #[test]
    fn odd_widths_roundtrip() {
        // 3 + 13 bits (IPv4 flags + fragment offset).
        let mut w = BitWriter::new();
        w.write(Bv::new(3, 0b101));
        w.write(Bv::new(13, 0x1abc));
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(Bv::new(3, 0b101)));
        assert_eq!(r.read(13), Some(Bv::new(13, 0x1abc)));
    }

    #[test]
    fn truncated_read_returns_none() {
        let bytes = [0xff];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(16), None);
        assert_eq!(r.read(8), Some(Bv::new(8, 0xff)));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn partial_final_byte_zero_padded() {
        let mut w = BitWriter::new();
        w.write(Bv::new(3, 0b111));
        assert_eq!(w.bit_len(), 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1110_0000]);
    }

    #[test]
    fn wide_field_roundtrip() {
        let mut w = BitWriter::new();
        let v = Bv::new(128, u128::MAX - 987654321);
        w.write(v);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 16);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(128), Some(v));
    }
}
