//! Wire format: field state ⇄ packet bytes.
//!
//! The sender serializes a template's concrete field state into packet
//! bytes by *executing the program's parser spec* concretely — the headers
//! present on the wire are exactly those the parser would extract, in
//! extraction order. The receiver (and the switch target) re-parses bytes
//! by the same spec. Test packets carry a unique id in their payload so the
//! checker can match sent and received packets (§4).

use crate::bits::{BitReader, BitWriter};
use meissa_ir::{ConcreteState, FieldTable};
use meissa_lang::ast::{Expr, ParserDecl, SelectPattern, Transition};
use meissa_lang::CompiledProgram;
use meissa_num::Bv;

/// A concrete test packet: headers followed by an id-bearing payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Raw bytes (headers ++ payload).
    pub bytes: Vec<u8>,
    /// The unique test-case id carried in the payload (§4).
    pub id: u64,
}

impl Packet {
    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for an empty byte vector (never produced by the sender).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Why the wire layer could not process a state or packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// An expression referenced a register cell the §4 encoding never
    /// materialized as a field: `REG:name-POS:idx` is absent from the field
    /// table (unknown register, or a cell the compiled code never touches).
    /// Distinct from generic failure so callers can tell "this program's
    /// state model is incomplete" from "this packet is broken".
    UnmodeledRegister {
        /// The register array's name.
        register: String,
        /// The constant cell index.
        index: u32,
    },
    /// An expression could not be evaluated concretely: unknown field,
    /// action parameter out of scope, or a bare literal with no width
    /// context.
    Unevaluable,
    /// The packet ended before the parser finished extracting.
    Truncated,
    /// The parser spec itself is malformed: unknown state or header, or the
    /// state machine exceeded the step bound (a cycle).
    MalformedParser,
    /// The program has no entry parser to serialize or parse with.
    NoEntryParser,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::UnmodeledRegister { register, index } => write!(
                f,
                "unmodeled register: `{register}[{index}]` has no `REG:{register}-POS:{index}` field"
            ),
            PacketError::Unevaluable => write!(f, "expression is not concretely evaluable"),
            PacketError::Truncated => write!(f, "packet truncated mid-extraction"),
            PacketError::MalformedParser => write!(f, "malformed parser spec"),
            PacketError::NoEntryParser => write!(f, "program has no entry parser"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Evaluates a surface expression concretely against a field state.
/// Parser scrutinees reference extracted fields (and, rarely, arithmetic
/// over them); action parameters are not in scope here.
fn eval_expr(
    fields: &FieldTable,
    state: &ConcreteState,
    e: &Expr,
    ctx_width: Option<u16>,
) -> Result<Bv, PacketError> {
    Ok(match e {
        Expr::Num(n) => Bv::new(ctx_width.ok_or(PacketError::Unevaluable)?, *n),
        Expr::Field(name) => {
            let f = fields.get(name).ok_or(PacketError::Unevaluable)?;
            state.get(fields, f)
        }
        Expr::Register(name, idx) => {
            let f = fields.get(&format!("REG:{name}-POS:{idx}")).ok_or_else(|| {
                PacketError::UnmodeledRegister {
                    register: name.clone(),
                    index: *idx,
                }
            })?;
            state.get(fields, f)
        }
        Expr::Param(_) => return Err(PacketError::Unevaluable),
        Expr::Bin(op, a, b) => {
            let x = eval_expr(fields, state, a, ctx_width)?;
            let y = eval_expr(fields, state, b, Some(x.width()))?;
            match op {
                meissa_ir::AOp::Add => x.add(&y),
                meissa_ir::AOp::Sub => x.sub(&y),
                meissa_ir::AOp::And => x.and(&y),
                meissa_ir::AOp::Or => x.or(&y),
                meissa_ir::AOp::Xor => x.xor(&y),
            }
        }
        Expr::Not(a) => eval_expr(fields, state, a, ctx_width)?.not(),
        Expr::Shl(a, n) => eval_expr(fields, state, a, ctx_width)?.shl(*n as u32),
        Expr::Shr(a, n) => eval_expr(fields, state, a, ctx_width)?.shr(*n as u32),
        Expr::Hash(alg, w, args) => {
            let keys: Vec<Bv> = args
                .iter()
                .map(|a| eval_expr(fields, state, a, None))
                .collect::<Result<_, _>>()?;
            alg.compute(*w, &keys)
        }
    })
}

/// Walks the parser spec concretely over `state`, returning the headers it
/// would extract, in order. Fails on a malformed spec (unknown state, cycle
/// beyond the step bound) or an unevaluable scrutinee — notably
/// [`PacketError::UnmodeledRegister`] when a select reads a register cell
/// the §4 encoding never materialized.
pub fn extraction_order(
    program: &CompiledProgram,
    parser: &ParserDecl,
    state: &ConcreteState,
) -> Result<Vec<String>, PacketError> {
    let fields = &program.cfg.fields;
    let mut extracted = Vec::new();
    let mut current = "start".to_string();
    for _ in 0..1024 {
        if current == "accept" {
            return Ok(extracted);
        }
        let st = parser
            .states
            .iter()
            .find(|s| s.name == current)
            .ok_or(PacketError::MalformedParser)?;
        for h in &st.extracts {
            extracted.push(h.clone());
        }
        current = match &st.transition {
            Transition::Accept => "accept".to_string(),
            Transition::Goto(next) => next.clone(),
            Transition::Select {
                scrutinee,
                arms,
                default,
            } => {
                let v = eval_expr(fields, state, scrutinee, None)?;
                let mut target = default.clone();
                for (pat, t) in arms {
                    let hit = match *pat {
                        SelectPattern::Exact(k) => v.val() == k & mask_of(v.width()),
                        SelectPattern::Mask(k, m) => (v.val() & m) == (k & m) & mask_of(v.width()),
                        SelectPattern::Range(lo, hi) => v.val() >= lo && v.val() <= hi,
                    };
                    if hit {
                        target = t.clone();
                        break;
                    }
                }
                target
            }
        };
    }
    Err(PacketError::MalformedParser) // step bound exceeded: a cycle
}

fn mask_of(width: u16) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// The entry parser: the parser of the topologically-first pipeline.
pub fn entry_parser(program: &CompiledProgram) -> Option<&ParserDecl> {
    let order = program.cfg.pipeline_topo_order();
    let first = program.cfg.pipeline(*order.first()?).name.clone();
    let decl = program.source.pipelines.iter().find(|p| p.name == first)?;
    let pname = decl.parser.as_ref()?;
    program.source.parsers.iter().find(|p| &p.name == pname)
}

/// Serializes an input field state into a test packet: the headers the
/// entry parser would extract, in extraction order, plus an 8-byte id
/// payload.
pub fn serialize_state(
    program: &CompiledProgram,
    state: &ConcreteState,
    id: u64,
) -> Result<Packet, PacketError> {
    let parser = entry_parser(program).ok_or(PacketError::NoEntryParser)?;
    let order = extraction_order(program, parser, state)?;
    Ok(serialize_headers(program, state, &order, id))
}

/// Serializes the given headers (by name, in order) from `state`.
pub fn serialize_headers(
    program: &CompiledProgram,
    state: &ConcreteState,
    headers: &[String],
    id: u64,
) -> Packet {
    let fields = &program.cfg.fields;
    let mut w = BitWriter::new();
    for hname in headers {
        if let Some(layout) = program.header(hname) {
            for (_, f, _) in &layout.fields {
                w.write(state.get(fields, *f));
            }
        }
    }
    let mut bytes = w.finish();
    bytes.extend_from_slice(&id.to_be_bytes());
    Packet { bytes, id }
}

/// Serializes an *output* packet: headers in deparser emit order, filtered
/// by final validity bits (what a switch's deparser does).
pub fn serialize_output(program: &CompiledProgram, state: &ConcreteState, id: u64) -> Packet {
    let fields = &program.cfg.fields;
    let valid_headers: Vec<String> = program
        .deparse_order
        .iter()
        .filter(|h| {
            program
                .header(h)
                .map(|l| state.get(fields, l.valid) == Bv::new(1, 1))
                .unwrap_or(false)
        })
        .cloned()
        .collect();
    serialize_headers(program, state, &valid_headers, id)
}

/// Parses packet bytes by executing the entry parser spec; returns the
/// reconstructed field state (extracted fields + validity bits) and the
/// payload id. Fails on a truncated packet, a malformed spec, or an
/// unevaluable scrutinee (see [`PacketError`]).
pub fn parse_packet(program: &CompiledProgram, packet: &Packet) -> Result<ConcreteState, PacketError> {
    let parser = entry_parser(program).ok_or(PacketError::NoEntryParser)?;
    let fields = &program.cfg.fields;
    let mut state = ConcreteState::new();
    let mut r = BitReader::new(&packet.bytes);
    let mut current = "start".to_string();
    for _ in 0..1024 {
        if current == "accept" {
            return Ok(state);
        }
        let st = parser
            .states
            .iter()
            .find(|s| s.name == current)
            .ok_or(PacketError::MalformedParser)?;
        for h in &st.extracts {
            let layout = program
                .headers
                .iter()
                .find(|l| &l.name == h)
                .ok_or(PacketError::MalformedParser)?;
            for (_, f, w) in &layout.fields {
                let v = r.read(*w).ok_or(PacketError::Truncated)?;
                state.set(fields, *f, v);
            }
            state.set(fields, layout.valid, Bv::new(1, 1));
        }
        current = match &st.transition {
            Transition::Accept => "accept".to_string(),
            Transition::Goto(next) => next.clone(),
            Transition::Select {
                scrutinee,
                arms,
                default,
            } => {
                let v = eval_expr(fields, &state, scrutinee, None)?;
                let mut target = default.clone();
                for (pat, t) in arms {
                    let hit = match *pat {
                        SelectPattern::Exact(k) => v.val() == k & mask_of(v.width()),
                        SelectPattern::Mask(k, m) => (v.val() & m) == (k & m) & mask_of(v.width()),
                        SelectPattern::Range(lo, hi) => v.val() >= lo && v.val() <= hi,
                    };
                    if hit {
                        target = t.clone();
                        break;
                    }
                }
                target
            }
        };
    }
    Err(PacketError::MalformedParser)
}

/// Zeroes every field belonging to headers the entry parser would *not*
/// extract for this state. The solver's model assigns arbitrary values to
/// unconstrained fields; on the wire those headers do not exist, so both
/// reference and target must see deterministic (zero) garbage.
pub fn normalize_input(program: &CompiledProgram, state: &ConcreteState) -> ConcreteState {
    let fields = &program.cfg.fields;
    let extracted: Vec<String> = entry_parser(program)
        .and_then(|p| extraction_order(program, p, state).ok())
        .unwrap_or_default();
    let mut out = state.clone();
    for layout in &program.headers {
        if !extracted.contains(&layout.name) {
            for (_, f, w) in &layout.fields {
                out.set(fields, *f, Bv::zero(*w));
            }
        }
        // Validity is decided by the parser, never by the input model.
        out.set(fields, layout.valid, Bv::zero(1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { version: 4; ihl: 4; ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; }
        header tcp { src_port: 16; dst_port: 16; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 {
            extract(ipv4);
            select (hdr.ipv4.protocol) { 6 => parse_tcp; default => accept; }
          }
          state parse_tcp { extract(tcp); accept; }
        }
        action nopa() { }
        control ig { call nopa(); }
        pipeline ingress0 { parser = main; control = ig; }
        deparser { emit(ethernet); emit(ipv4); emit(tcp); }
    "#;

    fn program() -> CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        compile(&p, &parse_rules("").unwrap()).unwrap()
    }

    fn state_with(program: &CompiledProgram, pairs: &[(&str, u128)]) -> ConcreteState {
        let fields = &program.cfg.fields;
        ConcreteState::from_pairs(pairs.iter().map(|&(n, v)| {
            let f = fields.get(n).unwrap();
            (f, Bv::new(fields.width(f), v))
        }))
    }

    #[test]
    fn extraction_follows_selects() {
        let cp = program();
        let parser = entry_parser(&cp).unwrap();
        let tcp_pkt = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0800), ("hdr.ipv4.protocol", 6)],
        );
        assert_eq!(
            extraction_order(&cp, parser, &tcp_pkt).unwrap(),
            vec!["ethernet", "ipv4", "tcp"]
        );
        let udp_pkt = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0800), ("hdr.ipv4.protocol", 17)],
        );
        assert_eq!(
            extraction_order(&cp, parser, &udp_pkt).unwrap(),
            vec!["ethernet", "ipv4"]
        );
        let arp_pkt = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        assert_eq!(
            extraction_order(&cp, parser, &arp_pkt).unwrap(),
            vec!["ethernet"]
        );
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let cp = program();
        let state = state_with(
            &cp,
            &[
                ("hdr.ethernet.dst", 0x001122334455),
                ("hdr.ethernet.src", 0xaabbccddeeff),
                ("hdr.ethernet.ether_type", 0x0800),
                ("hdr.ipv4.version", 4),
                ("hdr.ipv4.ihl", 5),
                ("hdr.ipv4.ttl", 64),
                ("hdr.ipv4.protocol", 6),
                ("hdr.ipv4.src_addr", 0x0a000001),
                ("hdr.ipv4.dst_addr", 0x0a000002),
                ("hdr.tcp.src_port", 12345),
                ("hdr.tcp.dst_port", 443),
            ],
        );
        let pkt = serialize_state(&cp, &state, 77).unwrap();
        // eth(14) + ipv4(11 bytes in this simplified layout: 4+4+8+8+32+32
        // = 88 bits) + tcp(4) + id payload(8).
        assert_eq!(pkt.len(), 14 + 11 + 4 + 8);
        assert_eq!(pkt.id, 77);

        let parsed = parse_packet(&cp, &pkt).unwrap();
        let fields = &cp.cfg.fields;
        for (name, want) in [
            ("hdr.ethernet.ether_type", 0x0800u128),
            ("hdr.ipv4.protocol", 6),
            ("hdr.tcp.dst_port", 443),
            ("hdr.ipv4.dst_addr", 0x0a000002),
            ("hdr.ethernet.$valid", 1),
            ("hdr.ipv4.$valid", 1),
            ("hdr.tcp.$valid", 1),
        ] {
            let f = fields.get(name).unwrap();
            assert_eq!(parsed.get(fields, f).val(), want, "{name}");
        }
    }

    #[test]
    fn non_ip_packet_parses_ethernet_only() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        let pkt = serialize_state(&cp, &state, 1).unwrap();
        assert_eq!(pkt.len(), 14 + 8);
        let parsed = parse_packet(&cp, &pkt).unwrap();
        let fields = &cp.cfg.fields;
        let ipv4_valid = fields.get("hdr.ipv4.$valid").unwrap();
        assert_eq!(parsed.get(fields, ipv4_valid).val(), 0);
    }

    #[test]
    fn truncated_packet_fails_parse() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0800)]);
        let mut pkt = serialize_state(&cp, &state, 1).unwrap();
        pkt.bytes.truncate(16); // mid-ipv4
        assert_eq!(parse_packet(&cp, &pkt), Err(PacketError::Truncated));
    }

    #[test]
    fn unmodeled_register_scrutinee_is_a_distinct_error() {
        // The §4 encoding interns `REG:name-POS:idx` only for cells the
        // *compiled* code references. A parser spec that scrutinizes any
        // other cell (spec drift, stale artifacts) used to vanish into a
        // silent `None`; it must name the register instead.
        let cp = program(); // fixture has no registers at all
        use meissa_lang::ast::{ParserDecl, ParserState};
        let drifted = ParserDecl {
            name: "drifted".into(),
            states: vec![ParserState {
                name: "start".into(),
                extracts: vec!["ethernet".into()],
                transition: Transition::Select {
                    scrutinee: Expr::Register("mode".into(), 1),
                    arms: vec![(SelectPattern::Exact(0), "accept".into())],
                    default: "accept".into(),
                },
            }],
        };
        let err = extraction_order(&cp, &drifted, &ConcreteState::new()).unwrap_err();
        assert_eq!(
            err,
            PacketError::UnmodeledRegister {
                register: "mode".into(),
                index: 1,
            }
        );
        assert!(err.to_string().contains("unmodeled register"));
    }

    #[test]
    fn modeled_register_scrutinee_evaluates() {
        // A register the compiled code references IS materialized, so a
        // select over it works (and reads zero from an empty state).
        let src = r#"
            header pkt { k: 8; }
            register mode[4]: 8;
            metadata meta { x: 8; }
            parser p {
              state start {
                extract(pkt);
                select (mode[1]) { 1 => more; default => accept; }
              }
              state more { accept; }
            }
            action touch() { meta.x = mode[1]; }
            control ig { call touch(); }
            pipeline ingress0 { parser = p; control = ig; }
            deparser { emit(pkt); }
        "#;
        let cp = compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap();
        let parser = entry_parser(&cp).unwrap();
        let order = extraction_order(&cp, parser, &ConcreteState::new()).unwrap();
        assert_eq!(order, vec!["pkt"]);
    }

    #[test]
    fn output_serialization_respects_validity() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let mut state = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0806), ("hdr.ethernet.dst", 42)],
        );
        let ev = fields.get("hdr.ethernet.$valid").unwrap();
        state.set(fields, ev, Bv::new(1, 1));
        let pkt = serialize_output(&cp, &state, 9);
        assert_eq!(pkt.len(), 14 + 8, "only ethernet emitted");
    }

    #[test]
    fn normalize_zeroes_unextracted_headers() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let mut state = state_with(
            &cp,
            &[
                ("hdr.ethernet.ether_type", 0x0806), // non-IP
                ("hdr.ipv4.dst_addr", 0xdeadbeef),   // solver garbage
            ],
        );
        let tcp_valid = fields.get("hdr.tcp.$valid").unwrap();
        state.set(fields, tcp_valid, Bv::new(1, 1)); // model garbage
        let norm = normalize_input(&cp, &state);
        let dst = fields.get("hdr.ipv4.dst_addr").unwrap();
        assert_eq!(norm.get(fields, dst).val(), 0);
        assert_eq!(norm.get(fields, tcp_valid).val(), 0);
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        assert_eq!(norm.get(fields, et).val(), 0x0806, "extracted field kept");
    }

    #[test]
    fn payload_id_roundtrips() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        let pkt = serialize_state(&cp, &state, 0xdead_beef_1234_5678).unwrap();
        let tail = &pkt.bytes[pkt.bytes.len() - 8..];
        assert_eq!(u64::from_be_bytes(tail.try_into().unwrap()), 0xdead_beef_1234_5678);
    }
}
