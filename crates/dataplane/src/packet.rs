//! Wire format: field state ⇄ packet bytes.
//!
//! The sender serializes a template's concrete field state into packet
//! bytes by *executing the program's parser spec* concretely — the headers
//! present on the wire are exactly those the parser would extract, in
//! extraction order. The receiver (and the switch target) re-parses bytes
//! by the same spec. Test packets carry a unique id in their payload so the
//! checker can match sent and received packets (§4).

use crate::bits::{BitReader, BitWriter};
use meissa_ir::{ConcreteState, FieldId, FieldTable};
use meissa_lang::ast::{Expr, ParserDecl, SelectPattern, Transition};
use meissa_lang::CompiledProgram;
use meissa_num::Bv;

/// A concrete test packet: headers followed by an id-bearing payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Raw bytes (headers ++ payload).
    pub bytes: Vec<u8>,
    /// The unique test-case id carried in the payload (§4).
    pub id: u64,
}

impl Packet {
    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for an empty byte vector (never produced by the sender).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Why the wire layer could not process a state or packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// An expression referenced a register cell the §4 encoding never
    /// materialized as a field: `REG:name-POS:idx` is absent from the field
    /// table (unknown register, or a cell the compiled code never touches).
    /// Distinct from generic failure so callers can tell "this program's
    /// state model is incomplete" from "this packet is broken".
    UnmodeledRegister {
        /// The register array's name.
        register: String,
        /// The constant cell index.
        index: u32,
    },
    /// An expression could not be evaluated concretely: unknown field,
    /// action parameter out of scope, or a bare literal with no width
    /// context.
    Unevaluable,
    /// The packet ended before the parser finished extracting.
    Truncated,
    /// The parser spec itself is malformed: unknown state or header, or the
    /// state machine exceeded the step bound (a cycle).
    MalformedParser,
    /// The program has no entry parser to serialize or parse with.
    NoEntryParser,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::UnmodeledRegister { register, index } => write!(
                f,
                "unmodeled register: `{register}[{index}]` has no `REG:{register}-POS:{index}` field"
            ),
            PacketError::Unevaluable => write!(f, "expression is not concretely evaluable"),
            PacketError::Truncated => write!(f, "packet truncated mid-extraction"),
            PacketError::MalformedParser => write!(f, "malformed parser spec"),
            PacketError::NoEntryParser => write!(f, "program has no entry parser"),
        }
    }
}

impl std::error::Error for PacketError {}

/// A pre-resolved parser automaton for one program.
///
/// The parser spec is string-keyed: states are found by name, scrutinee
/// expressions name fields, extracts name headers. Resolving those on every
/// packet made `parse_packet`/`normalize_input` the hot-path bottleneck
/// (~40 µs each on the gw suite). A `ParserPlan` does all name resolution
/// once — states, headers, and scrutinee fields become dense indices — so a
/// walk is pure array indexing. Resolution failures are kept *lazy* to
/// match the spec-walk semantics exactly: an unknown state or header only
/// errors when the walk actually reaches it.
pub struct ParserPlan {
    /// `None` when the program has no entry parser.
    start: Option<PlanNext>,
    states: Vec<PlanState>,
    /// Every program header, in declaration order.
    headers: Vec<PlanHeader>,
    /// Indices into `headers`, in deparser emit order (unknown names in the
    /// deparse list are skipped here, as `serialize_output` always did).
    deparse: Vec<u32>,
}

struct PlanHeader {
    name: String,
    fields: Vec<(FieldId, u16)>,
    valid: FieldId,
}

struct PlanState {
    extracts: Vec<ExtractRef>,
    transition: PlanTransition,
}

/// A header named in an `extract(...)`; `Unknown` keeps the name so the
/// serialize-side walk can report it like the spec walk did.
enum ExtractRef {
    Known(u32),
    Unknown(Box<str>),
}

/// A resolved transition target. `Unknown` errors as a malformed parser
/// only when the walk takes it.
#[derive(Clone, Copy)]
enum PlanNext {
    Accept,
    State(u32),
    Unknown,
}

enum PlanTransition {
    Direct(PlanNext),
    Select {
        scrutinee: RExpr,
        arms: Vec<(SelectPattern, PlanNext)>,
        default: PlanNext,
    },
}

/// A scrutinee expression with field names resolved to ids. Unresolvable
/// leaves keep their lazy error, reported only if evaluated.
enum RExpr {
    Num(u128),
    Field(FieldId),
    /// Unknown field name → [`PacketError::Unevaluable`].
    UnknownField,
    /// Register cell with no `REG:…-POS:…` field.
    Unmodeled(String, u32),
    /// Action parameters are not in scope for scrutinees.
    Param,
    Bin(meissa_ir::AOp, Box<RExpr>, Box<RExpr>),
    Not(Box<RExpr>),
    Shl(Box<RExpr>, u32),
    Shr(Box<RExpr>, u32),
    Hash(meissa_ir::HashAlg, u16, Vec<RExpr>),
}

impl ParserPlan {
    /// Compiles the plan for the program's entry parser.
    pub fn new(program: &CompiledProgram) -> ParserPlan {
        Self::build(program, entry_parser(program))
    }

    /// Compiles the plan for an explicit parser decl (spec tooling).
    pub fn for_parser(program: &CompiledProgram, parser: &ParserDecl) -> ParserPlan {
        Self::build(program, Some(parser))
    }

    fn build(program: &CompiledProgram, parser: Option<&ParserDecl>) -> ParserPlan {
        let fields = &program.cfg.fields;
        let headers: Vec<PlanHeader> = program
            .headers
            .iter()
            .map(|l| PlanHeader {
                name: l.name.clone(),
                fields: l.fields.iter().map(|&(_, f, w)| (f, w)).collect(),
                valid: l.valid,
            })
            .collect();
        let header_idx = |name: &str| -> Option<u32> {
            headers
                .iter()
                .position(|h| h.name == name)
                .map(|i| i as u32)
        };
        let deparse = program
            .deparse_order
            .iter()
            .filter_map(|h| header_idx(h))
            .collect();
        let Some(parser) = parser else {
            return ParserPlan {
                start: None,
                states: Vec::new(),
                headers,
                deparse,
            };
        };
        let resolve_next = |name: &str| -> PlanNext {
            if name == "accept" {
                return PlanNext::Accept;
            }
            match parser.states.iter().position(|s| s.name == name) {
                Some(i) => PlanNext::State(i as u32),
                None => PlanNext::Unknown,
            }
        };
        let states = parser
            .states
            .iter()
            .map(|st| PlanState {
                extracts: st
                    .extracts
                    .iter()
                    .map(|h| match header_idx(h) {
                        Some(i) => ExtractRef::Known(i),
                        None => ExtractRef::Unknown(h.as_str().into()),
                    })
                    .collect(),
                transition: match &st.transition {
                    Transition::Accept => PlanTransition::Direct(PlanNext::Accept),
                    Transition::Goto(next) => PlanTransition::Direct(resolve_next(next)),
                    Transition::Select {
                        scrutinee,
                        arms,
                        default,
                    } => PlanTransition::Select {
                        scrutinee: resolve_expr(fields, scrutinee),
                        arms: arms
                            .iter()
                            .map(|(pat, t)| (*pat, resolve_next(t)))
                            .collect(),
                        default: resolve_next(default),
                    },
                },
            })
            .collect();
        ParserPlan {
            start: Some(resolve_next("start")),
            states,
            headers,
            deparse,
        }
    }

    /// Picks the next state for a transition evaluated against `state`.
    fn step(
        &self,
        fields: &FieldTable,
        state: &ConcreteState,
        t: &PlanTransition,
    ) -> Result<PlanNext, PacketError> {
        Ok(match t {
            PlanTransition::Direct(next) => *next,
            PlanTransition::Select {
                scrutinee,
                arms,
                default,
            } => {
                let v = eval_rexpr(fields, state, scrutinee, None)?;
                let mut target = *default;
                for (pat, t) in arms {
                    let hit = match *pat {
                        SelectPattern::Exact(k) => v.val() == k & mask_of(v.width()),
                        SelectPattern::Mask(k, m) => (v.val() & m) == (k & m) & mask_of(v.width()),
                        SelectPattern::Range(lo, hi) => v.val() >= lo && v.val() <= hi,
                    };
                    if hit {
                        target = *t;
                        break;
                    }
                }
                target
            }
        })
    }

    /// Serialize-side walk: the extracts the parser would perform for
    /// `state`, in order. Mirrors the spec walk's error behaviour.
    fn walk<'a>(
        &'a self,
        fields: &FieldTable,
        state: &ConcreteState,
    ) -> Result<Vec<&'a ExtractRef>, PacketError> {
        let mut extracted = Vec::new();
        let mut current = self.start.ok_or(PacketError::NoEntryParser)?;
        for _ in 0..1024 {
            let i = match current {
                PlanNext::Accept => return Ok(extracted),
                PlanNext::Unknown => return Err(PacketError::MalformedParser),
                PlanNext::State(i) => i as usize,
            };
            let st = &self.states[i];
            extracted.extend(st.extracts.iter());
            current = self.step(fields, state, &st.transition)?;
        }
        Err(PacketError::MalformedParser) // step bound exceeded: a cycle
    }

    /// The headers the parser would extract for `state`, by name, in order.
    pub fn extraction_order(
        &self,
        fields: &FieldTable,
        state: &ConcreteState,
    ) -> Result<Vec<String>, PacketError> {
        Ok(self
            .walk(fields, state)?
            .into_iter()
            .map(|e| match e {
                ExtractRef::Known(i) => self.headers[*i as usize].name.clone(),
                ExtractRef::Unknown(name) => name.to_string(),
            })
            .collect())
    }

    /// Parses packet bytes by running the automaton; see [`parse_packet`].
    pub fn parse(
        &self,
        fields: &FieldTable,
        packet: &Packet,
    ) -> Result<ConcreteState, PacketError> {
        let mut state = ConcreteState::new();
        let mut r = BitReader::new(&packet.bytes);
        let mut current = self.start.ok_or(PacketError::NoEntryParser)?;
        for _ in 0..1024 {
            let i = match current {
                PlanNext::Accept => return Ok(state),
                PlanNext::Unknown => return Err(PacketError::MalformedParser),
                PlanNext::State(i) => i as usize,
            };
            let st = &self.states[i];
            for e in &st.extracts {
                let ExtractRef::Known(hi) = e else {
                    return Err(PacketError::MalformedParser);
                };
                let h = &self.headers[*hi as usize];
                for &(f, w) in &h.fields {
                    let v = r.read(w).ok_or(PacketError::Truncated)?;
                    state.set(fields, f, v);
                }
                state.set(fields, h.valid, Bv::new(1, 1));
            }
            current = self.step(fields, &state, &st.transition)?;
        }
        Err(PacketError::MalformedParser)
    }

    /// Serializes an input state into a test packet; see [`serialize_state`].
    pub fn serialize_state(
        &self,
        fields: &FieldTable,
        state: &ConcreteState,
        id: u64,
    ) -> Result<Packet, PacketError> {
        let order = self.walk(fields, state)?;
        let mut w = BitWriter::new();
        for e in order {
            if let ExtractRef::Known(hi) = e {
                for &(f, _) in &self.headers[*hi as usize].fields {
                    w.write(state.get(fields, f));
                }
            }
        }
        Ok(Self::finish(w, id))
    }

    /// Serializes an output packet in deparse order, filtered by validity;
    /// see [`serialize_output`].
    pub fn serialize_output(&self, fields: &FieldTable, state: &ConcreteState, id: u64) -> Packet {
        let mut w = BitWriter::new();
        for &hi in &self.deparse {
            let h = &self.headers[hi as usize];
            if state.get(fields, h.valid) == Bv::new(1, 1) {
                for &(f, _) in &h.fields {
                    w.write(state.get(fields, f));
                }
            }
        }
        Self::finish(w, id)
    }

    /// Zeroes fields of unextracted headers and all validity bits; see
    /// [`normalize_input`].
    pub fn normalize_input(&self, fields: &FieldTable, state: &ConcreteState) -> ConcreteState {
        let mut extracted = vec![false; self.headers.len()];
        if let Ok(walked) = self.walk(fields, state) {
            for e in walked {
                if let ExtractRef::Known(hi) = e {
                    extracted[*hi as usize] = true;
                }
            }
        }
        let mut out = state.clone();
        for (hi, h) in self.headers.iter().enumerate() {
            if !extracted[hi] {
                for &(f, w) in &h.fields {
                    out.set(fields, f, Bv::zero(w));
                }
            }
            // Validity is decided by the parser, never by the input model.
            out.set(fields, h.valid, Bv::zero(1));
        }
        out
    }

    fn finish(w: BitWriter, id: u64) -> Packet {
        let mut bytes = w.finish();
        bytes.extend_from_slice(&id.to_be_bytes());
        Packet { bytes, id }
    }
}

/// Resolves a surface scrutinee expression to id-based form.
fn resolve_expr(fields: &FieldTable, e: &Expr) -> RExpr {
    match e {
        Expr::Num(n) => RExpr::Num(*n),
        Expr::Field(name) => match fields.get(name) {
            Some(f) => RExpr::Field(f),
            None => RExpr::UnknownField,
        },
        Expr::Register(name, idx) => match fields.get(&format!("REG:{name}-POS:{idx}")) {
            Some(f) => RExpr::Field(f),
            None => RExpr::Unmodeled(name.clone(), *idx),
        },
        Expr::Param(_) => RExpr::Param,
        Expr::Bin(op, a, b) => RExpr::Bin(
            *op,
            Box::new(resolve_expr(fields, a)),
            Box::new(resolve_expr(fields, b)),
        ),
        Expr::Not(a) => RExpr::Not(Box::new(resolve_expr(fields, a))),
        Expr::Shl(a, n) => RExpr::Shl(Box::new(resolve_expr(fields, a)), *n as u32),
        Expr::Shr(a, n) => RExpr::Shr(Box::new(resolve_expr(fields, a)), *n as u32),
        Expr::Hash(alg, w, args) => {
            RExpr::Hash(*alg, *w, args.iter().map(|a| resolve_expr(fields, a)).collect())
        }
    }
}

/// Evaluates a resolved scrutinee concretely against a field state.
fn eval_rexpr(
    fields: &FieldTable,
    state: &ConcreteState,
    e: &RExpr,
    ctx_width: Option<u16>,
) -> Result<Bv, PacketError> {
    Ok(match e {
        RExpr::Num(n) => Bv::new(ctx_width.ok_or(PacketError::Unevaluable)?, *n),
        RExpr::Field(f) => state.get(fields, *f),
        RExpr::UnknownField | RExpr::Param => return Err(PacketError::Unevaluable),
        RExpr::Unmodeled(register, index) => {
            return Err(PacketError::UnmodeledRegister {
                register: register.clone(),
                index: *index,
            })
        }
        RExpr::Bin(op, a, b) => {
            let x = eval_rexpr(fields, state, a, ctx_width)?;
            let y = eval_rexpr(fields, state, b, Some(x.width()))?;
            match op {
                meissa_ir::AOp::Add => x.add(&y),
                meissa_ir::AOp::Sub => x.sub(&y),
                meissa_ir::AOp::And => x.and(&y),
                meissa_ir::AOp::Or => x.or(&y),
                meissa_ir::AOp::Xor => x.xor(&y),
            }
        }
        RExpr::Not(a) => eval_rexpr(fields, state, a, ctx_width)?.not(),
        RExpr::Shl(a, n) => eval_rexpr(fields, state, a, ctx_width)?.shl(*n),
        RExpr::Shr(a, n) => eval_rexpr(fields, state, a, ctx_width)?.shr(*n),
        RExpr::Hash(alg, w, args) => {
            let keys: Vec<Bv> = args
                .iter()
                .map(|a| eval_rexpr(fields, state, a, None))
                .collect::<Result<_, _>>()?;
            alg.compute(*w, &keys)
        }
    })
}

/// Walks the parser spec concretely over `state`, returning the headers it
/// would extract, in order. Fails on a malformed spec (unknown state, cycle
/// beyond the step bound) or an unevaluable scrutinee — notably
/// [`PacketError::UnmodeledRegister`] when a select reads a register cell
/// the §4 encoding never materialized.
pub fn extraction_order(
    program: &CompiledProgram,
    parser: &ParserDecl,
    state: &ConcreteState,
) -> Result<Vec<String>, PacketError> {
    ParserPlan::for_parser(program, parser).extraction_order(&program.cfg.fields, state)
}

fn mask_of(width: u16) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// The entry parser: the parser of the topologically-first pipeline.
pub fn entry_parser(program: &CompiledProgram) -> Option<&ParserDecl> {
    let order = program.cfg.pipeline_topo_order();
    let first = program.cfg.pipeline(*order.first()?).name.clone();
    let decl = program.source.pipelines.iter().find(|p| p.name == first)?;
    let pname = decl.parser.as_ref()?;
    program.source.parsers.iter().find(|p| &p.name == pname)
}

/// Serializes an input field state into a test packet: the headers the
/// entry parser would extract, in extraction order, plus an 8-byte id
/// payload.
pub fn serialize_state(
    program: &CompiledProgram,
    state: &ConcreteState,
    id: u64,
) -> Result<Packet, PacketError> {
    ParserPlan::new(program).serialize_state(&program.cfg.fields, state, id)
}

/// Serializes the given headers (by name, in order) from `state`.
pub fn serialize_headers(
    program: &CompiledProgram,
    state: &ConcreteState,
    headers: &[String],
    id: u64,
) -> Packet {
    let fields = &program.cfg.fields;
    let mut w = BitWriter::new();
    for hname in headers {
        if let Some(layout) = program.header(hname) {
            for (_, f, _) in &layout.fields {
                w.write(state.get(fields, *f));
            }
        }
    }
    let mut bytes = w.finish();
    bytes.extend_from_slice(&id.to_be_bytes());
    Packet { bytes, id }
}

/// Serializes an *output* packet: headers in deparser emit order, filtered
/// by final validity bits (what a switch's deparser does).
pub fn serialize_output(program: &CompiledProgram, state: &ConcreteState, id: u64) -> Packet {
    ParserPlan::new(program).serialize_output(&program.cfg.fields, state, id)
}

/// Parses packet bytes by executing the entry parser spec; returns the
/// reconstructed field state (extracted fields + validity bits) and the
/// payload id. Fails on a truncated packet, a malformed spec, or an
/// unevaluable scrutinee (see [`PacketError`]).
pub fn parse_packet(program: &CompiledProgram, packet: &Packet) -> Result<ConcreteState, PacketError> {
    ParserPlan::new(program).parse(&program.cfg.fields, packet)
}

/// Zeroes every field belonging to headers the entry parser would *not*
/// extract for this state. The solver's model assigns arbitrary values to
/// unconstrained fields; on the wire those headers do not exist, so both
/// reference and target must see deterministic (zero) garbage.
pub fn normalize_input(program: &CompiledProgram, state: &ConcreteState) -> ConcreteState {
    ParserPlan::new(program).normalize_input(&program.cfg.fields, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { version: 4; ihl: 4; ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; }
        header tcp { src_port: 16; dst_port: 16; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 {
            extract(ipv4);
            select (hdr.ipv4.protocol) { 6 => parse_tcp; default => accept; }
          }
          state parse_tcp { extract(tcp); accept; }
        }
        action nopa() { }
        control ig { call nopa(); }
        pipeline ingress0 { parser = main; control = ig; }
        deparser { emit(ethernet); emit(ipv4); emit(tcp); }
    "#;

    fn program() -> CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        compile(&p, &parse_rules("").unwrap()).unwrap()
    }

    fn state_with(program: &CompiledProgram, pairs: &[(&str, u128)]) -> ConcreteState {
        let fields = &program.cfg.fields;
        ConcreteState::from_pairs(pairs.iter().map(|&(n, v)| {
            let f = fields.get(n).unwrap();
            (f, Bv::new(fields.width(f), v))
        }))
    }

    #[test]
    fn extraction_follows_selects() {
        let cp = program();
        let parser = entry_parser(&cp).unwrap();
        let tcp_pkt = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0800), ("hdr.ipv4.protocol", 6)],
        );
        assert_eq!(
            extraction_order(&cp, parser, &tcp_pkt).unwrap(),
            vec!["ethernet", "ipv4", "tcp"]
        );
        let udp_pkt = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0800), ("hdr.ipv4.protocol", 17)],
        );
        assert_eq!(
            extraction_order(&cp, parser, &udp_pkt).unwrap(),
            vec!["ethernet", "ipv4"]
        );
        let arp_pkt = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        assert_eq!(
            extraction_order(&cp, parser, &arp_pkt).unwrap(),
            vec!["ethernet"]
        );
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let cp = program();
        let state = state_with(
            &cp,
            &[
                ("hdr.ethernet.dst", 0x001122334455),
                ("hdr.ethernet.src", 0xaabbccddeeff),
                ("hdr.ethernet.ether_type", 0x0800),
                ("hdr.ipv4.version", 4),
                ("hdr.ipv4.ihl", 5),
                ("hdr.ipv4.ttl", 64),
                ("hdr.ipv4.protocol", 6),
                ("hdr.ipv4.src_addr", 0x0a000001),
                ("hdr.ipv4.dst_addr", 0x0a000002),
                ("hdr.tcp.src_port", 12345),
                ("hdr.tcp.dst_port", 443),
            ],
        );
        let pkt = serialize_state(&cp, &state, 77).unwrap();
        // eth(14) + ipv4(11 bytes in this simplified layout: 4+4+8+8+32+32
        // = 88 bits) + tcp(4) + id payload(8).
        assert_eq!(pkt.len(), 14 + 11 + 4 + 8);
        assert_eq!(pkt.id, 77);

        let parsed = parse_packet(&cp, &pkt).unwrap();
        let fields = &cp.cfg.fields;
        for (name, want) in [
            ("hdr.ethernet.ether_type", 0x0800u128),
            ("hdr.ipv4.protocol", 6),
            ("hdr.tcp.dst_port", 443),
            ("hdr.ipv4.dst_addr", 0x0a000002),
            ("hdr.ethernet.$valid", 1),
            ("hdr.ipv4.$valid", 1),
            ("hdr.tcp.$valid", 1),
        ] {
            let f = fields.get(name).unwrap();
            assert_eq!(parsed.get(fields, f).val(), want, "{name}");
        }
    }

    #[test]
    fn non_ip_packet_parses_ethernet_only() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        let pkt = serialize_state(&cp, &state, 1).unwrap();
        assert_eq!(pkt.len(), 14 + 8);
        let parsed = parse_packet(&cp, &pkt).unwrap();
        let fields = &cp.cfg.fields;
        let ipv4_valid = fields.get("hdr.ipv4.$valid").unwrap();
        assert_eq!(parsed.get(fields, ipv4_valid).val(), 0);
    }

    #[test]
    fn truncated_packet_fails_parse() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0800)]);
        let mut pkt = serialize_state(&cp, &state, 1).unwrap();
        pkt.bytes.truncate(16); // mid-ipv4
        assert_eq!(parse_packet(&cp, &pkt), Err(PacketError::Truncated));
    }

    #[test]
    fn unmodeled_register_scrutinee_is_a_distinct_error() {
        // The §4 encoding interns `REG:name-POS:idx` only for cells the
        // *compiled* code references. A parser spec that scrutinizes any
        // other cell (spec drift, stale artifacts) used to vanish into a
        // silent `None`; it must name the register instead.
        let cp = program(); // fixture has no registers at all
        use meissa_lang::ast::{ParserDecl, ParserState};
        let drifted = ParserDecl {
            name: "drifted".into(),
            states: vec![ParserState {
                name: "start".into(),
                extracts: vec!["ethernet".into()],
                transition: Transition::Select {
                    scrutinee: Expr::Register("mode".into(), 1),
                    arms: vec![(SelectPattern::Exact(0), "accept".into())],
                    default: "accept".into(),
                },
            }],
        };
        let err = extraction_order(&cp, &drifted, &ConcreteState::new()).unwrap_err();
        assert_eq!(
            err,
            PacketError::UnmodeledRegister {
                register: "mode".into(),
                index: 1,
            }
        );
        assert!(err.to_string().contains("unmodeled register"));
    }

    #[test]
    fn modeled_register_scrutinee_evaluates() {
        // A register the compiled code references IS materialized, so a
        // select over it works (and reads zero from an empty state).
        let src = r#"
            header pkt { k: 8; }
            register mode[4]: 8;
            metadata meta { x: 8; }
            parser p {
              state start {
                extract(pkt);
                select (mode[1]) { 1 => more; default => accept; }
              }
              state more { accept; }
            }
            action touch() { meta.x = mode[1]; }
            control ig { call touch(); }
            pipeline ingress0 { parser = p; control = ig; }
            deparser { emit(pkt); }
        "#;
        let cp = compile(&parse_program(src).unwrap(), &parse_rules("").unwrap()).unwrap();
        let parser = entry_parser(&cp).unwrap();
        let order = extraction_order(&cp, parser, &ConcreteState::new()).unwrap();
        assert_eq!(order, vec!["pkt"]);
    }

    #[test]
    fn output_serialization_respects_validity() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let mut state = state_with(
            &cp,
            &[("hdr.ethernet.ether_type", 0x0806), ("hdr.ethernet.dst", 42)],
        );
        let ev = fields.get("hdr.ethernet.$valid").unwrap();
        state.set(fields, ev, Bv::new(1, 1));
        let pkt = serialize_output(&cp, &state, 9);
        assert_eq!(pkt.len(), 14 + 8, "only ethernet emitted");
    }

    #[test]
    fn normalize_zeroes_unextracted_headers() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let mut state = state_with(
            &cp,
            &[
                ("hdr.ethernet.ether_type", 0x0806), // non-IP
                ("hdr.ipv4.dst_addr", 0xdeadbeef),   // solver garbage
            ],
        );
        let tcp_valid = fields.get("hdr.tcp.$valid").unwrap();
        state.set(fields, tcp_valid, Bv::new(1, 1)); // model garbage
        let norm = normalize_input(&cp, &state);
        let dst = fields.get("hdr.ipv4.dst_addr").unwrap();
        assert_eq!(norm.get(fields, dst).val(), 0);
        assert_eq!(norm.get(fields, tcp_valid).val(), 0);
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        assert_eq!(norm.get(fields, et).val(), 0x0806, "extracted field kept");
    }

    #[test]
    fn payload_id_roundtrips() {
        let cp = program();
        let state = state_with(&cp, &[("hdr.ethernet.ether_type", 0x0806)]);
        let pkt = serialize_state(&cp, &state, 0xdead_beef_1234_5678).unwrap();
        let tail = &pkt.bytes[pkt.bytes.len() - 8..];
        assert_eq!(u64::from_be_bytes(tail.try_into().unwrap()), 0xdead_beef_1234_5678);
    }
}
