//! Edge-case tests for the wire format and switch target: zero-length
//! payloads, maximal headers, deparser reordering after encap/decap, and
//! the drop conventions.

use meissa_dataplane::{parse_packet, serialize_output, serialize_state, Packet, SwitchTarget};
use meissa_ir::ConcreteState;
use meissa_lang::{compile, parse_program, parse_rules, CompiledProgram};
use meissa_num::Bv;

fn program(src: &str, rules: &str) -> CompiledProgram {
    compile(&parse_program(src).unwrap(), &parse_rules(rules).unwrap()).unwrap()
}

const DECAP: &str = r#"
    header outer { kind: 8; len: 8; }
    header tunnel { id: 16; }
    header inner { payload_kind: 8; }
    metadata meta { drop: 1; decapped: 1; }
    parser p {
      state start {
        extract(outer);
        select (hdr.outer.kind) {
          7 => parse_tunnel;
          default => accept;
        }
      }
      state parse_tunnel {
        extract(tunnel);
        extract(inner);
        accept;
      }
    }
    action decap() {
      hdr.outer.kind = hdr.inner.payload_kind;
      hdr.tunnel.setInvalid();
      hdr.inner.setInvalid();
      meta.decapped = 1;
    }
    control c {
      if (hdr.tunnel.isValid()) { call decap(); }
    }
    pipeline main { parser = p; control = c; }
    deparser { emit(outer); emit(tunnel); emit(inner); }
"#;

fn state_with(cp: &CompiledProgram, pairs: &[(&str, u128)]) -> ConcreteState {
    let fields = &cp.cfg.fields;
    ConcreteState::from_pairs(pairs.iter().map(|&(n, v)| {
        let f = fields.get(n).unwrap();
        (f, Bv::new(fields.width(f), v))
    }))
}

#[test]
fn decap_shrinks_the_output_packet() {
    let cp = program(DECAP, "");
    let input = state_with(
        &cp,
        &[
            ("hdr.outer.kind", 7),
            ("hdr.outer.len", 99),
            ("hdr.tunnel.id", 0xbeef),
            ("hdr.inner.payload_kind", 3),
        ],
    );
    let pkt = serialize_state(&cp, &input, 5).unwrap();
    // outer(2) + tunnel(2) + inner(1) + id payload(8).
    assert_eq!(pkt.len(), 13);
    let out = SwitchTarget::new(&cp).inject(&pkt);
    let emitted = out.packet.expect("forwarded");
    // After decap only outer remains: 2 + 8.
    assert_eq!(emitted.len(), 10);
    // And the outer kind now carries the inner payload kind.
    assert_eq!(emitted.bytes[0], 3);
}

#[test]
fn non_tunnel_traffic_passes_unchanged() {
    let cp = program(DECAP, "");
    let input = state_with(&cp, &[("hdr.outer.kind", 1), ("hdr.outer.len", 42)]);
    let pkt = serialize_state(&cp, &input, 9).unwrap();
    let out = SwitchTarget::new(&cp).inject(&pkt);
    let emitted = out.packet.expect("forwarded");
    assert_eq!(emitted.bytes, pkt.bytes, "untouched on the non-tunnel path");
}

#[test]
fn empty_packet_is_dropped_not_panicking() {
    let cp = program(DECAP, "");
    let out = SwitchTarget::new(&cp).inject(&Packet {
        bytes: Vec::new(),
        id: 0,
    });
    assert!(out.packet.is_none());
}

#[test]
fn oversized_payload_is_preserved() {
    let cp = program(DECAP, "");
    let input = state_with(&cp, &[("hdr.outer.kind", 1)]);
    let mut pkt = serialize_state(&cp, &input, 1).unwrap();
    pkt.bytes.extend(std::iter::repeat_n(0xab, 64)); // trailing payload
    let parsed = parse_packet(&cp, &pkt).expect("long packets parse");
    let fields = &cp.cfg.fields;
    let kind = fields.get("hdr.outer.kind").unwrap();
    assert_eq!(parsed.get(fields, kind).val(), 1);
}

#[test]
fn output_serialization_orders_by_deparser_not_parse_order() {
    // A program whose deparser emits headers in a different order than the
    // parser extracted them: the output must follow the deparser.
    let src = r#"
        header a { x: 8; }
        header b { y: 8; }
        metadata meta { drop: 1; }
        parser p { state start { extract(a); extract(b); accept; } }
        control c { }
        pipeline main { parser = p; control = c; }
        deparser { emit(b); emit(a); }
    "#;
    let cp = program(src, "");
    let input = state_with(&cp, &[("hdr.a.x", 0x11), ("hdr.b.y", 0x22)]);
    let fields = &cp.cfg.fields;
    let mut state = input.clone();
    for h in ["a", "b"] {
        let v = fields.get(&format!("hdr.{h}.$valid")).unwrap();
        state.set(fields, v, Bv::new(1, 1));
    }
    let out = serialize_output(&cp, &state, 1);
    assert_eq!(out.bytes[0], 0x22, "b first per the deparser");
    assert_eq!(out.bytes[1], 0x11);
}

#[test]
fn drop_flag_and_undefined_branch_both_yield_absence() {
    let src = r#"
        header pkt { k: 8; }
        metadata meta { drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        action drop_() { meta.drop = 1; }
        action keep() { }
        table t {
          key = { hdr.pkt.k: exact; }
          actions = { keep; drop_; }
          default_action = drop_();
        }
        control c { apply(t); }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
    "#;
    let cp = program(src, "rules t { 1 => keep(); }");
    let t = SwitchTarget::new(&cp);
    let keep = serialize_state(&cp, &state_with(&cp, &[("hdr.pkt.k", 1)]), 1).unwrap();
    assert!(t.inject(&keep).packet.is_some());
    let dropped = serialize_state(&cp, &state_with(&cp, &[("hdr.pkt.k", 2)]), 2).unwrap();
    assert!(t.inject(&dropped).packet.is_none(), "default action drops");
}
