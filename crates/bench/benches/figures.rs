//! Benches mirroring the paper's figures at CI-friendly scale, on the
//! in-repo `meissa_testkit::bench` timer.
//!
//! The report binaries (`cargo run --release -p meissa-bench --bin fig9` …)
//! regenerate each figure at full scale; these benches track the same
//! comparisons (Meissa vs baselines, summary vs no-summary, program and
//! rule-set sweeps, the Fig. 7 redundancy-elimination microbench, and the
//! Appendix A pipeline-count scaling) with small inputs so regressions show
//! up in routine `cargo bench` runs.

use meissa_bench::{measure, meissa_config, no_summary_config};
use meissa_core::exec::{generate_templates, ExecConfig};
use meissa_core::summary::summarize;
use meissa_core::{Meissa, MeissaConfig, SolveSession};
use meissa_suite::gw::{gw, GwScale};
use meissa_testkit::bench::{black_box, Suite};

/// Fig. 7 microbench: intra-pipeline redundancy elimination on the
/// two-chained-tables pipeline (n rules each: n² possible, n valid).
fn fig7_redundancy() {
    use meissa_ir::{AExp, BExp, CfgBuilder, Stmt};
    use meissa_num::Bv;

    fn fig7_cfg(n: u128) -> meissa_ir::Cfg {
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        let port = b.fields_mut().intern("egressPort", 9);
        let mac = b.fields_mut().intern("dstMAC", 48);
        b.nop();
        b.begin_pipeline("ppl0");
        for (key, out, width_out, outf) in
            [(dst, port, 9u16, 1u128), (port, mac, 48, 0x00aa00000000)]
        {
            let base = b.frontier();
            let mut arms = Vec::new();
            for i in 0..n {
                let kw = b.fields().width(key);
                b.set_frontier(base.clone());
                b.stmt(Stmt::Assume(BExp::eq(
                    AExp::Field(key),
                    AExp::Const(Bv::new(kw, 1 + i)),
                )));
                b.stmt(Stmt::Assign(
                    out,
                    AExp::Const(Bv::new(width_out, outf + i)),
                ));
                arms.push(b.frontier());
            }
            b.set_frontier(Vec::new());
            b.merge_frontiers(arms);
            b.nop();
        }
        b.end_pipeline();
        b.finish()
    }

    let mut group = Suite::new("fig7_redundancy").samples(10);
    for n in [10u128, 20] {
        let cfg = fig7_cfg(n);
        group.bench(&format!("summarize/{n}"), || {
            let mut c = cfg.clone();
            let mut session = SolveSession::new();
            black_box(summarize(&mut c, &mut session, &ExecConfig::default()));
        });
        group.bench(&format!("naive_dfs/{n}"), || {
            let mut session = SolveSession::new();
            black_box(generate_templates(&cfg, &mut session, &ExecConfig::default()));
        });
    }
}

/// Fig. 9 at small scale: Meissa vs the two testing baselines on Router.
fn fig9_scalability() {
    let mut group = Suite::new("fig9_scalability").samples(10);
    let w = meissa_suite::router(6, 7);
    group.bench("meissa", || {
        black_box(measure(&w, meissa_config(None)));
    });
    group.bench("p4pktgen_like", || {
        black_box(
            Meissa {
                config: MeissaConfig {
                    code_summary: false,
                    incremental: false,
                    ..MeissaConfig::default()
                },
            }
            .run(&w.program),
        );
    });
    group.bench("gauntlet_like", || {
        black_box(
            Meissa {
                config: MeissaConfig {
                    code_summary: false,
                    early_termination: false,
                    incremental: false,
                    ..MeissaConfig::default()
                },
            }
            .run(&w.program),
        );
    });
}

/// Fig. 11 at small scale: summary on/off across gw levels.
fn fig11_summary() {
    let mut group = Suite::new("fig11_summary").samples(10);
    for level in [2u8, 3] {
        let w = gw(level, GwScale { eips: 4 });
        group.bench(&format!("with_summary/{level}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
        group.bench(&format!("without_summary/{level}"), || {
            black_box(measure(&w, no_summary_config(None)));
        });
    }
}

/// Fig. 12 at small scale: rule-set sweep on gw-2.
fn fig12_rulesets() {
    let mut group = Suite::new("fig12_rulesets").samples(10);
    for eips in [4usize, 8] {
        let w = gw(2, GwScale { eips });
        group.bench(&format!("with_summary/{eips}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
        group.bench(&format!("without_summary/{eips}"), || {
            black_box(measure(&w, no_summary_config(None)));
        });
    }
}

/// Appendix A: pipeline-count scaling (k = 1, 2, 4 pipes at fixed rules).
fn appendix_a_complexity() {
    let mut group = Suite::new("appendix_a_complexity").samples(10);
    for level in [1u8, 2, 3] {
        let w = gw(level, GwScale { eips: 4 });
        group.bench(&format!("meissa/{level}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
    }
}

/// Ablation: §7 grouped pre-conditions vs the ungrouped Algorithm 2
/// (the design choice DESIGN.md §5 calls out).
fn ablation_grouped_summary() {
    let mut group = Suite::new("ablation_grouped_summary").samples(10);
    let w = gw(3, GwScale { eips: 8 });
    group.bench("grouped", || {
        black_box(measure(&w, meissa_config(None)));
    });
    group.bench("ungrouped", || {
        let cfg = MeissaConfig {
            grouped_summary: false,
            ..MeissaConfig::default()
        };
        black_box(measure(&w, cfg));
    });
}

fn main() {
    fig7_redundancy();
    fig9_scalability();
    fig11_summary();
    fig12_rulesets();
    appendix_a_complexity();
    ablation_grouped_summary();
}
