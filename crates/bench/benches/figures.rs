//! Benches mirroring the paper's figures at CI-friendly scale, on the
//! in-repo `meissa_testkit::bench` timer.
//!
//! The report binaries (`cargo run --release -p meissa-bench --bin fig9` …)
//! regenerate each figure at full scale; these benches track the same
//! comparisons (Meissa vs baselines, summary vs no-summary, program and
//! rule-set sweeps, the Fig. 7 redundancy-elimination microbench, and the
//! Appendix A pipeline-count scaling) with small inputs so regressions show
//! up in routine `cargo bench` runs.

use meissa_bench::{measure, meissa_config, no_summary_config};
use meissa_core::exec::{generate_templates, ExecConfig};
use meissa_core::summary::summarize;
use meissa_core::{BackendKind, Meissa, MeissaConfig, SolveSession};
use meissa_suite::gw::{gw, GwScale};
use meissa_testkit::bench::{black_box, Suite};
use meissa_testkit::obs;

/// Runs one figure with tracing routed to `results/trace_<fig>.jsonl`, so
/// every full bench run leaves one inspectable trace per figure
/// (`meissa-trace results/trace_fig11.jsonl`). Tracing is switched off
/// again before returning so figures never observe each other's sink.
fn traced(fig: &str, f: impl FnOnce()) {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    obs::trace_to(format!("{repo_root}/results/trace_{fig}.jsonl"));
    f();
    let _ = obs::flush_trace();
    obs::trace_off();
}

/// Best-of-3 to damp scheduler noise; timing claims should not hinge on
/// one unlucky sample.
fn best_of_3(w: &meissa_suite::Workload, config: &MeissaConfig) -> meissa_bench::EngineRun {
    let mut best: Option<meissa_bench::EngineRun> = None;
    for _ in 0..3 {
        let run = meissa_bench::measure(w, config.clone());
        if best.as_ref().is_none_or(|b| run.secs < b.secs) {
            best = Some(run);
        }
    }
    best.unwrap()
}

/// Fig. 7 microbench: intra-pipeline redundancy elimination on the
/// two-chained-tables pipeline (n rules each: n² possible, n valid).
fn fig7_redundancy() {
    use meissa_ir::{AExp, BExp, CfgBuilder, Stmt};
    use meissa_num::Bv;

    fn fig7_cfg(n: u128) -> meissa_ir::Cfg {
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        let port = b.fields_mut().intern("egressPort", 9);
        let mac = b.fields_mut().intern("dstMAC", 48);
        b.nop();
        b.begin_pipeline("ppl0");
        for (key, out, width_out, outf) in
            [(dst, port, 9u16, 1u128), (port, mac, 48, 0x00aa00000000)]
        {
            let base = b.frontier();
            let mut arms = Vec::new();
            for i in 0..n {
                let kw = b.fields().width(key);
                b.set_frontier(base.clone());
                b.stmt(Stmt::Assume(BExp::eq(
                    AExp::Field(key),
                    AExp::Const(Bv::new(kw, 1 + i)),
                )));
                b.stmt(Stmt::Assign(
                    out,
                    AExp::Const(Bv::new(width_out, outf + i)),
                ));
                arms.push(b.frontier());
            }
            b.set_frontier(Vec::new());
            b.merge_frontiers(arms);
            b.nop();
        }
        b.end_pipeline();
        b.finish()
    }

    let mut group = Suite::new("fig7_redundancy").samples(10);
    for n in [10u128, 20] {
        let cfg = fig7_cfg(n);
        group.bench(&format!("summarize/{n}"), || {
            let mut c = cfg.clone();
            let mut session = SolveSession::new();
            black_box(summarize(&mut c, &mut session, &ExecConfig::default()));
        });
        group.bench(&format!("naive_dfs/{n}"), || {
            let mut session = SolveSession::new();
            black_box(generate_templates(&cfg, &mut session, &ExecConfig::default()));
        });
    }
}

/// Fig. 9 at small scale: Meissa vs the two testing baselines on Router.
fn fig9_scalability() {
    let mut group = Suite::new("fig9_scalability").samples(10);
    let w = meissa_suite::router(6, 7);
    group.bench("meissa", || {
        black_box(measure(&w, meissa_config(None)));
    });
    group.bench("p4pktgen_like", || {
        black_box(
            Meissa {
                config: MeissaConfig {
                    code_summary: false,
                    incremental: false,
                    ..MeissaConfig::default()
                },
            }
            .run(&w.program),
        );
    });
    group.bench("gauntlet_like", || {
        black_box(
            Meissa {
                config: MeissaConfig {
                    code_summary: false,
                    early_termination: false,
                    incremental: false,
                    ..MeissaConfig::default()
                },
            }
            .run(&w.program),
        );
    });
}

/// Fig. 11 at small scale: summary on/off across gw levels.
fn fig11_summary() {
    let mut group = Suite::new("fig11_summary").samples(10);
    for level in [2u8, 3] {
        let w = gw(level, GwScale { eips: 4 });
        group.bench(&format!("with_summary/{level}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
        group.bench(&format!("without_summary/{level}"), || {
            black_box(measure(&w, no_summary_config(None)));
        });
    }
}

/// Fig. 12 at small scale: rule-set sweep on gw-2.
fn fig12_rulesets() {
    let mut group = Suite::new("fig12_rulesets").samples(10);
    for eips in [4usize, 8] {
        let w = gw(2, GwScale { eips });
        group.bench(&format!("with_summary/{eips}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
        group.bench(&format!("without_summary/{eips}"), || {
            black_box(measure(&w, no_summary_config(None)));
        });
    }
}

/// Appendix A: pipeline-count scaling (k = 1, 2, 4 pipes at fixed rules).
fn appendix_a_complexity() {
    let mut group = Suite::new("appendix_a_complexity").samples(10);
    for level in [1u8, 2, 3] {
        let w = gw(level, GwScale { eips: 4 });
        group.bench(&format!("meissa/{level}"), || {
            black_box(measure(&w, meissa_config(None)));
        });
    }
}

/// Ablation: §7 grouped pre-conditions vs the ungrouped Algorithm 2
/// (the design choice DESIGN.md §5 calls out).
fn ablation_grouped_summary() {
    let mut group = Suite::new("ablation_grouped_summary").samples(10);
    let w = gw(3, GwScale { eips: 8 });
    group.bench("grouped", || {
        black_box(measure(&w, meissa_config(None)));
    });
    group.bench("ungrouped", || {
        let cfg = MeissaConfig {
            grouped_summary: false,
            ..MeissaConfig::default()
        };
        black_box(measure(&w, cfg));
    });
}

/// Thread-scaling series for the work-stealing explorer: Fig. 11-style
/// program sizes × {1, 2, 4, 8} threads. Runs the no-summary engine — there
/// the parallel DFS carries the entire search, so wall-clock scaling
/// measures the explorer itself — plus the summary engine on the largest
/// program as the end-to-end number. Writes the human-readable table to
/// `results/parallel_scaling.txt` and machine-readable rows to
/// `BENCH_parallel.json` at the repo root.
fn parallel_scaling() {
    use meissa_testkit::json::{Json, ToJson};

    const THREADS: [usize; 4] = [1, 2, 4, 8];
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = String::from(
        "Parallel scaling: work-stealing DFS across thread counts\n\
         (best of 3; speedup is vs the threads=1 run of the same row)\n\n\
         Note: this container exposes a single CPU. The engine right-sizes\n\
         its worker pool to the available parallelism (and to the possible-\n\
         path mass below the exploration root), so requesting more threads\n\
         than cores now degenerates to the sequential engine instead of\n\
         paying fork/steal/merge overhead for no concurrency — the speedup\n\
         column should sit near 1.00x for every row on this host. On a\n\
         multi-core host real thread-level scaling appears, stacked on the\n\
         workers' periodic solver retirement (which keeps each SAT clause\n\
         database small).\n\n",
    );
    table.push_str(&format!(
        "{:<24} {:>8} {:>10} {:>12} {:>12} {:>10} {:>9}\n",
        "program/engine", "threads", "wall ms", "smt_checks", "sat_calls", "templates", "speedup"
    ));
    let mut rows: Vec<Json> = Vec::new();

    let series: [(String, meissa_suite::Workload, MeissaConfig); 3] = {
        let small = gw(3, GwScale { eips: 8 });
        let large = gw(3, GwScale { eips: 32 });
        let large2 = gw(3, GwScale { eips: 8 });
        let dfs = MeissaConfig {
            code_summary: false,
            ..MeissaConfig::default()
        };
        let full = MeissaConfig::default();
        [
            (format!("{}-r8/dfs", small.name), small, dfs.clone()),
            (format!("{}-r32/dfs", large.name), large, dfs),
            (format!("{}-r8/summary", large2.name), large2, full),
        ]
    };

    for (name, w, config) in series {
        let mut base_ms = 0.0f64;
        let mut base_templates = 0usize;
        for threads in THREADS {
            let run = best_of_3(&w, &MeissaConfig { threads, ..config.clone() });
            let ms = run.secs * 1e3;
            if threads == 1 {
                base_ms = ms;
                base_templates = run.templates;
            } else {
                assert_eq!(
                    run.templates, base_templates,
                    "{name}: template count must be thread-count invariant"
                );
            }
            let speedup = base_ms / ms;
            table.push_str(&format!(
                "{name:<24} {threads:>8} {ms:>10.1} {:>12} {:>12} {:>10} {speedup:>8.2}x\n",
                run.smt_checks, run.sat_engine_calls, run.templates
            ));
            rows.push(Json::Obj(vec![
                ("program".into(), name.as_str().to_json()),
                ("threads".into(), (threads as u64).to_json()),
                // The host's core count rides along so a reader (or the CI
                // scaling guard) can tell a genuine scaling regression from
                // a row recorded on a host with fewer cores than threads.
                ("cores".into(), (cores as u64).to_json()),
                ("wall_ms".into(), ms.to_json()),
                ("smt_checks".into(), run.smt_checks.to_json()),
                ("sat_engine_calls".into(), run.sat_engine_calls.to_json()),
                ("batched_probes".into(), run.batched_probes.to_json()),
                ("arm_batches".into(), run.arm_batches.to_json()),
                ("templates".into(), (run.templates as u64).to_json()),
                ("speedup_vs_1".into(), speedup.to_json()),
            ]));
            // Host-gated scaling floor: only meaningful when the host can
            // actually run the requested workers concurrently.
            if name.ends_with("-r32/dfs") && cores >= threads {
                let floor = match threads {
                    4 => Some(2.0),
                    8 => Some(3.0),
                    _ => None,
                };
                if let Some(f) = floor {
                    assert!(
                        speedup >= f,
                        "{name}: speedup {speedup:.2}x at {threads} threads \
                         below the {f:.1}x floor on a {cores}-core host"
                    );
                }
            }
        }
    }

    print!("{table}");
    std::fs::write(format!("{repo_root}/results/parallel_scaling.txt"), &table)
        .expect("write results/parallel_scaling.txt");
    let json = Json::Obj(vec![
        ("bench".into(), "parallel_scaling".to_json()),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(
        format!("{repo_root}/BENCH_parallel.json"),
        json.to_text() + "\n",
    )
    .expect("write BENCH_parallel.json");
}

/// Wire-driver throughput: the gw-3 suite streamed through the loopback
/// switch agent, swept over framing {json, bin} × connections {1, 4},
/// transport faults off. Reports replay-phase cases/sec (the elapsed
/// clock starts after planning — the solver's cost is benched separately)
/// plus per-case latency percentiles, then runs a 5-second sustained soak
/// in binary framing with the JSONL trace sink attached so `meissa-trace`
/// can reconcile the `wire.*` spans. Writes
/// `results/netdriver_loopback.txt`, `results/trace_netdriver_soak.jsonl`,
/// and `BENCH_netdriver.json`.
fn netdriver_loopback() {
    use meissa_dataplane::SwitchTarget;
    use meissa_netdriver::{Agent, Framing, SoakConfig, WireDriver};
    use meissa_testkit::json::{Json, ToJson};

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let w = gw(3, GwScale { eips: 8 });
    let program = &w.program;

    let mut table = String::from(
        "Wire driver loopback throughput: gw-3 (8 EIPs) through the\n\
         switch-agent daemon on 127.0.0.1, transport faults off, swept\n\
         over wire framing (JSON vs length-prefixed binary) and client\n\
         connections. cases/sec covers the replay phase only — planning\n\
         runs before the clock starts.\n\
         (the live agent also serves Prometheus metrics over its Metrics\n\
         RPC — `meissa_netdriver::fetch_metrics(addr)`, demonstrated by\n\
         examples/remote_switch.rs)\n\n",
    );
    table.push_str(&format!(
        "{:<8} {:<12} {:>8} {:>10} {:>12} {:>10} {:>10}\n",
        "framing", "connections", "cases", "wall ms", "cases/sec", "p50 µs", "p99 µs"
    ));
    let mut rows: Vec<Json> = Vec::new();

    for framing in [Framing::Json, Framing::Bin] {
        for connections in [1usize, 4] {
            let agent =
                Agent::spawn(Some(SwitchTarget::new(program)), None).expect("spawn agent");
            // Best-of-3 on the replay clock, with 10 packets per template
            // so each run spans a few thousand cases — short loopback runs
            // are tens of milliseconds and scheduler noise would otherwise
            // dominate the rate.
            let mut best: Option<meissa_driver::TestReport> = None;
            for _ in 0..3 {
                let mut run = Meissa::new().run(program);
                let report = WireDriver::new(program, agent.addr())
                    .with_framing(framing)
                    .with_connections(connections)
                    .with_packets_per_template(10)
                    .run(&mut run)
                    .expect("wire driver run");
                assert_eq!(report.failed(), 0, "bench target is faithful: {report}");
                if best.as_ref().is_none_or(|b| report.elapsed < b.elapsed) {
                    best = Some(report);
                }
            }
            let report = best.unwrap();
            agent.shutdown();

            let cases = report.cases.len() - report.skipped();
            let wall_ms = report.elapsed.as_secs_f64() * 1e3;
            let rate = report.cases_per_sec().unwrap_or(0.0);
            let p50 = report.latency_p50().unwrap_or_default().as_secs_f64() * 1e6;
            let p99 = report.latency_p99().unwrap_or_default().as_secs_f64() * 1e6;
            let label = framing.label();
            table.push_str(&format!(
                "{label:<8} {connections:<12} {cases:>8} {wall_ms:>10.1} {rate:>12.0} \
                 {p50:>10.1} {p99:>10.1}\n"
            ));
            rows.push(Json::Obj(vec![
                ("framing".into(), label.to_json()),
                ("connections".into(), (connections as u64).to_json()),
                ("cases".into(), (cases as u64).to_json()),
                ("wall_ms".into(), wall_ms.to_json()),
                ("cases_per_sec".into(), rate.to_json()),
                ("latency_p50_us".into(), p50.to_json()),
                ("latency_p99_us".into(), p99.to_json()),
            ]));
        }
    }

    // Sustained-soak smoke: 5 s of wall-clock replay in binary framing
    // with the trace sink attached — the `wire.*` spans land in a JSONL
    // file that `scripts/ci.sh` reconciles with meissa-trace.
    obs::trace_to(format!("{repo_root}/results/trace_netdriver_soak.jsonl"));
    let agent = Agent::spawn(Some(SwitchTarget::new(program)), None).expect("spawn agent");
    let mut run = Meissa::new().run(program);
    let stats = WireDriver::new(program, agent.addr())
        .with_framing(Framing::Bin)
        .soak(
            &mut run,
            SoakConfig {
                duration: std::time::Duration::from_secs(5),
                fuzz: false,
                seed: 0xF00D,
            },
        )
        .expect("soak run");
    agent.shutdown();
    obs::trace_off();
    assert_eq!(stats.divergent, 0, "faithful soak diverged: {stats}");
    let soak_rate = stats.cases_per_sec().unwrap_or(0.0);
    table.push_str(&format!(
        "\nsoak (bin, 1 conn, {:.1} s): {} cases = {soak_rate:.0}/s sustained, \
         {} retried, {} divergent\n",
        stats.elapsed.as_secs_f64(),
        stats.cases,
        stats.retried,
        stats.divergent,
    ));
    rows.push(Json::Obj(vec![
        ("framing".into(), "bin".to_json()),
        ("mode".into(), "soak".to_json()),
        ("connections".into(), 1u64.to_json()),
        ("cases".into(), stats.cases.to_json()),
        ("wall_ms".into(), (stats.elapsed.as_secs_f64() * 1e3).to_json()),
        ("cases_per_sec".into(), soak_rate.to_json()),
        ("divergent".into(), stats.divergent.to_json()),
    ]));

    print!("{table}");
    std::fs::write(format!("{repo_root}/results/netdriver_loopback.txt"), &table)
        .expect("write results/netdriver_loopback.txt");
    let json = Json::Obj(vec![
        ("bench".into(), "netdriver_loopback".to_json()),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(
        format!("{repo_root}/BENCH_netdriver.json"),
        json.to_text() + "\n",
    )
    .expect("write BENCH_netdriver.json");
}

/// CI throughput guard: the gw-3 suite through the loopback agent in
/// binary framing at 4 connections must sustain at least 20k cases/sec
/// (replay phase, best-of-3) — the regression tripwire for the binary
/// hot-path framing and the pipelined inject/collect stages. The floor
/// was set from a single-core host (~27k measured); hosts under memory or
/// CPU pressure can skip via `MEISSA_SKIP_NETDRIVER_GUARD=1`, mirroring
/// the scaling guard's host gating. Run via
/// `MEISSA_BENCH_NETDRIVER=1 cargo bench -p meissa-bench`.
fn netdriver_guard() {
    use meissa_dataplane::SwitchTarget;
    use meissa_netdriver::{Agent, Framing, WireDriver};

    if std::env::var_os("MEISSA_SKIP_NETDRIVER_GUARD").is_some() {
        println!("netdriver guard skipped: MEISSA_SKIP_NETDRIVER_GUARD set");
        return;
    }
    const FLOOR: f64 = 20_000.0;
    let w = gw(3, GwScale { eips: 8 });
    let program = &w.program;
    let agent = Agent::spawn(Some(SwitchTarget::new(program)), None).expect("spawn agent");
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut run = Meissa::new().run(program);
        // 10 packets per template stretches the run to a few thousand
        // cases so steady-state throughput dominates scheduler jitter.
        let report = WireDriver::new(program, agent.addr())
            .with_framing(Framing::Bin)
            .with_connections(4)
            .with_packets_per_template(10)
            .run(&mut run)
            .expect("wire driver run");
        assert_eq!(report.failed(), 0, "guard target is faithful: {report}");
        best = best.max(report.cases_per_sec().unwrap_or(0.0));
    }
    agent.shutdown();
    assert!(
        best >= FLOOR,
        "netdriver guard: binary-framing loopback throughput {best:.0} cases/s \
         below the {FLOOR:.0} floor at 4 connections"
    );
    println!("netdriver guard OK: {best:.0} cases/s (bin, 4 connections)");
}

/// Median of a small sample set. Overhead comparisons must not hinge on
/// one scheduler hiccup in either series; the median is robust where
/// best-of-N systematically favours whichever series got more attempts
/// near the machine's floor.
fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Overheads below this are indistinguishable from run-to-run noise on a
/// shared host. Any *negative* reading is noise by definition — tracing
/// cannot speed the engine up — so the report keeps the signed value but
/// flags everything at or below the floor instead of presenting jitter
/// as a real effect (a previous revision recorded a −3.8%/−9.0%
/// "overhead" this way).
const OBS_NOISE_FLOOR_PCT: f64 = 2.0;

/// Tracing overhead: gw-3 with the 32-EIP rule set (the
/// `BENCH_parallel.json` large row) run with observability off and with
/// a live JSONL trace sink, at 1 and 4 threads. Five off/on pairs,
/// *interleaved* so slow machine drift hits both series alike, reduced
/// by median; overheads inside the ±2% noise floor are flagged as such.
/// The overhead column is what the §7 "guaranteed cheap when off /
/// bounded when on" claim rests on. Writes `results/obs_overhead.txt`
/// and `BENCH_obs.json`.
fn obs_overhead() {
    use meissa_testkit::json::{Json, ToJson};

    const PAIRS: usize = 5;
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let w = gw(3, GwScale { eips: 32 });
    let dfs = MeissaConfig {
        code_summary: false,
        ..MeissaConfig::default()
    };

    let mut table = String::from(
        "Tracing overhead: gw-3 (32 EIPs), work-stealing DFS engine,\n\
         observability off vs MEISSA_TRACE-style JSONL sink on\n\
         (median of 5 interleaved off/on pairs; readings at or below the\n\
         +2% floor -- negatives included -- are measurement noise)\n\n",
    );
    table.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>16}\n",
        "threads", "off ms", "trace ms", "overhead"
    ));
    let mut rows: Vec<Json> = Vec::new();

    for threads in [1usize, 4] {
        let config = MeissaConfig {
            threads,
            ..dfs.clone()
        };
        let trace_path = format!("{repo_root}/results/trace_obs_overhead_t{threads}.jsonl");
        let mut off_ms: Vec<f64> = Vec::new();
        let mut on_ms: Vec<f64> = Vec::new();
        let mut checked = false;
        for _ in 0..PAIRS {
            obs::trace_off();
            let off = meissa_bench::measure(&w, config.clone());
            obs::trace_to(trace_path.clone());
            let on = meissa_bench::measure(&w, config.clone());
            let _ = obs::flush_trace();
            obs::trace_off();
            if !checked {
                assert_eq!(
                    off.templates, on.templates,
                    "tracing must not change engine results"
                );
                assert_eq!(
                    off.smt_checks, on.smt_checks,
                    "tracing must not change solver counters"
                );
                checked = true;
            }
            off_ms.push(off.secs * 1e3);
            on_ms.push(on.secs * 1e3);
        }
        let off_med = median_ms(&mut off_ms);
        let on_med = median_ms(&mut on_ms);
        let overhead_pct = (on_med / off_med - 1.0) * 100.0;
        // Negative readings are noise however large: the sink only adds
        // work, so a faster traced run means the machine moved under us.
        let within_noise = overhead_pct <= OBS_NOISE_FLOOR_PCT;
        let label = if within_noise {
            format!("{overhead_pct:>+7.1}% (noise)")
        } else {
            format!("{overhead_pct:>+7.1}%")
        };
        table.push_str(&format!(
            "{threads:<10} {off_med:>12.1} {on_med:>12.1} {label:>16}\n"
        ));
        rows.push(Json::Obj(vec![
            ("program".into(), "gw-3-r32/dfs".to_json()),
            ("threads".into(), (threads as u64).to_json()),
            ("pairs".into(), (PAIRS as u64).to_json()),
            ("wall_ms_obs_off".into(), off_med.to_json()),
            ("wall_ms_trace_on".into(), on_med.to_json()),
            ("overhead_pct".into(), overhead_pct.to_json()),
            ("noise_floor_pct".into(), OBS_NOISE_FLOOR_PCT.to_json()),
            ("within_noise_floor".into(), within_noise.to_json()),
        ]));
    }

    print!("{table}");
    std::fs::write(format!("{repo_root}/results/obs_overhead.txt"), &table)
        .expect("write results/obs_overhead.txt");
    let json = Json::Obj(vec![
        ("bench".into(), "obs_overhead".to_json()),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(format!("{repo_root}/BENCH_obs.json"), json.to_text() + "\n")
        .expect("write BENCH_obs.json");
}

/// Predicate-backend routing: gw-3 with the 32-EIP rule set, DFS engine at
/// one thread, run once per backend. `smt` sends every cache-miss probe to
/// the incremental solver; `auto` classifies match-field-only constraint
/// sets and answers them on the hermetic BDD engine instead, leaving only
/// the rest to SAT. Output (`smt_checks`, templates) must be identical —
/// only where the verdicts come from moves. Writes
/// `results/backend_routing.txt` and `BENCH_backend.json`.
fn backend_routing() {
    use meissa_testkit::json::{Json, ToJson};

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let w = gw(3, GwScale { eips: 32 });
    let dfs = MeissaConfig {
        code_summary: false,
        threads: 1,
        ..MeissaConfig::default()
    };

    let mut table = String::from(
        "Predicate-backend routing: gw-3 (32 EIPs), DFS engine, 1 thread\n\
         (best of 3; MEISSA_BACKEND=smt vs auto — the router sends\n\
         match-field-only probes to the BDD engine, the rest to SAT)\n\n",
    );
    table.push_str(&format!(
        "{:<8} {:>10} {:>12} {:>10} {:>12} {:>12} {:>10}\n",
        "backend", "wall ms", "smt_checks", "sat_calls", "routed_bdd", "bdd_probes", "templates"
    ));
    let mut rows: Vec<Json> = Vec::new();
    let mut runs = Vec::new();

    for kind in [BackendKind::Smt, BackendKind::Auto] {
        let run = best_of_3(&w, &MeissaConfig { backend: kind, ..dfs.clone() });
        table.push_str(&format!(
            "{:<8} {:>10.1} {:>12} {:>10} {:>12} {:>12} {:>10}\n",
            format!("{kind:?}").to_lowercase(),
            run.secs * 1e3,
            run.smt_checks,
            run.sat_engine_calls,
            run.backend_routed_bdd,
            run.bdd_probes,
            run.templates,
        ));
        rows.push(Json::Obj(vec![
            ("program".into(), "gw-3-r32/dfs".to_json()),
            (
                "backend".into(),
                format!("{kind:?}").to_lowercase().to_json(),
            ),
            ("wall_ms".into(), (run.secs * 1e3).to_json()),
            ("smt_checks".into(), run.smt_checks.to_json()),
            ("sat_engine_calls".into(), run.sat_engine_calls.to_json()),
            ("backend_routed_smt".into(), run.backend_routed_smt.to_json()),
            ("backend_routed_bdd".into(), run.backend_routed_bdd.to_json()),
            ("bdd_probes".into(), run.bdd_probes.to_json()),
            ("cache_probes".into(), run.cache_probes.to_json()),
            ("cache_hits".into(), run.cache_hits.to_json()),
            ("templates".into(), (run.templates as u64).to_json()),
        ]));
        runs.push((kind, run));
    }

    let smt = &runs[0].1;
    let auto = &runs[1].1;
    assert_eq!(
        smt.templates, auto.templates,
        "backend choice must not change the template count"
    );
    assert_eq!(
        smt.smt_checks, auto.smt_checks,
        "every probed arm counts as one check regardless of which backend answers"
    );
    assert!(
        auto.backend_routed_bdd > 0 && auto.bdd_probes > 0,
        "auto must route match-field-only probes to the BDD engine"
    );
    assert!(
        auto.sat_engine_calls <= smt.sat_engine_calls,
        "BDD-answered probes must not add SAT engine work"
    );

    print!("{table}");
    std::fs::write(format!("{repo_root}/results/backend_routing.txt"), &table)
        .expect("write results/backend_routing.txt");
    let json = Json::Obj(vec![
        ("bench".into(), "backend_routing".to_json()),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(
        format!("{repo_root}/BENCH_backend.json"),
        json.to_text() + "\n",
    )
    .expect("write BENCH_backend.json");
}

/// The disabled-path budget the obs design promises: one relaxed atomic
/// load per instrumentation site when nothing is enabled. Measures the
/// real per-site cost over 50M gated calls and fails the smoke run if it
/// creeps past 5 ns — a regression here means someone put work ahead of
/// the `active()` gate. Skipped when tracing is on (the measurement is
/// only about the disabled path).
fn obs_disabled_guard() {
    if obs::active() {
        println!("obs disabled-path guard skipped (observability is enabled)");
        return;
    }
    const N: u64 = 50_000_000;
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..N {
        if black_box(obs::active()) {
            acc = acc.wrapping_add(i);
        }
    }
    black_box(acc);
    let per_site_ns = start.elapsed().as_nanos() as f64 / N as f64;
    assert!(
        per_site_ns < 5.0,
        "disabled obs gate costs {per_site_ns:.2} ns/site (budget 5 ns)"
    );
    println!("obs disabled-path guard OK: {per_site_ns:.3} ns per gated site");
}

/// Stateful k-packet unrolling: sequence templates and wall time vs k on
/// the connection-tracking firewall. The cost model is the point — the
/// unrolled path mass grows with k while zero-init pruning keeps the
/// feasible sequence count small, and a regression in either direction
/// (lost pruning inflating time, lost threading dropping sequences) moves
/// the table. k=1 is asserted against the single-packet engine, the
/// byte-for-byte degeneration contract. Writes
/// `results/stateful_unroll.txt` + `BENCH_stateful.json`; the engine's
/// `sequence.*` spans land in this figure's trace for `meissa-trace`.
fn stateful_unroll() {
    use meissa_testkit::json::{Json, ToJson};
    use std::time::Instant;

    const KS: [usize; 4] = [1, 2, 3, 4];
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let w = meissa_suite::stateful_firewall();

    let mut table = String::from(
        "Stateful unrolling: sequence templates and time vs k on the\n\
         connection-tracking firewall (best of 3; k=1 delegates to the\n\
         single-packet engine byte-for-byte, so its row doubles as the\n\
         degeneration anchor)\n\n",
    );
    table.push_str(&format!(
        "{:<14} {:>4} {:>11} {:>12} {:>10} {:>10}\n",
        "program", "k", "sequences", "smt_checks", "explored", "wall ms"
    ));
    let mut rows: Vec<Json> = Vec::new();

    // The degeneration anchor: k=1 must reproduce this run exactly.
    let single = Meissa {
        config: MeissaConfig {
            threads: 1,
            ..MeissaConfig::default()
        },
    }
    .run(&w.program);

    let mut prev_sequences = 0usize;
    for k in KS {
        let config = MeissaConfig {
            k_packets: k,
            threads: 1,
            ..MeissaConfig::default()
        };
        let mut best: Option<(f64, meissa_core::StatefulRunOutput)> = None;
        for _ in 0..3 {
            let engine = Meissa {
                config: config.clone(),
            };
            let t = Instant::now();
            let run = engine.run_sequences(&w.program);
            let secs = t.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                best = Some((secs, run));
            }
        }
        let (secs, run) = best.unwrap();
        if k == 1 {
            assert_eq!(
                run.sequences.len(),
                single.templates.len(),
                "k=1 sequence count must match the single-packet engine"
            );
            assert_eq!(
                run.stats.smt_checks, single.stats.smt_checks,
                "k=1 smt_checks must match the single-packet engine"
            );
        }
        assert!(
            run.sequences.len() >= prev_sequences,
            "sequence count must not shrink as k grows \
             (k={k}: {} < {prev_sequences})",
            run.sequences.len()
        );
        prev_sequences = run.sequences.len();
        let ms = secs * 1e3;
        table.push_str(&format!(
            "{:<14} {k:>4} {:>11} {:>12} {:>10} {ms:>10.2}\n",
            w.name,
            run.sequences.len(),
            run.stats.smt_checks,
            run.stats.paths_explored,
        ));
        rows.push(Json::Obj(vec![
            ("program".into(), w.name.as_str().to_json()),
            ("k".into(), (k as u64).to_json()),
            ("sequences".into(), (run.sequences.len() as u64).to_json()),
            ("smt_checks".into(), run.stats.smt_checks.to_json()),
            ("paths_explored".into(), run.stats.paths_explored.to_json()),
            ("wall_ms".into(), ms.to_json()),
        ]));
    }

    print!("{table}");
    std::fs::write(format!("{repo_root}/results/stateful_unroll.txt"), &table)
        .expect("write results/stateful_unroll.txt");
    let json = Json::Obj(vec![
        ("bench".into(), "stateful_unroll".to_json()),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(
        format!("{repo_root}/BENCH_stateful.json"),
        json.to_text() + "\n",
    )
    .expect("write BENCH_stateful.json");
}

/// CI smoke: one gw-3-r8 run per engine, checked against the golden
/// counters the checked-in `BENCH_parallel.json` rows were recorded with.
/// Catches silent drift in `smt_checks` (the Fig. 11b metric must stay
/// comparable across solver-strategy changes — a batched arm still counts
/// as one check) and in the template count. Run via
/// `MEISSA_BENCH_SMOKE=1 cargo bench -p meissa-bench`, as `scripts/ci.sh`
/// does; any drift panics, failing the bench run.
/// CI scaling guard: gw-3-r32 through the no-summary DFS at 1 and 4
/// threads, failing the run when the 4-thread speedup falls below 2.0x.
/// Host-gated — on a host with fewer than 4 cores the engine right-sizes
/// its pool to the available parallelism and the target is unattainable by
/// construction, so the guard reports the skip and passes (`scripts/ci.sh`
/// additionally gates the invocation on `nproc`). Run via
/// `MEISSA_BENCH_SCALING=1 cargo bench -p meissa-bench`.
fn scaling_guard() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!("scaling guard skipped: host exposes {cores} core(s) (< 4)");
        return;
    }
    let w = gw(3, GwScale { eips: 32 });
    let dfs = MeissaConfig {
        code_summary: false,
        ..MeissaConfig::default()
    };
    let t1 = best_of_3(&w, &MeissaConfig { threads: 1, ..dfs.clone() });
    let t4 = best_of_3(&w, &MeissaConfig { threads: 4, ..dfs });
    assert_eq!(
        t1.templates, t4.templates,
        "scaling guard: template count must be thread-count invariant"
    );
    let speedup = t1.secs / t4.secs;
    assert!(
        speedup >= 2.0,
        "scaling guard: gw-3-r32/dfs t4 speedup {speedup:.2}x below the \
         2.0x floor on a {cores}-core host (t1 {:.1} ms, t4 {:.1} ms)",
        t1.secs * 1e3,
        t4.secs * 1e3,
    );
    println!(
        "scaling guard OK: gw-3-r32/dfs t4 speedup {speedup:.2}x on a \
         {cores}-core host"
    );
}

fn bench_smoke() {
    const GOLDEN_DFS_SMT_CHECKS: u64 = 12648;
    const GOLDEN_SUMMARY_SMT_CHECKS: u64 = 11406;
    const GOLDEN_TEMPLATES: usize = 253;
    // Verdict-cache goldens: the §4 arm-pruning cache must behave the same
    // whichever backend answers the misses (the cache sits above the
    // router), and the 128-bit hash keys must probe/hit exactly like the
    // string keys they replaced.
    const GOLDEN_DFS_CACHE: (u64, u64) = (1796, 0);
    // Summary hits dropped 119 → 104 when the engine moved to the batched
    // summary path at every thread count: group-search jobs now warm-start
    // from a read-only snapshot of the cache taken *before* the batch (plus
    // their own discoveries), not from whatever earlier jobs in the same
    // batch happened to discover. That intra-batch coupling was exactly the
    // thread-count-dependent drift (5121 vs 5217 sat_engine_calls) this
    // golden now guards against coming back.
    const GOLDEN_SUMMARY_CACHE: (u64, u64) = (5820, 104);

    let w = gw(3, GwScale { eips: 8 });
    let smt_only = MeissaConfig {
        code_summary: false,
        threads: 1,
        backend: BackendKind::Smt,
        ..MeissaConfig::default()
    };
    let dfs = measure(&w, smt_only.clone());
    assert_eq!(
        dfs.smt_checks, GOLDEN_DFS_SMT_CHECKS,
        "gw-3-r8/dfs smt_checks drifted from the recorded golden"
    );
    assert_eq!(
        dfs.templates, GOLDEN_TEMPLATES,
        "gw-3-r8/dfs template count drifted from the recorded golden"
    );
    assert_eq!(
        (dfs.cache_probes, dfs.cache_hits),
        GOLDEN_DFS_CACHE,
        "gw-3-r8/dfs verdict-cache counters drifted from the recorded golden"
    );
    let summary = measure(
        &w,
        MeissaConfig {
            threads: 1,
            backend: BackendKind::Smt,
            ..MeissaConfig::default()
        },
    );
    assert_eq!(
        summary.smt_checks, GOLDEN_SUMMARY_SMT_CHECKS,
        "gw-3-r8/summary smt_checks drifted from the recorded golden"
    );
    assert_eq!(
        summary.templates, GOLDEN_TEMPLATES,
        "gw-3-r8/summary template count drifted from the recorded golden"
    );
    assert_eq!(
        (summary.cache_probes, summary.cache_hits),
        GOLDEN_SUMMARY_CACHE,
        "gw-3-r8/summary verdict-cache counters drifted from the recorded golden"
    );
    // Same run through the auto router: the BDD engine takes the
    // match-field-only probes, yet every externally visible counter —
    // checks, templates, cache probes/hits — must match the smt run.
    let auto = measure(
        &w,
        MeissaConfig {
            backend: BackendKind::Auto,
            ..smt_only
        },
    );
    assert!(
        auto.bdd_probes > 0,
        "auto backend answered no probes on the BDD engine"
    );
    assert_eq!(
        auto.smt_checks, GOLDEN_DFS_SMT_CHECKS,
        "gw-3-r8/dfs smt_checks must be backend-invariant"
    );
    assert_eq!(
        auto.templates, GOLDEN_TEMPLATES,
        "gw-3-r8/dfs templates must be backend-invariant"
    );
    assert_eq!(
        (auto.cache_probes, auto.cache_hits),
        GOLDEN_DFS_CACHE,
        "verdict-cache behavior must be backend-invariant (cache sits above the router)"
    );
    println!(
        "bench smoke OK: auto router sent {} probes to the BDD engine \
         ({} routed-smt, {} routed-bdd decisions)",
        auto.bdd_probes, auto.backend_routed_smt, auto.backend_routed_bdd,
    );
    println!(
        "bench smoke OK: gw-3-r8 dfs {} checks ({} sat calls, {} batched), \
         summary {} checks ({} sat calls, {} batched), {} templates",
        dfs.smt_checks,
        dfs.sat_engine_calls,
        dfs.batched_probes,
        summary.smt_checks,
        summary.sat_engine_calls,
        summary.batched_probes,
        dfs.templates,
    );
}

fn main() {
    obs::init_from_env();
    if std::env::var_os("MEISSA_BENCH_SMOKE").is_some() {
        obs_disabled_guard();
        bench_smoke();
        return;
    }
    if std::env::var_os("MEISSA_BENCH_SCALING").is_some() {
        scaling_guard();
        return;
    }
    if let Some(mode) = std::env::var_os("MEISSA_BENCH_NETDRIVER") {
        // `=1` (CI) runs the throughput-floor guard; `=full` regenerates
        // the loopback framing sweep + soak smoke without the rest of the
        // figure suite.
        if mode == "full" {
            netdriver_loopback();
        } else {
            netdriver_guard();
        }
        return;
    }
    if std::env::var_os("MEISSA_BENCH_OBS").is_some() {
        // Regenerate the tracing-overhead table alone (BENCH_obs.json +
        // results/obs_overhead.txt) without the rest of the figure suite.
        obs_overhead();
        return;
    }
    if std::env::var_os("MEISSA_BENCH_STATEFUL").is_some() {
        // CI's stateful smoke: the unrolling sweep alone, with its trace
        // left behind for the meissa-trace reconciliation step.
        traced("stateful_unroll", stateful_unroll);
        return;
    }
    traced("fig7", fig7_redundancy);
    traced("fig9", fig9_scalability);
    traced("fig11", fig11_summary);
    traced("fig12", fig12_rulesets);
    traced("appendix_a", appendix_a_complexity);
    traced("ablation_grouped", ablation_grouped_summary);
    traced("stateful_unroll", stateful_unroll);
    // The scaling/overhead series manage tracing themselves: their wall
    // times are the recorded baselines, so the sink must stay off except
    // where the overhead bench turns it on deliberately.
    parallel_scaling();
    backend_routing();
    netdriver_loopback();
    obs_overhead();
}
