//! Regenerates **Table 1**: the data plane program inventory — name,
//! functionality, LOC, number of pipes, number of switches — plus each
//! program's rule-set LOC and possible-path count for context.

use meissa_bench::{full_corpus, possible_paths};

fn main() {
    println!("Table 1: data plane programs used in evaluation");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>11} {:>14}",
        "name", "LOC", "rules LOC", "# pipes", "# switches", "possible paths"
    );
    for w in full_corpus() {
        let paths = possible_paths(&w);
        let paths_str = if paths.decimal_digits() > 12 {
            format!("10^{:.1}", paths.log10())
        } else {
            paths.to_string()
        };
        println!(
            "{:<10} {:>6} {:>10} {:>8} {:>11} {:>14}",
            w.name,
            w.program.loc,
            w.program.rules_loc,
            w.program.num_pipes,
            w.program.num_switches,
            paths_str
        );
    }
}
