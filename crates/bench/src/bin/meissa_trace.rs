//! `meissa-trace`: summarize (or validate) a `MEISSA_TRACE` JSONL file.
//!
//! ```text
//! meissa-trace <trace.jsonl>          per-phase / per-worker breakdown
//! meissa-trace --check <trace.jsonl>  schema + span-tree validation
//! ```
//!
//! The report mode prints, for every `engine.run` span in the file:
//! phase wall time (summary vs. exec vs. unattributed), the per-worker
//! table from `parallel.worker` spans (tasks, steals, busy solve time),
//! and the solver cache/batch counters the engine stamped on the run
//! span — the same values `RunStats` reports, so the trace reconciles
//! with the engine's own accounting. Wire-driver traces get the same
//! treatment via `wire.run`/`wire.conn` spans. A final section shows the
//! last metric snapshot (cumulative counters at the last flush).
//!
//! The check mode validates what CI relies on: every line parses as one
//! of the known record kinds, span ids are unique, parent references
//! resolve, and a child span nests inside its parent's time range on the
//! same thread.

use meissa_testkit::json::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::exit;

struct Span {
    name: String,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    fields: Vec<(String, u64)>,
}

struct Event {
    name: String,
    #[allow(dead_code)]
    span: u64,
}

#[derive(Default)]
struct Trace {
    spans: Vec<Span>,
    events: Vec<Event>,
    /// name → value from the *last* snapshot in the file.
    counters: BTreeMap<String, u64>,
    /// name → (count, sum, p50, p99) from the last snapshot.
    hists: BTreeMap<String, (u64, u64, u64, u64)>,
    lines: usize,
}

fn num(v: &Json, key: &str) -> Result<u64, String> {
    v.field(key)
        .and_then(|f| f.as_u128())
        .map(|n| n as u64)
        .map_err(|e| e.to_string())
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.field(key)
        .and_then(|f| f.as_str().map(str::to_string))
        .map_err(|e| e.to_string())
}

fn fields_of(v: &Json) -> Vec<(String, u64)> {
    match v.get("fields") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, fv)| fv.as_u128().ok().map(|n| (k.clone(), n as u64)))
            .collect(),
        _ => Vec::new(),
    }
}

fn parse_trace(path: &str) -> Result<Trace, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut t = Trace::default();
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: bad JSON: {e}", lineno + 1))?;
        let kind = text(&v, "t").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match kind.as_str() {
            "meta" => {}
            "span" => t.spans.push(Span {
                name: text(&v, "name")?,
                id: num(&v, "id")?,
                parent: num(&v, "parent")?,
                tid: num(&v, "tid")?,
                start_ns: num(&v, "start_ns")?,
                dur_ns: num(&v, "dur_ns")?,
                fields: fields_of(&v),
            }),
            "event" => t.events.push(Event {
                name: text(&v, "name")?,
                span: num(&v, "span")?,
            }),
            "counter" | "gauge" => {
                t.counters.insert(text(&v, "name")?, num(&v, "value")?);
            }
            "hist" => {
                t.hists.insert(
                    text(&v, "name")?,
                    (num(&v, "count")?, num(&v, "sum")?, num(&v, "p50")?, num(&v, "p99")?),
                );
            }
            other => return Err(format!("line {}: unknown record kind `{other}`", lineno + 1)),
        }
        t.lines += 1;
    }
    Ok(t)
}

/// `--check`: span ids unique, parents resolve, children nest inside
/// their same-thread parent's interval.
fn check(t: &Trace) -> Result<(), String> {
    let mut by_id: HashMap<u64, &Span> = HashMap::new();
    for s in &t.spans {
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in &t.spans {
        if s.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&s.parent) else {
            return Err(format!(
                "span {} ({}) references unknown parent {}",
                s.id, s.name, s.parent
            ));
        };
        if p.tid != s.tid {
            return Err(format!(
                "span {} ({}) is parented across threads ({} vs {})",
                s.id, s.name, s.tid, p.tid
            ));
        }
        if s.start_ns < p.start_ns || s.start_ns + s.dur_ns > p.start_ns + p.dur_ns {
            return Err(format!(
                "span {} ({}) does not nest inside parent {} ({})",
                s.id, s.name, p.id, p.name
            ));
        }
    }
    Ok(())
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn field(s: &Span, key: &str) -> Option<u64> {
    s.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

fn report(t: &Trace) -> String {
    let mut out = String::new();
    let runs: Vec<&Span> = t.spans.iter().filter(|s| s.name == "engine.run").collect();
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(out, "== engine.run #{} ({:.1} ms) ==", i + 1, ms(run.dur_ns));
        let children: Vec<&Span> =
            t.spans.iter().filter(|s| s.parent == run.id).collect();
        let mut attributed = 0u64;
        let _ = writeln!(out, "  phase breakdown:");
        for c in &children {
            attributed += c.dur_ns;
            let _ = writeln!(out, "    {:<16} {:>9.1} ms", c.name, ms(c.dur_ns));
        }
        let _ = writeln!(
            out,
            "    {:<16} {:>9.1} ms",
            "(unattributed)",
            ms(run.dur_ns.saturating_sub(attributed))
        );
        // Worker spans live on their own threads (roots there), inside the
        // run's time range.
        let workers: Vec<&Span> = t
            .spans
            .iter()
            .filter(|s| {
                s.name == "parallel.worker"
                    && s.start_ns >= run.start_ns
                    && s.start_ns < run.start_ns + run.dur_ns
            })
            .collect();
        if !workers.is_empty() {
            // Utilization = busy / wall per worker: the single number that
            // says whether a scaling problem is starvation (low util, high
            // steal-wait) or serialization outside the workers (high util,
            // t_N wall ≈ t_1 wall). Merge share reads off the `parallel.
            // merge` child span below.
            let _ = writeln!(out, "  workers:");
            let _ = writeln!(
                out,
                "    {:<4} {:>7} {:>7} {:>12} {:>12} {:>7} {:>12}",
                "wid", "tasks", "steals", "busy ms", "steal-wait", "util%", "checks"
            );
            for w in &workers {
                let busy_us = field(w, "busy_us").unwrap_or(0);
                let wall_us = field(w, "wall_us").unwrap_or(0);
                let util = if wall_us == 0 {
                    0.0
                } else {
                    100.0 * busy_us as f64 / wall_us as f64
                };
                let _ = writeln!(
                    out,
                    "    {:<4} {:>7} {:>7} {:>12.1} {:>12.1} {:>7.1} {:>12}",
                    field(w, "wid").unwrap_or(0),
                    field(w, "tasks").unwrap_or(0),
                    field(w, "steals").unwrap_or(0),
                    ms(busy_us * 1000),
                    ms(field(w, "steal_wait_us").unwrap_or(0) * 1000),
                    util,
                    field(w, "smt_checks").unwrap_or(0),
                );
            }
            let merge_ns: u64 = t
                .spans
                .iter()
                .filter(|s| {
                    s.name == "parallel.merge"
                        && s.start_ns >= run.start_ns
                        && s.start_ns < run.start_ns + run.dur_ns
                })
                .map(|s| s.dur_ns)
                .sum();
            if merge_ns > 0 {
                let _ = writeln!(
                    out,
                    "    merge/retire     {:>9.1} ms ({:.1}% of run)",
                    ms(merge_ns),
                    100.0 * merge_ns as f64 / run.dur_ns.max(1) as f64
                );
            }
        }
        if !run.fields.is_empty() {
            let _ = writeln!(out, "  run counters (from RunStats):");
            for (k, v) in &run.fields {
                let _ = writeln!(out, "    {k:<18} {v}");
            }
        }
    }
    let wire_runs: Vec<&Span> = t.spans.iter().filter(|s| s.name == "wire.run").collect();
    for (i, run) in wire_runs.iter().enumerate() {
        let _ = writeln!(out, "== wire.run #{} ({:.1} ms) ==", i + 1, ms(run.dur_ns));
        for (k, v) in &run.fields {
            let _ = writeln!(out, "    {k:<14} {v}");
        }
        let conns = t.spans.iter().filter(|s| s.name == "wire.conn").count();
        let cases = t.spans.iter().filter(|s| s.name == "wire.case").count();
        let _ = writeln!(out, "    conn spans     {conns}");
        let _ = writeln!(out, "    case spans     {cases}");
    }
    if !t.events.is_empty() {
        let mut tally: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &t.events {
            *tally.entry(e.name.as_str()).or_insert(0) += 1;
        }
        let _ = writeln!(out, "== events ==");
        for (name, n) in tally {
            let _ = writeln!(out, "    {name:<24} {n}");
        }
    }
    if !t.counters.is_empty() || !t.hists.is_empty() {
        let _ = writeln!(out, "== metrics (last snapshot) ==");
        for (name, v) in &t.counters {
            let _ = writeln!(out, "    {name:<24} {v}");
        }
        for (name, (count, sum, p50, p99)) in &t.hists {
            let _ = writeln!(
                out,
                "    {name:<24} count={count} sum={sum} p50≈{p50} p99≈{p99}"
            );
        }
        out.push_str(&reconcile_backend(t, &runs));
    }
    out
}

/// Reconciles the router's live `backend.*` metric counters (cumulative,
/// last snapshot) against the per-run sums the engine stamped on its
/// `engine.run` spans. They count the same routing decisions from two
/// independent paths — the obs counter bump at the router and the
/// `RunStats` merge at run end — so a live-metrics trace that covers every
/// run from process start should show them equal. Informational only: a
/// trace that enabled metrics mid-stream, or that holds runs from several
/// processes, legitimately diverges.
fn reconcile_backend(t: &Trace, runs: &[&Span]) -> String {
    const PAIRS: [(&str, &str); 3] = [
        ("backend.routed_smt", "backend_routed_smt"),
        ("backend.routed_bdd", "backend_routed_bdd"),
        ("backend.bdd_probes", "bdd_probes"),
    ];
    if !PAIRS.iter().any(|(c, _)| t.counters.contains_key(*c)) {
        return String::new();
    }
    let mut out = String::from("== backend routing reconciliation ==\n");
    for (counter, span_field) in PAIRS {
        let snapshot = t.counters.get(counter).copied().unwrap_or(0);
        let span_sum: u64 = runs.iter().filter_map(|r| field(r, span_field)).sum();
        let verdict = if snapshot == span_sum {
            "ok"
        } else {
            "DIVERGES (partial trace or multi-process file?)"
        };
        let _ = writeln!(
            out,
            "    {counter:<24} snapshot={snapshot} run-span sum={span_sum}  {verdict}"
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (check_mode, path) = match args.as_slice() {
        [flag, p] if flag == "--check" => (true, p.clone()),
        [p] if p != "--check" && !p.starts_with("--") => (false, p.clone()),
        _ => {
            eprintln!("usage: meissa-trace [--check] <trace.jsonl>");
            exit(2);
        }
    };
    let t = match parse_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("meissa-trace: {e}");
            exit(1);
        }
    };
    if check_mode {
        if let Err(e) = check(&t) {
            eprintln!("meissa-trace: span tree invalid: {e}");
            exit(1);
        }
        println!(
            "ok: {} records ({} spans, {} events, {} metrics)",
            t.lines,
            t.spans.len(),
            t.events.len(),
            t.counters.len() + t.hists.len()
        );
    } else {
        // A truncated reader (`meissa-trace … | head`) closes the pipe
        // early; that is not an error worth a panic or a non-zero exit.
        let _ = std::io::stdout().write_all(report(&t).as_bytes());
    }
}
