//! `meissa-trace`: summarize (or validate) a `MEISSA_TRACE` JSONL file.
//!
//! ```text
//! meissa-trace <trace.jsonl>                 per-phase / per-worker breakdown
//! meissa-trace --check <trace.jsonl>         schema + span-tree validation
//! meissa-trace diff <a> <b> [--strict-perf]  regression gate between runs
//! ```
//!
//! The report mode prints, for every `engine.run` span in the file:
//! phase wall time (summary vs. exec vs. unattributed), the per-worker
//! table from `parallel.worker` spans (tasks, steals, busy solve time),
//! and the solver cache/batch counters the engine stamped on the run
//! span — the same values `RunStats` reports, so the trace reconciles
//! with the engine's own accounting. Wire-driver traces get the same
//! treatment via `wire.run`/`wire.conn` spans. A final section shows the
//! last metric snapshot (cumulative counters at the last flush).
//!
//! The check mode validates what CI relies on: every line parses as one
//! of the known record kinds, span ids are unique, parent references
//! resolve, and a child span nests inside its parent's time range on the
//! same thread.
//!
//! The diff mode compares two runs — each side a `results/ledger.jsonl`
//! run-record file (last record wins) or a raw trace — and exits non-zero
//! on regression: rule arms hit in the baseline but unhit (or gone) in
//! the candidate, or drift in the exact-by-contract counters
//! (`smt_checks`, `templates`, `valid_paths`). Wall-clock (±20%) and
//! latency percentiles (×1.5) only warn unless `--strict-perf`, so the
//! gate stays deterministic on noisy CI hosts.

use meissa_testkit::json::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::exit;

struct Span {
    name: String,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    fields: Vec<(String, u64)>,
}

struct Event {
    name: String,
    #[allow(dead_code)]
    span: u64,
}

#[derive(Default)]
struct Trace {
    spans: Vec<Span>,
    events: Vec<Event>,
    /// name → value from the *last* snapshot in the file.
    counters: BTreeMap<String, u64>,
    /// name → (count, sum, p50, p99) from the last snapshot.
    hists: BTreeMap<String, (u64, u64, u64, u64)>,
    /// `(name, data)` of every structured note, in file order (the
    /// engine's coverage map travels as a `coverage` note).
    notes: Vec<(String, Json)>,
    lines: usize,
}

fn num(v: &Json, key: &str) -> Result<u64, String> {
    v.field(key)
        .and_then(|f| f.as_u128())
        .map(|n| n as u64)
        .map_err(|e| e.to_string())
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.field(key)
        .and_then(|f| f.as_str().map(str::to_string))
        .map_err(|e| e.to_string())
}

fn fields_of(v: &Json) -> Vec<(String, u64)> {
    match v.get("fields") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(k, fv)| fv.as_u128().ok().map(|n| (k.clone(), n as u64)))
            .collect(),
        _ => Vec::new(),
    }
}

fn parse_trace(path: &str) -> Result<Trace, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut t = Trace::default();
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: bad JSON: {e}", lineno + 1))?;
        let kind = text(&v, "t").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match kind.as_str() {
            "meta" => {}
            "span" => t.spans.push(Span {
                name: text(&v, "name")?,
                id: num(&v, "id")?,
                parent: num(&v, "parent")?,
                tid: num(&v, "tid")?,
                start_ns: num(&v, "start_ns")?,
                dur_ns: num(&v, "dur_ns")?,
                fields: fields_of(&v),
            }),
            "event" => t.events.push(Event {
                name: text(&v, "name")?,
                span: num(&v, "span")?,
            }),
            "counter" | "gauge" => {
                t.counters.insert(text(&v, "name")?, num(&v, "value")?);
            }
            "hist" => {
                t.hists.insert(
                    text(&v, "name")?,
                    (num(&v, "count")?, num(&v, "sum")?, num(&v, "p50")?, num(&v, "p99")?),
                );
            }
            "note" => {
                let data = v.get("data").cloned().unwrap_or(Json::Null);
                t.notes.push((text(&v, "name")?, data));
            }
            other => return Err(format!("line {}: unknown record kind `{other}`", lineno + 1)),
        }
        t.lines += 1;
    }
    Ok(t)
}

/// `--check`: span ids unique, parents resolve, children nest inside
/// their same-thread parent's interval.
fn check(t: &Trace) -> Result<(), String> {
    let mut by_id: HashMap<u64, &Span> = HashMap::new();
    for s in &t.spans {
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in &t.spans {
        if s.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&s.parent) else {
            return Err(format!(
                "span {} ({}) references unknown parent {}",
                s.id, s.name, s.parent
            ));
        };
        if p.tid != s.tid {
            return Err(format!(
                "span {} ({}) is parented across threads ({} vs {})",
                s.id, s.name, s.tid, p.tid
            ));
        }
        if s.start_ns < p.start_ns || s.start_ns + s.dur_ns > p.start_ns + p.dur_ns {
            return Err(format!(
                "span {} ({}) does not nest inside parent {} ({})",
                s.id, s.name, p.id, p.name
            ));
        }
    }
    Ok(())
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn field(s: &Span, key: &str) -> Option<u64> {
    s.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

fn report(t: &Trace) -> String {
    let mut out = String::new();
    let runs: Vec<&Span> = t.spans.iter().filter(|s| s.name == "engine.run").collect();
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(out, "== engine.run #{} ({:.1} ms) ==", i + 1, ms(run.dur_ns));
        let children: Vec<&Span> =
            t.spans.iter().filter(|s| s.parent == run.id).collect();
        let mut attributed = 0u64;
        let _ = writeln!(out, "  phase breakdown:");
        for c in &children {
            attributed += c.dur_ns;
            let _ = writeln!(out, "    {:<16} {:>9.1} ms", c.name, ms(c.dur_ns));
        }
        let _ = writeln!(
            out,
            "    {:<16} {:>9.1} ms",
            "(unattributed)",
            ms(run.dur_ns.saturating_sub(attributed))
        );
        // Worker spans live on their own threads (roots there), inside the
        // run's time range.
        let workers: Vec<&Span> = t
            .spans
            .iter()
            .filter(|s| {
                s.name == "parallel.worker"
                    && s.start_ns >= run.start_ns
                    && s.start_ns < run.start_ns + run.dur_ns
            })
            .collect();
        if !workers.is_empty() {
            // Utilization = busy / wall per worker: the single number that
            // says whether a scaling problem is starvation (low util, high
            // steal-wait) or serialization outside the workers (high util,
            // t_N wall ≈ t_1 wall). Merge share reads off the `parallel.
            // merge` child span below.
            let _ = writeln!(out, "  workers:");
            let _ = writeln!(
                out,
                "    {:<4} {:>7} {:>7} {:>12} {:>12} {:>7} {:>12}",
                "wid", "tasks", "steals", "busy ms", "steal-wait", "util%", "checks"
            );
            for w in &workers {
                let busy_us = field(w, "busy_us").unwrap_or(0);
                let wall_us = field(w, "wall_us").unwrap_or(0);
                let util = if wall_us == 0 {
                    0.0
                } else {
                    100.0 * busy_us as f64 / wall_us as f64
                };
                let _ = writeln!(
                    out,
                    "    {:<4} {:>7} {:>7} {:>12.1} {:>12.1} {:>7.1} {:>12}",
                    field(w, "wid").unwrap_or(0),
                    field(w, "tasks").unwrap_or(0),
                    field(w, "steals").unwrap_or(0),
                    ms(busy_us * 1000),
                    ms(field(w, "steal_wait_us").unwrap_or(0) * 1000),
                    util,
                    field(w, "smt_checks").unwrap_or(0),
                );
            }
            let merge_ns: u64 = t
                .spans
                .iter()
                .filter(|s| {
                    s.name == "parallel.merge"
                        && s.start_ns >= run.start_ns
                        && s.start_ns < run.start_ns + run.dur_ns
                })
                .map(|s| s.dur_ns)
                .sum();
            if merge_ns > 0 {
                let _ = writeln!(
                    out,
                    "    merge/retire     {:>9.1} ms ({:.1}% of run)",
                    ms(merge_ns),
                    100.0 * merge_ns as f64 / run.dur_ns.max(1) as f64
                );
            }
        }
        if !run.fields.is_empty() {
            let _ = writeln!(out, "  run counters (from RunStats):");
            for (k, v) in &run.fields {
                let _ = writeln!(out, "    {k:<18} {v}");
            }
        }
    }
    let wire_runs: Vec<&Span> = t.spans.iter().filter(|s| s.name == "wire.run").collect();
    for (i, run) in wire_runs.iter().enumerate() {
        let _ = writeln!(out, "== wire.run #{} ({:.1} ms) ==", i + 1, ms(run.dur_ns));
        for (k, v) in &run.fields {
            let _ = writeln!(out, "    {k:<14} {v}");
        }
        let conns = t.spans.iter().filter(|s| s.name == "wire.conn").count();
        let cases = t.spans.iter().filter(|s| s.name == "wire.case").count();
        let _ = writeln!(out, "    conn spans     {conns}");
        let _ = writeln!(out, "    case spans     {cases}");
    }
    if !t.events.is_empty() {
        let mut tally: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &t.events {
            *tally.entry(e.name.as_str()).or_insert(0) += 1;
        }
        let _ = writeln!(out, "== events ==");
        for (name, n) in tally {
            let _ = writeln!(out, "    {name:<24} {n}");
        }
    }
    if !t.counters.is_empty() || !t.hists.is_empty() {
        let _ = writeln!(out, "== metrics (last snapshot) ==");
        for (name, v) in &t.counters {
            let _ = writeln!(out, "    {name:<24} {v}");
        }
        for (name, (count, sum, p50, p99)) in &t.hists {
            let _ = writeln!(
                out,
                "    {name:<24} count={count} sum={sum} p50≈{p50} p99≈{p99}"
            );
        }
        out.push_str(&reconcile_backend(t, &runs));
    }
    out.push_str(&coverage_section(t));
    out
}

/// Renders the last `coverage` note — the engine's per-rule hit map — as
/// a per-table breakdown: hit/total rules, miss-arm hits, and the ids of
/// any unhit rules (the actionable part).
fn coverage_section(t: &Trace) -> String {
    let Some((_, data)) = t.notes.iter().rev().find(|(n, _)| n == "coverage") else {
        return String::new();
    };
    let cov = coverage_arms(data);
    if cov.is_empty() {
        return String::new();
    }
    let mut out = String::from("== rule coverage (last run) ==\n");
    let mut tables: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for ((table, arm), hits) in &cov {
        tables.entry(table).or_default().push((arm, *hits));
    }
    for (table, arms) in tables {
        let rules: Vec<&(&str, u64)> = arms.iter().filter(|(a, _)| *a != "miss").collect();
        let hit = rules.iter().filter(|(_, h)| *h > 0).count();
        let miss = arms.iter().find(|(a, _)| *a == "miss");
        let _ = write!(out, "    {table:<16} rules {hit}/{}", rules.len());
        if let Some((_, h)) = miss {
            let _ = write!(out, ", miss arm {} hit{}", h, if *h == 1 { "" } else { "s" });
        }
        let unhit: Vec<&str> = rules
            .iter()
            .filter(|(_, h)| *h == 0)
            .map(|(a, _)| *a)
            .collect();
        if !unhit.is_empty() {
            let _ = write!(out, "  UNHIT: {}", unhit.join(", "));
        }
        out.push('\n');
    }
    out
}

/// Flattens a `RuleCoverage` JSON map into `(table, arm) → hits`, where
/// `arm` is a rule index rendered as text or `"miss"`. Tolerant of
/// malformed entries (skipped) so a truncated trace still diffs.
fn coverage_arms(cov: &Json) -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    let Ok(tables) = cov.as_arr() else {
        return out;
    };
    for tj in tables {
        let Some(table) = tj.get("table").and_then(|v| v.as_str().ok()) else {
            continue;
        };
        if let Some(Json::Arr(rules)) = tj.get("rules") {
            for r in rules {
                let Ok(pair) = r.as_arr() else { continue };
                if pair.len() != 2 {
                    continue;
                }
                if let (Ok(i), Ok(h)) = (pair[0].as_u128(), pair[1].as_u128()) {
                    out.insert((table.to_string(), i.to_string()), h as u64);
                }
            }
        }
        let has_miss = matches!(tj.get("has_miss"), Some(Json::Bool(true)));
        if has_miss {
            let miss = tj
                .get("miss")
                .and_then(|v| v.as_u128().ok())
                .unwrap_or(0) as u64;
            out.insert((table.to_string(), "miss".to_string()), miss);
        }
    }
    out
}

/// Reconciles the router's live `backend.*` metric counters (cumulative,
/// last snapshot) against the per-run sums the engine stamped on its
/// `engine.run` spans. They count the same routing decisions from two
/// independent paths — the obs counter bump at the router and the
/// `RunStats` merge at run end — so a live-metrics trace that covers every
/// run from process start should show them equal. Informational only: a
/// trace that enabled metrics mid-stream, or that holds runs from several
/// processes, legitimately diverges.
fn reconcile_backend(t: &Trace, runs: &[&Span]) -> String {
    const PAIRS: [(&str, &str); 3] = [
        ("backend.routed_smt", "backend_routed_smt"),
        ("backend.routed_bdd", "backend_routed_bdd"),
        ("backend.bdd_probes", "bdd_probes"),
    ];
    if !PAIRS.iter().any(|(c, _)| t.counters.contains_key(*c)) {
        return String::new();
    }
    let mut out = String::from("== backend routing reconciliation ==\n");
    for (counter, span_field) in PAIRS {
        let snapshot = t.counters.get(counter).copied().unwrap_or(0);
        let span_sum: u64 = runs.iter().filter_map(|r| field(r, span_field)).sum();
        let verdict = if snapshot == span_sum {
            "ok"
        } else {
            "DIVERGES (partial trace or multi-process file?)"
        };
        let _ = writeln!(
            out,
            "    {counter:<24} snapshot={snapshot} run-span sum={span_sum}  {verdict}"
        );
    }
    out
}

/// One run, normalized for diffing — built from a ledger `run_record`
/// line or synthesized from a trace's `engine.run` span + coverage note.
struct RecordView {
    kind: String,
    program_hash: String,
    rule_set_hash: String,
    counters: BTreeMap<String, u64>,
    /// `(table, arm) → hits`; arm is a rule index as text or `"miss"`.
    coverage: BTreeMap<(String, String), u64>,
    latency: Option<(u64, u64)>, // (p50, p99)
}

fn record_from_ledger(v: &Json) -> RecordView {
    let s = |k: &str| {
        v.get(k)
            .and_then(|f| f.as_str().ok())
            .unwrap_or("")
            .to_string()
    };
    let mut counters = BTreeMap::new();
    if let Some(Json::Obj(pairs)) = v.get("counters") {
        for (k, cv) in pairs {
            if let Ok(n) = cv.as_u128() {
                counters.insert(k.clone(), n as u64);
            }
        }
    }
    let coverage = v.get("coverage").map(coverage_arms).unwrap_or_default();
    let latency = v.get("latency").and_then(|l| {
        let q = |k: &str| l.get(k).and_then(|f| f.as_u128().ok()).map(|n| n as u64);
        Some((q("p50")?, q("p99")?))
    });
    RecordView {
        kind: s("kind"),
        program_hash: s("program_hash"),
        rule_set_hash: s("rule_set_hash"),
        counters,
        coverage,
        latency,
    }
}

/// Loads one diff side. A file holding `run_record` lines is a ledger —
/// the *last* record wins (append-only files accumulate). Anything else
/// must parse as a trace; the view is synthesized from the last
/// `engine.run`/`sequence.run` span's stamped counters plus the last
/// `coverage` note.
fn load_record(path: &str) -> Result<RecordView, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut last_record = None;
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(v) = Json::parse(line) {
            if v.get("t").and_then(|t| t.as_str().ok()) == Some("run_record") {
                last_record = Some(v);
            }
        }
    }
    if let Some(v) = last_record {
        return Ok(record_from_ledger(&v));
    }
    let t = parse_trace(path)?;
    let run = t
        .spans
        .iter()
        .rev()
        .find(|s| s.name == "engine.run" || s.name == "sequence.run" || s.name == "wire.soak")
        .ok_or_else(|| format!("{path}: no run_record lines and no run spans to diff"))?;
    let mut counters: BTreeMap<String, u64> =
        run.fields.iter().cloned().collect();
    counters.remove("threads"); // machine-shape, not behaviour
    let coverage = t
        .notes
        .iter()
        .rev()
        .find(|(n, _)| n == "coverage")
        .map(|(_, d)| coverage_arms(d))
        .unwrap_or_default();
    let latency = t
        .hists
        .get("wire.case_latency_us")
        .map(|&(_, _, p50, p99)| (p50, p99));
    Ok(RecordView {
        kind: run.name.clone(),
        program_hash: String::new(),
        rule_set_hash: String::new(),
        counters,
        coverage,
        latency,
    })
}

/// Counters that must match exactly between runs of the same program and
/// config: the solver's work is deterministic, so drift here is a real
/// behaviour change, not noise.
const EXACT_COUNTERS: [&str; 3] = ["smt_checks", "templates", "valid_paths"];

/// Wall-clock drift tolerance (fraction) before a warning.
const WALL_TOLERANCE: f64 = 0.20;
/// Latency percentile growth factor before a warning.
const LATENCY_FACTOR: f64 = 1.5;

/// Compares baseline `a` against candidate `b`. Returns
/// `(regressions, warnings)`; any regression (or, under strict mode, any
/// warning) should fail the gate.
fn diff_records(a: &RecordView, b: &RecordView) -> (Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut warnings = Vec::new();
    if a.kind != b.kind && !a.kind.is_empty() && !b.kind.is_empty() {
        warnings.push(format!("comparing different run kinds: {} vs {}", a.kind, b.kind));
    }
    if !a.program_hash.is_empty() && !b.program_hash.is_empty() && a.program_hash != b.program_hash
    {
        warnings.push(format!(
            "program hash differs: {} vs {}",
            a.program_hash, b.program_hash
        ));
    }
    if !a.rule_set_hash.is_empty()
        && !b.rule_set_hash.is_empty()
        && a.rule_set_hash != b.rule_set_hash
    {
        warnings.push(format!(
            "rule-set hash differs: {} vs {}",
            a.rule_set_hash, b.rule_set_hash
        ));
    }
    // Coverage: every arm the baseline hit must still exist and be hit.
    for ((table, arm), &hits) in &a.coverage {
        if hits == 0 {
            continue;
        }
        let label = if arm == "miss" {
            format!("table {table} miss arm")
        } else {
            format!("table {table} rule {arm}")
        };
        match b.coverage.get(&(table.clone(), arm.clone())) {
            None => regressions.push(format!(
                "coverage: {label} hit in baseline, absent in candidate"
            )),
            Some(0) => regressions.push(format!(
                "coverage: {label} hit in baseline, unhit in candidate"
            )),
            Some(_) => {}
        }
    }
    for name in EXACT_COUNTERS {
        match (a.counters.get(name), b.counters.get(name)) {
            (Some(&x), Some(&y)) if x != y => {
                regressions.push(format!("counter {name}: {x} vs {y} (must match exactly)"));
            }
            _ => {}
        }
    }
    if let (Some(&x), Some(&y)) = (a.counters.get("elapsed_ms"), b.counters.get("elapsed_ms")) {
        if x > 0 && (y as f64) > (x as f64) * (1.0 + WALL_TOLERANCE) {
            warnings.push(format!(
                "wall clock grew past tolerance: {x} ms vs {y} ms (+{:.0}%)",
                100.0 * (y as f64 - x as f64) / x as f64
            ));
        }
    }
    if let (Some((ap50, ap99)), Some((bp50, bp99))) = (a.latency, b.latency) {
        for (name, x, y) in [("p50", ap50, bp50), ("p99", ap99, bp99)] {
            if x > 0 && (y as f64) > (x as f64) * LATENCY_FACTOR {
                warnings.push(format!("latency {name} grew: {x} us vs {y} us"));
            }
        }
    }
    (regressions, warnings)
}

fn run_diff(a_path: &str, b_path: &str, strict_perf: bool) -> i32 {
    let (a, b) = match (load_record(a_path), load_record(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("meissa-trace: {e}");
            return 2;
        }
    };
    let (regressions, warnings) = diff_records(&a, &b);
    for w in &warnings {
        println!("WARN: {w}");
    }
    for r in &regressions {
        println!("REGRESSION: {r}");
    }
    let arms_checked = a.coverage.values().filter(|&&h| h > 0).count();
    if regressions.is_empty() && (!strict_perf || warnings.is_empty()) {
        println!(
            "diff ok: {} covered arms preserved, {} exact counters match",
            arms_checked,
            EXACT_COUNTERS
                .iter()
                .filter(|n| a.counters.contains_key(**n) && b.counters.contains_key(**n))
                .count()
        );
        0
    } else {
        println!(
            "diff FAILED: {} regression(s), {} warning(s){}",
            regressions.len(),
            warnings.len(),
            if strict_perf { " [strict-perf]" } else { "" }
        );
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        let rest: Vec<&String> = args[1..].iter().collect();
        let strict = rest.iter().any(|a| *a == "--strict-perf");
        let paths: Vec<&&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
        let [a, b] = paths.as_slice() else {
            eprintln!("usage: meissa-trace diff <baseline> <candidate> [--strict-perf]");
            exit(2);
        };
        exit(run_diff(a, b, strict));
    }
    let (check_mode, path) = match args.as_slice() {
        [flag, p] if flag == "--check" => (true, p.clone()),
        [p] if p != "--check" && !p.starts_with("--") => (false, p.clone()),
        _ => {
            eprintln!("usage: meissa-trace [--check] <trace.jsonl> | diff <a> <b> [--strict-perf]");
            exit(2);
        }
    };
    let t = match parse_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("meissa-trace: {e}");
            exit(1);
        }
    };
    if check_mode {
        if let Err(e) = check(&t) {
            eprintln!("meissa-trace: span tree invalid: {e}");
            exit(1);
        }
        println!(
            "ok: {} records ({} spans, {} events, {} metrics)",
            t.lines,
            t.spans.len(),
            t.events.len(),
            t.counters.len() + t.hists.len()
        );
    } else {
        // A truncated reader (`meissa-trace … | head`) closes the pipe
        // early; that is not an error worth a panic or a non-zero exit.
        let _ = std::io::stdout().write_all(report(&t).as_bytes());
    }
}
