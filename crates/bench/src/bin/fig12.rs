//! Regenerates **Figure 12**: effectiveness of code summary on gw-4 under
//! the four rule-set scales — (a) time, (b) SMT calls, (c) possible paths.
//! Set-4 is where the paper notes the gap narrows: most of the complexity
//! concentrates in the fifth pipeline, which both configurations must
//! search (our generator reproduces the skew with the double-size
//! classifier in `sw1_ig0`).

use meissa_bench::{cell, measure, meissa_config, no_summary_config, paths_cell};
use meissa_suite::gw;

fn main() {
    println!("Figure 12: effectiveness of code summary on gw-4 under different rule sets");
    println!(
        "{:<7} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "", "time w/", "time w/o", "SMT w/", "SMT w/o", "paths w/", "paths w/o"
    );
    for set in 1..=4u8 {
        let w = gw::gw(4, gw::rule_set(set));
        let with = measure(&w, meissa_config(None));
        let without = measure(&w, no_summary_config(None));
        println!(
            "set-{set:<3} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
            cell(&with),
            cell(&without),
            with.smt_checks,
            without.smt_checks,
            paths_cell(with.log10_paths),
            paths_cell(without.log10_paths),
        );
        assert_eq!(
            with.templates, without.templates,
            "coverage must be identical with and without summary"
        );
    }
    println!("\n(equal template counts verified per rule set — §3.4's coverage guarantee)");
}
