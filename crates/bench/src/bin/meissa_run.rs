//! `meissa-run`: run one suite gateway workload with the observability
//! sinks wired up — the CI-facing companion of `meissa-trace diff`.
//!
//! ```text
//! meissa-run gw-3 [--eips N] [--threads N] [--ledger PATH] [--trace PATH]
//!            [--drop-last-rule TABLE]
//! ```
//!
//! Runs the named gateway (gw-1..gw-4) through `Meissa::run`, appending a
//! `RunRecord` to `--ledger` and/or a full trace to `--trace`. The
//! `--drop-last-rule` knob removes the final installed rule of one table
//! before compiling — the seeded coverage-dropping mutation CI uses to
//! prove the diff gate actually fails when a rule stops being exercised.

use meissa_core::Meissa;
use meissa_suite::gw::{gw_rules, gw_source, rule_set, GwScale};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: meissa-run gw-<1..4> [--eips N] [--threads N] \
         [--ledger PATH] [--trace PATH] [--drop-last-rule TABLE]"
    );
    exit(2);
}

/// Removes the last `… => …;` rule line inside `rules <table> { … }`.
/// Earlier rules keep their indices, so the mutation reads as "rule N-1
/// no longer exists" — exactly what a coverage diff should flag.
fn drop_last_rule(rules: &str, table: &str) -> Result<String, String> {
    let header = format!("rules {table} {{");
    let start = rules
        .find(&header)
        .ok_or_else(|| format!("no `rules {table}` block in the rule set"))?;
    let close = rules[start..]
        .find('}')
        .map(|i| start + i)
        .ok_or_else(|| format!("unterminated `rules {table}` block"))?;
    let body = &rules[start..close];
    let last_rule = body
        .rfind("=>")
        .ok_or_else(|| format!("`rules {table}` has no rules to drop"))?;
    // The rule line spans from the preceding newline to the `;` after `=>`.
    let line_start = start + body[..last_rule].rfind('\n').unwrap_or(0);
    let line_end = rules[start + last_rule..close]
        .find(';')
        .map(|i| start + last_rule + i + 1)
        .ok_or_else(|| format!("malformed rule line in `rules {table}`"))?;
    let mut out = String::with_capacity(rules.len());
    out.push_str(&rules[..line_start]);
    out.push_str(&rules[line_end..]);
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(workload) = args.first() else { usage() };
    let level: u8 = match workload.strip_prefix("gw-").and_then(|l| l.parse().ok()) {
        Some(l) if (1..=4).contains(&l) => l,
        _ => usage(),
    };
    let mut eips: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut ledger: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut mutate: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().cloned().unwrap_or_else(|| {
            eprintln!("meissa-run: {name} needs a value");
            exit(2);
        });
        match flag.as_str() {
            "--eips" => eips = val("--eips").parse().ok(),
            "--threads" => threads = val("--threads").parse().ok(),
            "--ledger" => ledger = Some(val("--ledger")),
            "--trace" => trace = Some(val("--trace")),
            "--drop-last-rule" => mutate = Some(val("--drop-last-rule")),
            _ => usage(),
        }
    }

    if let Some(path) = &trace {
        meissa_testkit::obs::trace_to(path);
    }
    if let Some(path) = &ledger {
        meissa_testkit::obs::ledger::ledger_to(path);
    }

    let scale = eips.map(|eips| GwScale { eips }).unwrap_or(rule_set(level));
    let src = gw_source(level);
    let mut rules = gw_rules(level, scale);
    if let Some(table) = &mutate {
        rules = match drop_last_rule(&rules, table) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("meissa-run: {e}");
                exit(2);
            }
        };
    }
    let workload = meissa_suite::compile_pair(&format!("gw-{level}"), &src, &rules);

    let mut engine = Meissa::new();
    if let Some(t) = threads {
        engine.config.threads = t;
    }
    let run = engine.run(&workload.program);
    if let Err(e) = meissa_testkit::obs::flush_trace() {
        eprintln!("meissa-run: trace flush failed: {e}");
    }
    println!(
        "gw-{level}: {} templates, {} smt checks, rules {}/{}, {} ms",
        run.templates.len(),
        run.stats.smt_checks,
        run.stats.rules_hit,
        run.stats.rules_total,
        run.stats.elapsed.as_millis()
    );
}
