//! Regenerates **Figure 11**: effectiveness of code summary across the four
//! production programs (gw-1..gw-4 with set-1..set-4):
//!
//! * (a) running time with vs without code summary,
//! * (b) number of SMT calls with vs without,
//! * (c) number of possible paths in the CFG test generation runs on —
//!   the summarized graph vs the original.

use meissa_bench::{cell, measure, meissa_config, no_summary_config, paths_cell};
use meissa_suite::gw;

fn main() {
    println!("Figure 11: effectiveness of code summary on different data plane programs");
    println!(
        "{:<6} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "", "time w/", "time w/o", "SMT w/", "SMT w/o", "paths w/", "paths w/o"
    );
    for level in 1..=4u8 {
        let w = gw::gw_default(level);
        let with = measure(&w, meissa_config(None));
        let without = measure(&w, no_summary_config(None));
        println!(
            "{:<6} {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
            w.name,
            cell(&with),
            cell(&without),
            with.smt_checks,
            without.smt_checks,
            paths_cell(with.log10_paths),
            paths_cell(without.log10_paths),
        );
        assert_eq!(
            with.templates, without.templates,
            "coverage must be identical with and without summary"
        );
    }
    println!("\n(equal template counts verified per program — §3.4's coverage guarantee)");
}
