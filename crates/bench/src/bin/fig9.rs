//! Regenerates **Figure 9**: test-case generation running time for Meissa
//! and the three automatic baselines across all eight programs.
//!
//! Matching the paper's protocol (§5.2):
//!
//! * Gauntlet-like runs in its modified model-based mode (traverses all
//!   installed rules);
//! * p4pktgen-like and Gauntlet-like are skipped (`no-support`) on the four
//!   production programs — multi-pipeline and production features;
//!   both tools also carry a generation time budget;
//! * Aquila-like runs under a verification budget (the paper's one-hour
//!   budget scaled to this corpus' size); it times out on gw-3/gw-4.

use meissa_baselines::{aquila, gauntlet, p4pktgen, ToolVerdict};
use meissa_bench::{cell, full_corpus, measure, meissa_config};
use std::time::Duration;

/// The paper's 1-hour verification budget, scaled to this corpus (the
/// production programs here are ~100× smaller than the paper's).
const VERIFY_BUDGET: Duration = Duration::from_millis(700);
/// Budget for the testing baselines' generation runs.
const TESTER_BUDGET: Duration = Duration::from_secs(120);

fn main() {
    println!("Figure 9: running time on different data plane programs");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "program", "Meissa", "Aquila", "p4pktgen", "Gauntlet"
    );
    for w in full_corpus() {
        let meissa = measure(&w, meissa_config(None));

        let aq = aquila::verify(&w.program, Some(VERIFY_BUDGET));
        let aq_cell = match aq.run.verdict {
            ToolVerdict::Timeout => "timeout".to_string(),
            _ => format!("{:.2}s", aq.run.elapsed.as_secs_f64()),
        };

        let fmt_tool = |run: &meissa_baselines::ToolRun| match run.verdict {
            ToolVerdict::Unsupported => "no-support".to_string(),
            ToolVerdict::Timeout => "timeout".to_string(),
            _ => format!("{:.2}s", run.elapsed.as_secs_f64()),
        };
        let pk = p4pktgen::generate(&w.program, Some(TESTER_BUDGET));
        let ga = gauntlet::generate(&w.program, Some(TESTER_BUDGET));

        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12}",
            w.name,
            cell(&meissa),
            aq_cell,
            fmt_tool(&pk),
            fmt_tool(&ga)
        );
    }
    println!();
    println!("(Aquila budget {VERIFY_BUDGET:?} = the paper's 1-hour budget scaled to corpus size;");
    println!(" tester budget {TESTER_BUDGET:?}; `no-support` per §5.1's protocol.)");
}
