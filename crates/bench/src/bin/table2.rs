//! Regenerates **Table 2**: the sixteen-bug × five-tool detection matrix.
//!
//! Meissa, Aquila-like, p4pktgen-like, and Gauntlet-like verdicts come from
//! *running the tools* against each bug's program/fault pair; PTA's column
//! is its capability profile (hand-written tests, P4-14 only — §5.2). The
//! paper's reported cell is shown beside each measured cell; any mismatch
//! is flagged loudly.

use meissa_baselines::{aquila, gauntlet, p4pktgen, pta, ToolVerdict};
use meissa_core::Meissa;
use meissa_dataplane::SwitchTarget;
use meissa_driver::TestDriver;
use meissa_suite::bugs::{self, BugKind};
use std::time::Duration;

fn mark(detected: bool) -> &'static str {
    if detected {
        "✓"
    } else {
        "✗"
    }
}

fn main() {
    let budget = Some(Duration::from_secs(60));
    println!("Table 2: capability to find bugs (measured / paper)");
    println!(
        "{:<4} {:<48} {:>9} {:>10} {:>7} {:>10} {:>8}",
        "#", "bug", "Meissa", "p4pktgen", "PTA", "Gauntlet", "Aquila"
    );
    let mut mismatches = 0;
    for case in bugs::all() {
        let program = &case.workload.program;

        // Meissa: full engine + driver against the faulty target.
        let meissa_detected = {
            let mut run = Meissa::new().run(program);
            let driver = TestDriver::new(program);
            let target = SwitchTarget::with_fault(program, case.fault.clone());
            driver.run(&mut run, &target).found_bug()
        };
        let p4pk = p4pktgen::detect_bug(program, &case.fault, budget).detected();
        let pta_v = pta::detect_bug(case.index).detected();
        let ga = gauntlet::detect_bug(program, &case.fault, budget).detected();
        let aq = aquila::verify(program, budget).found_bug();

        let measured = [meissa_detected, p4pk, pta_v, ga, aq];
        let kind = match case.kind {
            BugKind::Code => "code",
            BugKind::NonCode => "non-code",
        };
        println!(
            "{:<4} {:<48} {:>5}/{} {:>6}/{} {:>4}/{} {:>6}/{} {:>5}/{}",
            format!("{} ({kind})", case.index),
            case.name,
            mark(measured[0]),
            mark(case.paper[0]),
            mark(measured[1]),
            mark(case.paper[1]),
            mark(measured[2]),
            mark(case.paper[2]),
            mark(measured[3]),
            mark(case.paper[3]),
            mark(measured[4]),
            mark(case.paper[4]),
        );
        for (t, (&m, &p)) in measured.iter().zip(case.paper.iter()).enumerate() {
            if m != p {
                mismatches += 1;
                println!(
                    "    !! mismatch vs paper for {} on bug {}",
                    bugs::TOOLS[t], case.index
                );
            }
        }
        let _ = ToolVerdict::Detected; // keep the enum linked for docs
    }
    if mismatches == 0 {
        println!("\nAll 80 cells match the paper's Table 2.");
    } else {
        println!("\n{mismatches} cells diverge from the paper's Table 2!");
        std::process::exit(1);
    }
}
