//! Regenerates **Figure 10**: Meissa vs Aquila running time on gw-1 and
//! gw-2 under the four rule-set scales (set-1..set-4). Gauntlet and
//! p4pktgen cannot handle custom rule sets and Aquila times out on
//! gw-3/gw-4, so the paper uses gw-1/gw-2 here.

use meissa_baselines::aquila;
use meissa_bench::{cell, measure, meissa_config};
use meissa_suite::gw;

fn main() {
    println!("Figure 10: running time on gw-1 and gw-2 under different table rule sets");
    for level in [1u8, 2] {
        println!("\ngw-{level}:");
        println!("{:<8} {:>10} {:>12} {:>9}", "rule set", "Meissa", "Aquila", "speedup");
        for set in 1..=4u8 {
            let w = gw::gw(level, gw::rule_set(set));
            let meissa = measure(&w, meissa_config(None));
            let aq = aquila::verify(&w.program, None);
            let aq_secs = aq.run.elapsed.as_secs_f64();
            println!(
                "set-{set:<4} {:>10} {:>11.2}s {:>8.1}x",
                cell(&meissa),
                aq_secs,
                aq_secs / meissa.secs.max(1e-9)
            );
        }
    }
}
